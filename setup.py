"""Legacy shim: lets ``pip install -e .`` work without the ``wheel`` package.

All metadata lives in ``pyproject.toml``; this file only enables the
legacy (``--no-use-pep517``) editable-install path in offline environments
where build isolation cannot fetch build dependencies.
"""

from setuptools import setup

setup()
