"""Shared helpers for the benchmark harness.

Every ``bench_*`` file reproduces one of the paper's tables or figures at
the full 200-iteration protocol, prints the reproduced table(s) to the
terminal (bypassing pytest's capture) and writes them to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can reference them.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.util.serialization import atomic_write_text

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture()
def report(capsys):
    """Print renderables to the real terminal and persist them to a file."""

    def _report(name: str, *renderables) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = "\n\n".join(str(r) for r in renderables)
        atomic_write_text(RESULTS_DIR / f"{name}.txt", text + "\n")
        with capsys.disabled():
            print(f"\n{text}\n")

    return _report
