"""Ablation benches: search strategies, extreme-value damping, hybrid tuning."""

from repro.experiments import ExperimentConfig, ablations

FULL = ExperimentConfig()


def test_search_strategy_ablation(benchmark, report):
    result = benchmark.pedantic(
        lambda: ablations.run_strategy_ablation(FULL), rounds=1, iterations=1
    )
    assert result.results["simplex"][0] > result.baseline
    report("ablation_strategies", result.to_table())


def test_extreme_value_damping_ablation(benchmark, report):
    result = benchmark.pedantic(
        lambda: ablations.run_damping_ablation(FULL), rounds=1, iterations=1
    )
    assert set(result.results) == {"simplex", "simplex-damped"}
    report("ablation_damping", result.to_table())


def test_hybrid_cluster_tuning(benchmark, report):
    result = benchmark.pedantic(
        lambda: ablations.run_hybrid_tuning(FULL), rounds=1, iterations=1
    )
    assert result.hybrid_best >= result.duplication_best
    report("ablation_hybrid", result.to_table())
