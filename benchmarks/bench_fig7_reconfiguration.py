"""Figure 7: automatic cluster reconfiguration (both duals)."""

from repro.cluster.node import Role
from repro.experiments import ExperimentConfig, fig7

FULL = ExperimentConfig()


def test_fig7a_proxy_to_app(benchmark, report):
    result = benchmark.pedantic(lambda: fig7.run_a(FULL), rounds=1, iterations=1)
    assert result.decision is not None
    assert result.decision.from_role is Role.PROXY
    assert result.decision.to_role is Role.APP
    assert result.improvement > 0.25
    report(
        "fig7a_reconfiguration",
        result.to_table(),
        result.chart(),
        result.series_table(stride=5),
    )


def test_fig7b_app_to_proxy(benchmark, report):
    result = benchmark.pedantic(lambda: fig7.run_b(FULL), rounds=1, iterations=1)
    assert result.decision is not None
    assert result.decision.from_role is Role.APP
    assert result.decision.to_role is Role.PROXY
    assert result.improvement > 0.25
    report(
        "fig7b_reconfiguration",
        result.to_table(),
        result.chart(),
        result.series_table(stride=5),
    )
