"""Gradual workload drift (extension of Figure 5).

The mix ramps browsing→ordering over the middle third of a 200-iteration
run.  The adaptive tuner must dominate the static default configuration in
every phase — the paper's "no universal configuration" argument restated
under drifting (rather than switching) traffic.
"""

from repro.experiments import ExperimentConfig, drift

FULL = ExperimentConfig()


def test_workload_drift(benchmark, report):
    result = benchmark.pedantic(
        lambda: drift.run(FULL), rounds=1, iterations=1
    )
    n = len(result.blend)
    assert result.advantage_over_window(0, n // 3) > 0.05  # browsing phase
    assert result.advantage_over_window(2 * n // 3) > -0.05  # ordering tail
    assert result.mean_advantage > 0.02
    report("drift", result.to_table(), result.chart())
