"""§III.A diagnostics: which parameters actually affect performance.

Reproduces the paper's named findings: the Squid eviction watermarks are
performance-neutral, the proxy memory-cache size matters (most under the
browsing mix), and shrinking ``join_buffer_size`` from its 8 MB default
does not hurt.
"""

from repro.experiments import ExperimentConfig, sensitivity

FULL = ExperimentConfig()


def test_parameter_sensitivity(benchmark, report):
    result = benchmark.pedantic(
        lambda: sensitivity.run(FULL, points=5, repeats=4),
        rounds=1, iterations=1,
    )
    # "cache_swap_low/high ... do not impact the overall system performance"
    for mix in ("browsing", "shopping", "ordering"):
        assert result.effect(mix, "proxy0.cache_swap_low") < 0.05
        assert result.effect(mix, "proxy0.cache_swap_high") < 0.05
    # The proxy memory cache is a first-order knob for browsing...
    assert result.effect("browsing", "proxy0.cache_mem") > 0.10
    # ...and matters far more there than the watermarks do.
    assert result.effect("browsing", "proxy0.cache_mem") > 3 * result.effect(
        "browsing", "proxy0.cache_swap_low"
    )
    report("sensitivity", result.to_table())
