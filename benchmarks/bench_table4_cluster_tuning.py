"""Table 4: the three cluster-tuning methods vs no tuning.

Runs the full 200-iteration protocol per method on the 2-proxy / 2-app /
2-database cluster (the smallest layout admitting two work lines).
"""

from repro.experiments import ExperimentConfig, table4

FULL = ExperimentConfig()


def test_table4_cluster_tuning(benchmark, report):
    result = benchmark.pedantic(
        lambda: table4.run(FULL), rounds=1, iterations=1
    )
    rows = result.rows
    # Paper shape (robust form): every method clearly beats no tuning and
    # reaches a comparable tuned level; the scaled methods search half the
    # dimensions per server.  (The exact iteration/stddev orderings are
    # noise-sensitive; EXPERIMENTS.md reports the measured values against
    # the paper's.)
    for row in rows.values():
        assert row.improvement > 0.05
    tuned = [row.wips for row in rows.values()]
    assert max(tuned) / min(tuned) < 1.10  # "tuning results are very close"
    assert rows["duplication"].tuned_dimensions < rows["default"].tuned_dimensions
    assert rows["partitioning"].tuned_dimensions < rows["default"].tuned_dimensions
    report("table4_cluster_tuning", result.to_table())
