"""Robustness ablations: tuning gain vs measurement noise and vs load."""

from repro.experiments import ExperimentConfig
from repro.experiments.robustness import run_load_sweep, run_noise_sweep

FULL = ExperimentConfig()


def test_noise_sweep(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_noise_sweep(FULL), rounds=1, iterations=1
    )
    # Gains must survive realistic noise; allow graceful degradation only.
    gains = [g for _, _, _, g in result.rows]
    assert min(gains) > 0.10
    assert max(gains) / max(min(gains), 1e-9) < 2.0
    report("robustness_noise", result.to_table())


def test_load_sweep(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_load_sweep(FULL), rounds=1, iterations=1
    )
    gains = result.gains()
    # Unsaturated: nothing to gain; saturated: double-digit gains.
    assert gains[0] < 0.05
    assert gains[-1] > 0.15
    assert gains == sorted(gains) or gains[-1] > gains[0]
    report("robustness_load", result.to_table())
