"""Replication bench: the Figure 4 headline numbers across seeds.

Re-runs the full Figure 4 pipeline under three independent seeds and
reports the spread of each workload's improvement — the evidence behind
quoting EXPERIMENTS.md's numbers as stable rather than as one lucky draw.
Runs at a reduced (100-iteration) budget per seed to keep the bench under
a minute per replication.
"""

from repro.experiments import ExperimentConfig
from repro.experiments.replication import (
    replicate_fig4_improvements,
    replication_table,
)

CONFIG = ExperimentConfig(iterations=100)
SEEDS = (17, 99, 2024)


def test_fig4_replication(benchmark, report):
    reps = benchmark.pedantic(
        lambda: replicate_fig4_improvements(CONFIG, SEEDS),
        rounds=1, iterations=1,
    )
    # The qualitative claims must hold in every replication:
    assert reps["browsing"].all_positive
    for b, o in zip(reps["browsing"].values, reps["ordering"].values):
        assert o < b  # ordering gains least, every seed
    report("replication_fig4", replication_table(reps))
