"""Table 1: regenerate the TPC-W workload-mix table."""

from repro.experiments import table1


def test_table1_mixes(benchmark, report):
    result = benchmark.pedantic(table1.run, rounds=3, iterations=1)
    assert result.browse_split["browsing"] == 0.95
    report("table1_mixes", result.to_table())
