"""Dollars/WIPS across cluster layouts (TPC-W's price-performance metric).

Extension bench: same six front machines, different tier assignments, under
the browsing and ordering mixes.  The cost-optimal layout flips with the
workload — the capacity-planning face of the paper's §IV result that node
roles must follow the traffic.
"""

from repro.experiments import ExperimentConfig, price_performance

FULL = ExperimentConfig()


def test_price_performance_ordering(benchmark, report):
    result = benchmark.pedantic(
        lambda: price_performance.run(FULL, mix_name="ordering", machines=6),
        rounds=1, iterations=1,
    )
    best = result.best()
    assert best.apps >= best.proxies  # ordering wants application capacity
    report("price_performance_ordering", result.to_table())


def test_price_performance_browsing(benchmark, report):
    result = benchmark.pedantic(
        lambda: price_performance.run(FULL, mix_name="browsing", machines=6),
        rounds=1, iterations=1,
    )
    best = result.best()
    assert best.proxies >= best.apps  # browsing wants proxy capacity
    report("price_performance_browsing", result.to_table())
