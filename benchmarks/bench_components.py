"""Micro-benchmarks of the core components (classic pytest-benchmark runs).

These time the hot paths that bound how long a full experiment takes: one
analytic solve, one simplex ask/tell step, one Erlang M/M/c/K evaluation,
one cache-model evaluation, and one (short) DES iteration.
"""

from repro.cluster.topology import ClusterSpec
from repro.des.backend import SimulationBackend
from repro.harmony.parameter import IntParameter, ParameterSpace
from repro.harmony.simplex import NelderMeadSimplex
from repro.model.analytic import AnalyticBackend
from repro.model.base import Scenario
from repro.model.mva import Station, solve_mva
from repro.model.noise import NoiseModel
from repro.model.pools import mmck
from repro.tpcw.catalog import Catalog
from repro.util.rng import spawn_rng
from repro.tpcw.interactions import SHOPPING_MIX
from repro.util.units import MB


def test_analytic_measure_single_tier(benchmark):
    cluster = ClusterSpec.three_tier(1, 1, 1)
    backend = AnalyticBackend(noise=NoiseModel(0.0, 0.0, 0.0))
    sc = Scenario(cluster=cluster, mix=SHOPPING_MIX, population=750)
    cfg = cluster.default_configuration()
    backend.measure(sc, cfg, seed=0)  # warm context cache
    result = benchmark(lambda: backend.measure(sc, cfg, seed=0))
    assert result.wips > 0


def test_analytic_measure_eight_nodes(benchmark):
    cluster = ClusterSpec.three_tier(4, 2, 2)
    backend = AnalyticBackend(noise=NoiseModel(0.0, 0.0, 0.0))
    sc = Scenario(cluster=cluster, mix=SHOPPING_MIX, population=2000)
    cfg = cluster.default_configuration()
    backend.measure(sc, cfg, seed=0)
    result = benchmark(lambda: backend.measure(sc, cfg, seed=0))
    assert result.wips > 0


def test_mva_solve(benchmark):
    stations = [Station(f"s{i}", 0.01 * (i + 1), 1 + i % 3) for i in range(12)]
    result = benchmark(lambda: solve_mva(stations, 1000, 7.0))
    assert result.throughput > 0


def test_mmck_large_pool(benchmark):
    result = benchmark(lambda: mmck(80.0, 0.5, 512, 1024))
    assert 0.0 <= result.blocking <= 1.0


def test_simplex_step(benchmark):
    space = ParameterSpace(
        [IntParameter(f"x{i}", 50, 0, 100) for i in range(23)]
    )
    simplex = NelderMeadSimplex(space, rng=spawn_rng(0, "bench.simplex"))
    rng = spawn_rng(0, "bench.objective")

    def step():
        cfg = simplex.ask()
        simplex.tell(cfg, float(rng.normal()))

    benchmark(step)


def test_catalog_hit_fraction(benchmark):
    catalog = Catalog()
    result = benchmark(lambda: catalog.hit_fraction(32 * MB, 0.0, 64 * 1024.0))
    assert 0.0 <= result <= 1.0


def test_des_iteration_short(benchmark):
    cluster = ClusterSpec.three_tier(1, 1, 1)
    backend = SimulationBackend(time_scale=0.02)
    sc = Scenario(cluster=cluster, mix=SHOPPING_MIX, population=200)
    cfg = cluster.default_configuration()
    result = benchmark.pedantic(
        lambda: backend.measure(sc, cfg, seed=0), rounds=3, iterations=1
    )
    assert result.wips > 0
