"""Figure 5: responsiveness to changing workloads (100-iteration segments)."""

from repro.experiments import ExperimentConfig, fig5

FULL = ExperimentConfig()


def test_fig5_responsiveness(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig5.run(FULL, segment=100), rounds=1, iterations=1
    )
    # The paper: "only a few iterations are needed to adapt".
    for start, mix, adapt in result.segments[1:]:
        assert adapt <= 40
    report(
        "fig5_responsiveness",
        result.to_table(),
        result.chart(),
        result.series_table(stride=10),
    )
