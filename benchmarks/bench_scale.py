"""The scale axis end to end: fluid + hierarchical MVA on wide clusters.

Three arms, written to ``BENCH_scale.json``:

* **Cost scaling** — the exact MVA recursion is O(N x K); timed at
  N=10^3 and 10^4 and extrapolated linearly to 10^5, it must be >= 100x
  slower than the fluid solver's *measured* cost there.  The fluid
  solver is also timed at N=10^3..10^9 to demonstrate per-solve cost
  independent of the population.
* **Accuracy** — on a small wide topology (every approximation engages,
  the exact per-node solve is still feasible) the hierarchical backend
  must match the exact one to float precision, the fluid backend must
  sit within its stated band, and the discrete-event simulator must
  agree with the fluid analytic number within the repo's usual 15%.
* **End to end** — the reduced scale experiment tunes a 208-node
  cluster at N=10^6 under every engine/jobs setting; trajectories are
  asserted bit-identical across ``inline --jobs 1``, ``process --jobs
  2`` and ``shared --jobs 2``.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.cluster.topology import ClusterSpec
from repro.des.backend import SimulationBackend
from repro.experiments import scale
from repro.experiments.runner import ExperimentConfig
from repro.model.analytic import AnalyticBackend
from repro.model.base import Scenario
from repro.model.fluid import solve_mva_fluid
from repro.model.mva import Station, solve_mva_exact
from repro.model.noise import NoiseModel
from repro.parallel import SharedEngine
from repro.tpcw.interactions import STANDARD_MIXES
from repro.util.serialization import atomic_write_json

RESULT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_scale.json"

#: Representative station demands (seconds/interaction) for the solver
#: cost arm — nine single-server stations, the shape of a mid-size tier.
DEMANDS = (0.010, 0.012, 0.008, 0.004, 0.006, 0.002, 0.009, 0.003, 0.005)

#: Reduced protocol for the end-to-end arm (full protocol: 200).
SCALE_REDUCED = dict(iterations=10, baseline_iterations=4)


def _stations():
    return [Station(f"s{i}", d) for i, d in enumerate(DEMANDS)]


def _best_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _canonical(result) -> str:
    """ScaleResult in a JSON-stable form for bit-identity assertions."""
    return json.dumps(
        {
            "baseline": [result.baseline_wips, result.baseline_stddev],
            "tuned": [result.tuned_wips, result.tuned_stddev],
            "improvement": result.improvement,
            "agreement": {
                mode: [row.wips, row.relative_error]
                for mode, row in sorted(result.agreement.items())
            },
            "des": [result.des_wips, result.des_over_exact_ratio],
            "trajectory": list(result.history.performances()),
        },
        sort_keys=True,
    )


def _timed_scale(engine: str, jobs: int):
    cfg = ExperimentConfig(**SCALE_REDUCED, engine=engine, jobs=jobs)
    start = time.perf_counter()
    result = scale.run(cfg)
    return time.perf_counter() - start, result


def test_scale_axis(report):
    host_cpus = os.cpu_count() or 1
    stations = _stations()

    # --- arm A: solver cost scaling --------------------------------------
    t_exact = {
        n: _best_of(lambda n=n: solve_mva_exact(stations, n, 1.0), repeats=3)
        for n in (1_000, 10_000)
    }
    # Exact MVA is linear in N: extrapolate the 10^4 timing to 10^5.
    t_exact_1e5_extrapolated = t_exact[10_000] * 10.0
    t_fluid = {
        n: _best_of(lambda n=n: solve_mva_fluid(stations, n, 1.0))
        for n in (1_000, 100_000, 1_000_000, 10**9)
    }
    exact_vs_fluid = t_exact_1e5_extrapolated / t_fluid[100_000]
    assert exact_vs_fluid >= 100.0
    # Population independence: the fluid solve at N=10^9 costs no more
    # than a small multiple of the N=10^3 solve (both are a handful of
    # bisection steps; 5x absorbs timer noise on loaded CI hosts).
    assert t_fluid[10**9] <= t_fluid[1_000] * 5.0 + 1e-4

    # --- arm B: accuracy on a small wide topology ------------------------
    cluster = ClusterSpec.wide(2, 2, 1, name="wide-audit")
    scenario = Scenario(
        cluster=cluster, mix=STANDARD_MIXES["shopping"], population=600
    )
    config = cluster.default_configuration()
    noise_free = {"noise": NoiseModel(0.0, 0.0, 0.0)}
    wips = {
        mode: AnalyticBackend(approximation=mode, **noise_free)
        .measure(scenario, config, seed=0)
        .wips
        for mode in ("exact", "fluid", "hierarchical", "fluid+hierarchical")
    }
    hier_err = abs(wips["hierarchical"] - wips["exact"]) / wips["exact"]
    fluid_err = abs(wips["fluid"] - wips["exact"]) / wips["exact"]
    both_err = abs(wips["fluid+hierarchical"] - wips["exact"]) / wips["exact"]
    assert hier_err < 1e-9  # aggregation of identical replicas is exact
    assert fluid_err < 0.10  # fluid band at moderate N
    assert both_err < 0.10

    des = SimulationBackend(time_scale=0.1)
    des_wips = des.measure(scenario, config, seed=0).wips
    des_ratio = des_wips / wips["fluid"]
    assert 0.85 <= des_ratio <= 1.15

    # --- arm C: end-to-end wide-cluster tuning, engine matrix ------------
    t_inline, r_inline = _timed_scale("inline", 1)
    t_process, r_process = _timed_scale("process", 2)
    SharedEngine.reset()
    t_shared, r_shared = _timed_scale("shared", 2)
    SharedEngine.reset()

    baseline = _canonical(r_inline)
    assert _canonical(r_process) == baseline
    assert _canonical(r_shared) == baseline
    assert r_inline.num_nodes >= 100
    assert r_inline.population == 1_000_000
    assert r_inline.fluid == 1.0
    assert r_inline.aggregated_nodes == r_inline.num_nodes - 3
    # Raised DES validation arm: wide(4, 4, 2) at the agreement
    # population, cross-checked against the exact analytic row.
    assert 0.9 <= r_inline.des_over_exact_ratio <= 1.1

    payload = {
        "schema": "bench_scale/v1",
        "description": (
            "Scale axis: exact-vs-fluid solver cost, approximation "
            "accuracy bands on a small wide topology (incl. DES "
            "cross-check), and the reduced scale experiment tuning a "
            "208-node cluster at N=10^6, bit-identical across engines."
        ),
        "host_cpus": host_cpus,
        "cost_scaling": {
            "stations": len(DEMANDS),
            "exact_seconds": {str(n): round(t, 6) for n, t in t_exact.items()},
            "exact_1e5_extrapolated_seconds": round(
                t_exact_1e5_extrapolated, 6
            ),
            "fluid_seconds": {str(n): round(t, 6) for n, t in t_fluid.items()},
            "exact_vs_fluid_speedup_1e5": round(exact_vs_fluid, 1),
            "speedup_gate": 100.0,
        },
        "accuracy": {
            "cluster": "wide(2, 2, 1)",
            "population": 600,
            "wips": {mode: round(v, 4) for mode, v in sorted(wips.items())},
            "hierarchical_rel_error": hier_err,
            "fluid_rel_error": round(fluid_err, 6),
            "fluid_band": 0.10,
            "des_wips": round(des_wips, 4),
            "des_over_fluid_ratio": round(des_ratio, 4),
            "des_band": [0.85, 1.15],
        },
        "end_to_end": {
            "config": SCALE_REDUCED,
            "cluster_nodes": r_inline.num_nodes,
            "population": r_inline.population,
            "aggregated_nodes": r_inline.aggregated_nodes,
            "baseline_wips": round(r_inline.baseline_wips, 4),
            "tuned_wips": round(r_inline.tuned_wips, 4),
            "improvement": round(r_inline.improvement, 6),
            "des_cluster": "wide(4, 4, 2)",
            "des_population": r_inline.des_population,
            "des_wips": round(r_inline.des_wips, 4),
            "des_over_exact_ratio": round(r_inline.des_over_exact_ratio, 4),
            "des_band": [0.9, 1.1],
            "inline_jobs1_seconds": round(t_inline, 3),
            "process_jobs2_seconds": round(t_process, 3),
            "shared_jobs2_seconds": round(t_shared, 3),
            "bit_identical": True,
        },
    }
    atomic_write_json(RESULT_PATH, payload)

    lines = [
        "Scale benchmark (fluid + hierarchical MVA)",
        f"  exact MVA      N=1e4 {t_exact[10_000] * 1e3:8.2f} ms "
        f"(-> {t_exact_1e5_extrapolated * 1e3:.1f} ms at N=1e5, "
        "extrapolated)",
        f"  fluid solver   N=1e5 {t_fluid[100_000] * 1e6:8.1f} us, "
        f"N=1e9 {t_fluid[10**9] * 1e6:.1f} us  "
        f"({exact_vs_fluid:.0f}x faster than exact at N=1e5)",
        f"  accuracy: hier {hier_err:.1e}, fluid {fluid_err:.1e} rel "
        f"error vs exact; DES/fluid ratio {des_ratio:.3f}",
        f"  end to end: {r_inline.num_nodes} nodes at N=1e6 tuned in "
        f"{t_inline:.2f} s inline / {t_process:.2f} s process x2 / "
        f"{t_shared:.2f} s shared x2",
        f"  baseline {r_inline.baseline_wips:.1f} -> tuned "
        f"{r_inline.tuned_wips:.1f} WIPS "
        f"({r_inline.improvement * 100:+.1f}%)",
        "  trajectories bit-identical across engines: yes",
        f"  written to {RESULT_PATH.name}",
    ]
    report("scale", "\n".join(lines))
