"""Write-ahead journal overhead on the Table 4 tuning workload.

The durability layer's cost model: every committed measurement is one
framed append to the session journal.  The acceptance criterion is that
journaling adds <= 5% wall-clock to the full 200-iteration Table 4
partitioned tuning run.

Two journal arms are timed against the plain session:

* **flush** (``fsync=False``) — each record is flushed to the OS page
  cache per append.  This is the level the kill/resume guarantee needs:
  the page cache survives a SIGKILL of the process, which is the failure
  the CI smoke job injects.  The <= 5% gate applies to this arm.
* **fsync** (the CLI default) — each record additionally waits for the
  disk, surviving a host power cut.  Its cost is a disk round-trip per
  iteration and varies wildly by host storage, so it is reported but
  not gated.

Timing methodology matches the other benches: arms interleaved,
``REPEATS`` repeats, best (minimum) per arm, bit-identity of the full
trajectory asserted on every repeat before any timing is believed.
"""

from __future__ import annotations

import os
import pathlib
import tempfile
import time

from repro.cluster.topology import ClusterSpec
from repro.durability.journal import SessionJournal
from repro.model.analytic import AnalyticBackend
from repro.model.base import MemoizedBackend, Scenario
from repro.tpcw.interactions import SHOPPING_MIX
from repro.tuning.session import ClusterTuningSession, make_scheme
from repro.util.rng import derive_seed
from repro.util.serialization import atomic_write_json

RESULT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_durability.json"

ITERATIONS = 200
REPEATS = 2
#: Acceptance: flush-mode journaling costs at most this fraction extra.
MAX_FLUSH_OVERHEAD = 0.05

HEADER = {"kind": "bench-durability", "iterations": ITERATIONS}


def _timed_run(journal=None):
    """One full tuning run; returns (seconds, trajectory)."""
    backend = MemoizedBackend(AnalyticBackend())
    cluster = ClusterSpec.three_tier(2, 2, 2)
    scenario = Scenario(cluster=cluster, mix=SHOPPING_MIX, population=2000)
    session = ClusterTuningSession(
        backend,
        scenario,
        scheme=make_scheme(scenario, "partitioning", work_lines=2),
        strategy="simplex",
        seed=derive_seed(17, "table4", "partitioning"),
        journal=journal,
    )
    start = time.perf_counter()
    session.run(ITERATIONS)
    elapsed = time.perf_counter() - start
    trajectory = [
        (r.configuration, r.performance) for r in session.history.records
    ]
    return elapsed, trajectory


def test_journal_overhead(report):
    plain_times: list[float] = []
    flush_times: list[float] = []
    fsync_times: list[float] = []
    with tempfile.TemporaryDirectory() as tmp:
        for repeat in range(REPEATS):
            t_plain, traj_plain = _timed_run()

            path = os.path.join(tmp, f"flush-{repeat}.journal")
            journal = SessionJournal(path, HEADER, fsync=False)
            t_flush, traj_flush = _timed_run(journal)
            journal.close()

            path = os.path.join(tmp, f"fsync-{repeat}.journal")
            journal = SessionJournal(path, HEADER)
            t_fsync, traj_fsync = _timed_run(journal)
            journal.close()

            # Hard contract, checked before any timing is believed: a
            # journaled run's trajectory is the plain run's, exactly.
            assert traj_flush == traj_plain
            assert traj_fsync == traj_plain
            plain_times.append(t_plain)
            flush_times.append(t_flush)
            fsync_times.append(t_fsync)

    best_plain = min(plain_times)
    flush_overhead = min(flush_times) / best_plain - 1.0
    fsync_overhead = min(fsync_times) / best_plain - 1.0

    # Acceptance: <= 5% overhead at the durability level kill/resume needs.
    assert flush_overhead <= MAX_FLUSH_OVERHEAD

    payload = {
        "host_cpus": os.cpu_count(),
        "workload": {
            "experiment": "table4 partitioned tuning",
            "cluster": "three_tier(2, 2, 2)",
            "mix": "shopping",
            "population": 2000,
            "iterations": ITERATIONS,
            "strategy": "simplex",
        },
        "methodology": (
            f"best of {REPEATS} interleaved plain/flush/fsync repeats; "
            "bit-identity asserted on every repeat"
        ),
        "plain_seconds": [round(t, 3) for t in plain_times],
        "journal_flush_seconds": [round(t, 3) for t in flush_times],
        "journal_fsync_seconds": [round(t, 3) for t in fsync_times],
        "flush_overhead": round(flush_overhead, 4),
        "fsync_overhead": round(fsync_overhead, 4),
        "max_flush_overhead": MAX_FLUSH_OVERHEAD,
        "bit_identical": True,
    }
    atomic_write_json(RESULT_PATH, payload)

    lines = [
        "Journal overhead benchmark (table4 partitioned, 200 iterations)",
        f"  plain            best of {REPEATS}  {best_plain:6.2f} s",
        f"  journal (flush)  best of {REPEATS}  {min(flush_times):6.2f} s   "
        f"overhead {flush_overhead * 100:+.1f}% (gate: <= "
        f"{MAX_FLUSH_OVERHEAD * 100:.0f}%)",
        f"  journal (fsync)  best of {REPEATS}  {min(fsync_times):6.2f} s   "
        f"overhead {fsync_overhead * 100:+.1f}% (reported, not gated)",
        "  trajectories bit-identical on every repeat: yes",
        f"  written to {RESULT_PATH.name}",
    ]
    report("durability", "\n".join(lines))
