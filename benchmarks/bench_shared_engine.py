"""The shared persistent engine vs the per-run process pool, end to end.

Five arms over the reduced Fig-4 matrix, all asserted bit-identical:

* **process --jobs 1** — PR 1's default: per-run engine, caches die with
  the run.
* **process --jobs 4** — PR 1's pool: per-run workers, cache-cold every
  run, counters now delta-aggregated.
* **shared --jobs 1 (cold)** — the vectorized gang path: concurrent
  specs' cold solves fused into cross-experiment mega-batches.
* **shared --jobs 1 (warm)** — the same run again on the same engine:
  the cross-run payoff, served from the persistent shared cache.
* **shared --jobs 2 (fleet)** — the persistent worker fleet over the
  Manager-backed store, warm from the earlier runs.

Plus a reduced Table-4 pass (process vs shared, cold and warm) on the
multi-node cluster workload.

Host-aware assertions: this harness must pass on a 1-CPU CI runner, so
the hard gates are the ones a single core can demonstrate — the
vectorized ``jobs=1`` path beating the serial no-cache baseline, a >= 2x
cross-run speedup from the shared cache (warm shared vs cold process),
and a cross-run/cross-worker shared-cache hit rate above zero.  Fleet
fan-out speedups are recorded, and gated only when the host actually has
the cores.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from bench_parallel_engine import REDUCED, SerialBaselineBackend

from repro.experiments import fig4, table4
from repro.experiments.runner import ExperimentConfig
from repro.parallel import SharedEngine
from repro.util.serialization import atomic_write_json

RESULT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_shared_engine.json"

#: Reduced Table-4 protocol (the multi-node cluster workload).
TABLE4_REDUCED = dict(
    iterations=8, baseline_iterations=4, cluster_population=1800
)


def _canonical(result) -> str:
    return json.dumps(result.canonical_dict(), sort_keys=True)


def _table4_canonical(result) -> str:
    """Table4Result in a JSON-stable form (it has no canonical_dict)."""
    return json.dumps(
        {
            "baseline": [result.baseline_wips, result.baseline_stddev],
            "rows": {
                m: [r.wips, r.stddev, r.improvement, r.iterations_to_converge]
                for m, r in sorted(result.rows.items())
            },
            "trajectories": {
                m: list(h.performances())
                for m, h in sorted(result.histories.items())
            },
        },
        sort_keys=True,
    )


def _timed_fig4(engine: str, jobs: int, serial_backend: bool = False):
    cfg = ExperimentConfig(
        **REDUCED, engine=engine, jobs=jobs, memoize=not serial_backend
    )
    backend = SerialBaselineBackend() if serial_backend else None
    start = time.perf_counter()
    result = fig4.run(cfg, backend=backend)
    return time.perf_counter() - start, result


def _timed_table4(engine: str):
    cfg = ExperimentConfig(**TABLE4_REDUCED, engine=engine)
    start = time.perf_counter()
    result = table4.run(cfg)
    return time.perf_counter() - start, result


def test_shared_engine_speedups(report):
    host_cpus = os.cpu_count() or 1

    t_serial, r_serial = _timed_fig4("process", 1, serial_backend=True)
    t_process1, r_process1 = _timed_fig4("process", 1)
    t_process4, r_process4 = _timed_fig4("process", 4)

    SharedEngine.reset()
    t_shared_cold, r_shared_cold = _timed_fig4("shared", 1)
    t_shared_warm, r_shared_warm = _timed_fig4("shared", 1)
    vector_stats = SharedEngine.instance().stats()
    t_shared_fleet, r_shared_fleet = _timed_fig4("shared", 2)

    # Hard constraint: every engine/jobs setting, cold or warm, produces
    # the exact same numbers.
    baseline = _canonical(r_serial)
    for arm in (
        r_process1,
        r_process4,
        r_shared_cold,
        r_shared_warm,
        r_shared_fleet,
    ):
        assert _canonical(arm) == baseline

    # The vectorized gang actually fused cross-spec mega-batches.
    assert vector_stats["gang_batches"] >= 1
    assert vector_stats["gang_max_width"] >= 2

    # 1-core acceptance: the vectorized jobs=1 path beats the serial
    # no-cache baseline outright...
    assert t_shared_cold < t_serial
    # ...and the persistent cache turns the second run into >= 2x over a
    # cold per-run engine (the cross-run speedup the process pool can
    # never deliver — its caches die with every run).
    cross_run_speedup = t_process1 / t_shared_warm
    assert cross_run_speedup >= 2.0

    # Cross-run cache hit rate > 0: the warm run was served from caches
    # that survived the previous run.
    warm_stats = dict(r_shared_warm.cache_stats or {})
    assert warm_stats.get("measurement_hits", 0) > 0
    assert warm_stats.get("measurement_hit_rate", 0) > 0

    # Cross-worker hit rate > 0: fleet workers (cache-cold processes)
    # were served by the shared store the vectorized runs populated.
    fleet_stats = dict(r_shared_fleet.cache_stats or {})
    shared_hits = fleet_stats.get(
        "measurement_shared_hits", 0
    ) + fleet_stats.get("solution_shared_hits", 0)
    assert shared_hits > 0

    # Fleet fan-out is only gated where the cores exist to show it.
    fleet_speedup = t_process4 / t_shared_fleet
    if host_cpus >= 4:
        assert fleet_speedup >= 1.0

    SharedEngine.reset()
    t_t4_process, r_t4_process = _timed_table4("process")
    SharedEngine.reset()
    t_t4_cold, r_t4_cold = _timed_table4("shared")
    t_t4_warm, r_t4_warm = _timed_table4("shared")
    SharedEngine.reset()

    t4_baseline = _table4_canonical(r_t4_process)
    assert _table4_canonical(r_t4_cold) == t4_baseline
    assert _table4_canonical(r_t4_warm) == t4_baseline
    assert t_t4_warm < t_t4_process  # cross-run cache, cluster workload

    payload = {
        "schema": "bench_shared_engine/v1",
        "description": (
            "Persistent shared-cache engine vs the per-run process pool "
            "on reduced Fig-4 and Table-4 workloads.  All arms asserted "
            "bit-identical; speedup gates are host-aware (1-CPU CI must "
            "pass on the vectorized and cross-run wins alone)."
        ),
        "host_cpus": host_cpus,
        "oversubscribed_jobs4": host_cpus < 4,
        "fig4_reduced": {
            "config": REDUCED,
            "serial_no_cache_seconds": round(t_serial, 3),
            "process_jobs1_seconds": round(t_process1, 3),
            "process_jobs4_seconds": round(t_process4, 3),
            "shared_jobs1_cold_seconds": round(t_shared_cold, 3),
            "shared_jobs1_warm_seconds": round(t_shared_warm, 3),
            "shared_jobs2_fleet_seconds": round(t_shared_fleet, 3),
            "vectorized_vs_serial_speedup": round(t_serial / t_shared_cold, 2),
            "cross_run_speedup_warm_vs_process": round(cross_run_speedup, 2),
            "fleet_vs_process_jobs4_speedup": round(fleet_speedup, 2),
            "gang_batches": vector_stats["gang_batches"],
            "gang_rows": vector_stats["gang_rows"],
            "gang_max_width": vector_stats["gang_max_width"],
            "warm_run_cache_stats": warm_stats,
            "fleet_run_cache_stats": fleet_stats,
            "bit_identical": True,
        },
        "table4_reduced": {
            "config": TABLE4_REDUCED,
            "process_jobs1_seconds": round(t_t4_process, 3),
            "shared_cold_seconds": round(t_t4_cold, 3),
            "shared_warm_seconds": round(t_t4_warm, 3),
            "cross_run_speedup": round(t_t4_process / t_t4_warm, 2),
            "bit_identical": True,
        },
    }
    atomic_write_json(RESULT_PATH, payload)

    lines = [
        "Shared engine benchmark (reduced Fig-4 + Table-4)",
        f"  fig4 serial (no cache)   {t_serial:6.2f} s",
        f"  fig4 process --jobs 1    {t_process1:6.2f} s",
        f"  fig4 process --jobs 4    {t_process4:6.2f} s",
        f"  fig4 shared  --jobs 1    {t_shared_cold:6.2f} s cold / "
        f"{t_shared_warm:.2f} s warm ({cross_run_speedup:.1f}x vs cold "
        "process)",
        f"  fig4 shared  --jobs 2    {t_shared_fleet:6.2f} s (fleet, warm "
        "store)",
        f"  gang: {vector_stats['gang_batches']:.0f} fused batches, "
        f"max width {vector_stats['gang_max_width']:.0f}",
        f"  fleet shared-store hits: {shared_hits:.0f}",
        f"  table4 process {t_t4_process:.2f} s; shared {t_t4_cold:.2f} s "
        f"cold / {t_t4_warm:.2f} s warm",
        f"  host CPUs: {host_cpus}"
        + ("  (jobs>1 arms oversubscribed)" if host_cpus < 4 else ""),
        "  results bit-identical across all arms: yes",
        f"  written to {RESULT_PATH.name}",
    ]
    report("shared_engine", "\n".join(lines))
