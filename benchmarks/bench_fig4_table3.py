"""Figure 4 + Table 3 + the §III.A narrative, at the paper's full protocol.

Runs 200 tuning iterations per workload mix on the single-node-per-tier
cluster, re-measures each best configuration under every mix (the Figure 4
cross-application matrix) and renders the Table 3 parameter listing.
"""

from repro.experiments import ExperimentConfig, fig4, table3
from repro.util.tables import Table

FULL = ExperimentConfig()


def _sec3a_table(result) -> Table:
    t = Table(
        "§III.A: tuning-window statistics (second 100 iterations)",
        ["Workload", "Baseline WIPS", "Window mean", "Window impr.",
         "Iterations beating default"],
    )
    for mix in fig4.MIX_ORDER:
        t.add_row(
            mix,
            f"{result.baselines[mix]:.1f}",
            f"{result.histories[mix].window_stats(100).mean:.1f}",
            f"{result.window_improvement[mix] * 100:.1f}%",
            f"{result.fraction_above[mix] * 100:.0f}%",
        )
    return t


def test_fig4_cross_workload_and_table3(benchmark, report):
    result = benchmark.pedantic(lambda: fig4.run(FULL), rounds=1, iterations=1)

    # Paper shape: every workload improves; ordering improves least.
    for mix in fig4.MIX_ORDER:
        assert result.improvement(mix) > -0.02
    assert result.improvement("ordering") < result.improvement("browsing")

    report(
        "fig4_table3",
        result.to_matrix_table(),
        result.to_improvement_table(),
        _sec3a_table(result),
        table3.render(result),
    )
