"""The PR's performance stack, measured end to end.

Three arms over the same workloads:

* **serial** — the pre-engine path: one process, no memoization, every
  measurement point solved with its own scalar MVA fixed point.
* **parallel** — ``--jobs 4`` through the run-plan engine with
  measurement memoization on (what the CLI default does).
* **batched** — one process with the full cache + batched-MVA stack (the
  ``--jobs 1`` default), isolating the single-core gains.

Timings go to ``BENCH_parallel.json`` in the repo root (speedups and
cache hit rates) so future PRs have a perf trajectory.  Every arm must
produce bit-identical results — asserted here, not assumed.

Note the speedup provenance: the serial-vs-parallel gap mixes process
fan-out with the memoization/batching the engine path always enables; on
a single-core runner the latter carries the number, on multi-core boxes
both do.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.analysis.sensitivity import sensitivity_report
from repro.cluster.topology import ClusterSpec
from repro.experiments import fig4
from repro.experiments.runner import ExperimentConfig
from repro.model.analytic import AnalyticBackend
from repro.model.base import Scenario
from repro.tpcw.interactions import SHOPPING_MIX
from repro.util.serialization import atomic_write_json

RESULT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_parallel.json"

#: Reduced Fig-4 matrix: fewer tuning iterations, full re-measurement
#: protocol (where the measurement reuse the stack targets actually is).
REDUCED = dict(iterations=12, baseline_iterations=20)


class SerialBaselineBackend(AnalyticBackend):
    """The pre-PR measurement path: no solution memo, no batching."""

    def __init__(self) -> None:
        super().__init__(solution_cache_size=0)

    def measure_batch(self, scenario, requests):
        return [self.measure(scenario, c, seed=s) for c, s in requests]


def _canonical(result) -> str:
    return json.dumps(result.canonical_dict(), sort_keys=True)


def _timed_fig4(jobs: int, memoize: bool, serial_backend: bool):
    cfg = ExperimentConfig(**REDUCED, jobs=jobs, memoize=memoize)
    backend = SerialBaselineBackend() if serial_backend else None
    start = time.perf_counter()
    result = fig4.run(cfg, backend=backend)
    return time.perf_counter() - start, result


#: Noise repeats per sweep point (both arms; the batched arm solves each
#: distinct configuration once however many repeats there are).
SWEEP_REPEATS = 5


def _timed_sweep(serial_backend: bool):
    cluster = ClusterSpec.three_tier(1, 1, 1)
    scenario = Scenario(cluster=cluster, mix=SHOPPING_MIX, population=750)
    backend = SerialBaselineBackend() if serial_backend else AnalyticBackend()
    names = cluster.full_space().names[:10]
    start = time.perf_counter()
    report = sensitivity_report(
        backend, scenario, names=names, repeats=SWEEP_REPEATS, seed=5
    )
    return time.perf_counter() - start, report, backend


def test_parallel_engine_speedups(report):
    t_serial, r_serial = _timed_fig4(jobs=1, memoize=False, serial_backend=True)
    t_parallel, r_parallel = _timed_fig4(jobs=4, memoize=True, serial_backend=False)
    t_batched, r_batched = _timed_fig4(jobs=1, memoize=True, serial_backend=False)

    # Hard constraint: the fast paths change wall-clock only, never numbers.
    assert _canonical(r_parallel) == _canonical(r_serial)
    assert _canonical(r_batched) == _canonical(r_serial)

    t_sweep_serial, sweep_serial, _ = _timed_sweep(serial_backend=True)
    t_sweep_batched, sweep_batched, sweep_backend = _timed_sweep(
        serial_backend=False
    )
    assert sweep_batched == sweep_serial  # bit-identical curves

    fig4_parallel_speedup = t_serial / t_parallel
    fig4_batched_speedup = t_serial / t_batched
    sweep_speedup = t_sweep_serial / t_sweep_batched

    # Acceptance: >= 2x on the reduced Fig-4 matrix, >= 5x on the
    # sensitivity sweep via batched MVA.
    assert fig4_parallel_speedup >= 2.0
    assert sweep_speedup >= 5.0

    cache_stats = dict(r_batched.cache_stats or {})
    parallel_cache_stats = dict(r_parallel.cache_stats or {})
    solution_stats = sweep_backend.solution_cache_stats.as_dict()
    host_cpus = os.cpu_count() or 1
    oversubscribed = host_cpus < 4
    payload = {
        "schema": "bench_parallel/v2",
        "description": (
            "Reduced Fig-4 matrix + sensitivity sweep: serial no-cache "
            "baseline vs the --jobs 4 process pool vs the single-process "
            "cache+batched-MVA stack.  All arms bit-identical (asserted)."
        ),
        "host_cpus": host_cpus,
        "fig4_reduced": {
            "config": REDUCED,
            "serial_seconds": round(t_serial, 3),
            "parallel_jobs4_seconds": round(t_parallel, 3),
            "batched_jobs1_seconds": round(t_batched, 3),
            "parallel_jobs": 4,
            "parallel_effective_workers": min(4, host_cpus),
            "oversubscribed": oversubscribed,
            "speedup_provenance": (
                "parallel_speedup mixes process fan-out with the "
                "memoization+batching the engine path enables; on this "
                f"{host_cpus}-CPU host the pool adds no real concurrency "
                "and the caches carry the number"
                if oversubscribed
                else "parallel_speedup combines process fan-out "
                "with memoization+batching"
            ),
            "parallel_speedup": round(fig4_parallel_speedup, 2),
            "batched_speedup": round(fig4_batched_speedup, 2),
            "cache_stats": cache_stats,
            "parallel_worker_cache_stats": parallel_cache_stats,
            "bit_identical": True,
        },
        "sensitivity_sweep": {
            "parameters": 10,
            "serial_seconds": round(t_sweep_serial, 3),
            "batched_seconds": round(t_sweep_batched, 3),
            "batched_speedup": round(sweep_speedup, 2),
            "solution_cache": solution_stats,
            "bit_identical": True,
        },
    }
    atomic_write_json(RESULT_PATH, payload)

    lines = [
        "Parallel engine benchmark (reduced Fig-4 matrix + sensitivity sweep)",
        f"  fig4 serial        {t_serial:6.2f} s",
        f"  fig4 --jobs 4      {t_parallel:6.2f} s   ({fig4_parallel_speedup:.2f}x)",
        f"  fig4 batched       {t_batched:6.2f} s   ({fig4_batched_speedup:.2f}x)",
        f"  sweep serial       {t_sweep_serial:6.2f} s",
        f"  sweep batched      {t_sweep_batched:6.2f} s   ({sweep_speedup:.2f}x)",
        f"  measurement cache hit rate "
        f"{cache_stats.get('measurement_hit_rate', 0.0) * 100:.0f}%, "
        f"solution cache hit rate "
        f"{cache_stats.get('solution_hit_rate', 0.0) * 100:.0f}%",
        f"  pooled-run worker cache hits (delta-aggregated): "
        f"{parallel_cache_stats.get('measurement_hits', 0):.0f} measurement / "
        f"{parallel_cache_stats.get('solution_hits', 0):.0f} solution",
        f"  host CPUs: {os.cpu_count()}"
        + ("  (jobs=4 oversubscribed)" if oversubscribed else ""),
        f"  results bit-identical across all arms: yes",
        f"  written to {RESULT_PATH.name}",
    ]
    report("parallel_engine", "\n".join(lines))
