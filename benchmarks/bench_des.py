"""The DES fast path end to end: kernel speedup, identity, replications.

Four arms, written to ``BENCH_des.json``:

* **Kernel churn (gated)** — a delay-dominated workload (50 processes x
  1600 plain-delay yields, the kernel's dominant operation) dispatched
  by the fast path and by the pre-PR seed kernel (``legacy``, also
  reachable process-wide via ``REPRO_DES_LEGACY=1``).  Timings are
  interleaved best-of-N to defeat host noise; the fast kernel must
  sustain **>= 3x** the legacy entries/second.
* **Measurement wall-clock** — a full ``SimulationBackend.measure`` on a
  TPC-W scenario, fast vs legacy kernel.  Reported, not gated: the two
  paths share the model/bookkeeping body (service sampling, resource
  stats), which bounds the end-to-end ratio well below the kernel's.
* **Bit identity** — the same measurement on both kernels must agree
  byte for byte (floats compared via ``float.hex()``); the speedup is
  free, not a trade.
* **Replications** — ``replications=4`` merged serially and via the
  parallel executor must be identical; both wall-clocks are reported.
"""

from __future__ import annotations

import os
import pathlib
import time

from repro.cluster.topology import ClusterSpec
from repro.des.backend import SimulationBackend
from repro.model.base import Measurement, Scenario
from repro.sim.core import Environment
from repro.tpcw.interactions import SHOPPING_MIX
from repro.util.serialization import atomic_write_json
from repro.util.tables import Table

RESULT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_des.json"

#: Kernel-churn workload shape: processes x plain-delay yields each.
CHURN_PROCESSES = 50
CHURN_LOOPS = 1600

#: Interleaved repetitions per kernel (best-of; the host is noisy).
CHURN_REPEATS = 9
MEASURE_REPEATS = 6

SPEEDUP_GATE = 3.0


def _churn_env(fast: bool) -> Environment:
    """The delay-dominated workload on the chosen kernel."""
    env = Environment(fast=fast)

    def ticker(delay: float):
        for _ in range(CHURN_LOOPS):
            yield delay

    for i in range(CHURN_PROCESSES):
        env.process(ticker(0.001 + i * 1e-6))
    return env


def _run_churn(fast: bool) -> tuple[float, int]:
    """(wall-clock seconds, heap entries dispatched) for one run."""
    env = _churn_env(fast)
    start = time.perf_counter()
    env.run()
    return time.perf_counter() - start, env.scheduled_entries


def _scenario() -> tuple[Scenario, dict]:
    cluster = ClusterSpec.three_tier(1, 1, 1)
    scenario = Scenario(cluster=cluster, mix=SHOPPING_MIX, population=120)
    return scenario, cluster.default_configuration()


def _hex_measurement(m: Measurement) -> dict:
    """Byte-exact JSON form (mirrors tests/des_golden_cases.py)."""
    return {
        "wips": m.wips.hex(),
        "raw_wips": m.raw_wips.hex(),
        "error_rate": m.error_rate.hex(),
        "response_time": m.response_time.hex(),
        "utilization": {
            node: {k: float(v).hex() for k, v in sorted(u.as_dict().items())}
            for node, u in sorted(m.utilization.items())
        },
        "diagnostics": {
            k: float(v).hex() for k, v in sorted(m.diagnostics.items())
        },
    }


def test_des_fast_path(report):
    # --- arm 1: kernel churn, gated >= 3x --------------------------------
    t_fast = t_legacy = float("inf")
    entries = 0
    for _ in range(CHURN_REPEATS):
        dt, entries = _run_churn(fast=True)
        t_fast = min(t_fast, dt)
        dt, legacy_entries = _run_churn(fast=False)
        t_legacy = min(t_legacy, dt)
        assert legacy_entries >= entries  # same workload, more event traffic
    fast_eps = entries / t_fast
    legacy_eps = entries / t_legacy
    churn_speedup = t_legacy / t_fast
    assert churn_speedup >= SPEEDUP_GATE, (
        f"fast kernel only {churn_speedup:.2f}x the seed kernel "
        f"(gate {SPEEDUP_GATE}x)"
    )

    # --- arm 2: end-to-end measurement wall-clock (reported) -------------
    scenario, config = _scenario()
    fast_backend = SimulationBackend(time_scale=0.05)
    legacy_backend = SimulationBackend(time_scale=0.05, legacy_kernel=True)
    m_fast = m_legacy = None
    t_m_fast = t_m_legacy = float("inf")
    for _ in range(MEASURE_REPEATS):
        start = time.perf_counter()
        m_fast = fast_backend.measure(scenario, config, seed=3)
        t_m_fast = min(t_m_fast, time.perf_counter() - start)
        start = time.perf_counter()
        m_legacy = legacy_backend.measure(scenario, config, seed=3)
        t_m_legacy = min(t_m_legacy, time.perf_counter() - start)
    measure_speedup = t_m_legacy / t_m_fast

    # --- arm 3: bit identity across kernels ------------------------------
    assert _hex_measurement(m_fast) == _hex_measurement(m_legacy)

    # --- arm 4: replications, serial == parallel -------------------------
    # At least two workers even on a one-core host, so the identity
    # assertion genuinely crosses the process-pool merge path.
    jobs = max(2, min(4, os.cpu_count() or 1))
    serial = SimulationBackend(
        time_scale=0.05, replications=4, replication_jobs=1
    )
    parallel = SimulationBackend(
        time_scale=0.05, replications=4, replication_jobs=jobs
    )
    start = time.perf_counter()
    m_serial = serial.measure(scenario, config, seed=3)
    t_serial = time.perf_counter() - start
    start = time.perf_counter()
    m_parallel = parallel.measure(scenario, config, seed=3)
    t_parallel = time.perf_counter() - start
    assert _hex_measurement(m_serial) == _hex_measurement(m_parallel)
    ci95 = m_serial.diagnostics["replication.wips_ci95"]

    payload = {
        "schema": "bench_des/v1",
        "description": (
            "DES fast path: lean-kernel event churn (gated >= 3x vs the "
            "pre-PR seed kernel), end-to-end measurement wall-clock, "
            "byte-identity of the default path, and serial-vs-parallel "
            "replication identity."
        ),
        "host_cpus": os.cpu_count(),
        "kernel_churn": {
            "workload": (
                f"{CHURN_PROCESSES} processes x {CHURN_LOOPS} "
                "plain-delay yields"
            ),
            "entries_dispatched": entries,
            "protocol": (
                f"interleaved best-of-{CHURN_REPEATS} wall-clock per kernel"
            ),
            "fast_seconds": round(t_fast, 6),
            "legacy_seconds": round(t_legacy, 6),
            "fast_entries_per_second": round(fast_eps),
            "legacy_entries_per_second": round(legacy_eps),
            "speedup": round(churn_speedup, 2),
            "speedup_gate": SPEEDUP_GATE,
        },
        "measure_wall_clock": {
            "scenario": "three_tier(1,1,1), shopping mix, N=120",
            "time_scale": 0.05,
            "protocol": f"interleaved best-of-{MEASURE_REPEATS}",
            "fast_seconds": round(t_m_fast, 4),
            "legacy_seconds": round(t_m_legacy, 4),
            "speedup": round(measure_speedup, 2),
            "gated": False,
            "note": (
                "both kernels share the model/bookkeeping body, which "
                "bounds the end-to-end ratio; the kernel arm carries "
                "the gate"
            ),
        },
        "bit_identity": {
            "seed": 3,
            "byte_identical": True,
            "comparison": "float.hex() over all measurement fields",
        },
        "replications": {
            "replications": 4,
            "parallel_jobs": jobs,
            "serial_seconds": round(t_serial, 3),
            "parallel_seconds": round(t_parallel, 3),
            "wips": round(m_serial.wips, 4),
            "wips_ci95": round(ci95, 4),
            "serial_parallel_identical": True,
        },
    }
    atomic_write_json(RESULT_PATH, payload)

    table = Table(
        "DES fast path (lean kernel + block-sampled RNG)",
        ["Arm", "Fast", "Legacy", "Speedup"],
    )
    table.add_row(
        f"kernel churn ({entries:,} entries)",
        f"{t_fast * 1e3:.1f} ms",
        f"{t_legacy * 1e3:.1f} ms",
        f"{churn_speedup:.2f}x (gate {SPEEDUP_GATE}x)",
    )
    table.add_row(
        "measure() wall-clock",
        f"{t_m_fast * 1e3:.0f} ms",
        f"{t_m_legacy * 1e3:.0f} ms",
        f"{measure_speedup:.2f}x",
    )
    table.add_row(
        "replications R=4",
        f"{t_parallel * 1e3:.0f} ms (jobs={jobs})",
        f"{t_serial * 1e3:.0f} ms (serial)",
        f"{t_serial / t_parallel:.2f}x",
    )
    report(
        "des_fast_path",
        table,
        f"byte-identical: fast == legacy == serial == parallel "
        f"({m_serial.wips:.2f} WIPS +/- {ci95:.2f} 95% CI over 4 "
        f"replications)",
    )
