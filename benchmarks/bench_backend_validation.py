"""Substrate cross-validation: DES vs analytic backend.

Not a paper table, but the evaluation-integrity check behind every other
bench: the analytic model used for the 200-iteration sweeps must agree with
the request-level simulation on throughput and utilizations.
"""

from repro.cluster.topology import ClusterSpec
from repro.des.backend import SimulationBackend
from repro.model.analytic import AnalyticBackend
from repro.model.base import Scenario
from repro.model.noise import NoiseModel
from repro.tpcw.interactions import STANDARD_MIXES
from repro.util.tables import Table


def _validate():
    cluster = ClusterSpec.three_tier(1, 1, 1)
    cfg = cluster.default_configuration()
    des = SimulationBackend(time_scale=0.1)
    ana = AnalyticBackend(noise=NoiseModel(0.0, 0.0, 0.0))
    table = Table(
        "Backend cross-validation (default config, N=600)",
        ["Mix", "DES WIPS", "Analytic WIPS", "Ratio",
         "DES proxy disk util", "Analytic proxy disk util"],
    )
    ratios = []
    for name, mix in STANDARD_MIXES.items():
        sc = Scenario(cluster=cluster, mix=mix, population=600)
        m_des = des.measure(sc, cfg, seed=11)
        m_ana = ana.measure(sc, cfg, seed=11)
        ratio = m_des.wips / m_ana.wips
        ratios.append(ratio)
        table.add_row(
            name,
            f"{m_des.wips:.1f}",
            f"{m_ana.wips:.1f}",
            f"{ratio:.3f}",
            f"{m_des.utilization['proxy0'].disk:.2f}",
            f"{m_ana.utilization['proxy0'].disk:.2f}",
        )
    return table, ratios


def test_backend_cross_validation(benchmark, report):
    table, ratios = benchmark.pedantic(_validate, rounds=1, iterations=1)
    for ratio in ratios:
        assert 0.88 <= ratio <= 1.12
    report("backend_validation", table)
