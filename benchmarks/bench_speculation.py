"""Speculative lookahead vs the serial tuning loop, measured end to end.

The workload is the PR's acceptance target: a full 200-iteration Table 4
partitioned tuning run (two work lines, two nodes per tier) on the
analytic backend — the serial ``ask → measure → tell`` chain that PR 1's
parallel engine cannot touch.  Two arms:

* **serial** — the session as the paper drives it, one solve per step;
* **speculative** — ``speculate=True``: each step's frontier is solved in
  one batched call before the committed ask needs it.

Timing methodology: the arms are *interleaved* and each is run
``REPEATS`` times, reporting the best (minimum) wall-clock per arm.  On a
shared single-core runner background load adds up to ~6% noise per
reading; min-of-N of interleaved readings exposes both arms to the same
conditions and converges on the machine's actual speed, where a single
pair of back-to-back readings can flatter either arm.

Bit-identity is re-asserted on every repeat — full trajectories compared
``==`` — before any timing is reported.  Results go to
``BENCH_speculation.json`` in the repo root next to ``BENCH_parallel.json``.
"""

from __future__ import annotations

import os
import pathlib
import time

from repro.cluster.topology import ClusterSpec
from repro.model.analytic import AnalyticBackend
from repro.model.base import MemoizedBackend, Scenario
from repro.tpcw.interactions import SHOPPING_MIX
from repro.tuning.session import ClusterTuningSession, make_scheme
from repro.util.rng import derive_seed
from repro.util.serialization import atomic_write_json

RESULT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_speculation.json"

ITERATIONS = 200
REPEATS = 2


def _timed_run(speculate: bool):
    """One full tuning run; returns (seconds, trajectory, session, backend)."""
    backend = MemoizedBackend(AnalyticBackend())
    cluster = ClusterSpec.three_tier(2, 2, 2)
    scenario = Scenario(cluster=cluster, mix=SHOPPING_MIX, population=2000)
    session = ClusterTuningSession(
        backend,
        scenario,
        scheme=make_scheme(scenario, "partitioning", work_lines=2),
        strategy="simplex",
        seed=derive_seed(17, "table4", "partitioning"),
        speculate=speculate,
    )
    start = time.perf_counter()
    session.run(ITERATIONS)
    elapsed = time.perf_counter() - start
    trajectory = [
        (r.configuration, r.performance) for r in session.history.records
    ]
    return elapsed, trajectory, session, backend


def test_speculation_speedup(report):
    serial_times: list[float] = []
    spec_times: list[float] = []
    spec_stats = None
    cache_stats = None
    for _ in range(REPEATS):
        t_serial, traj_serial, _, _ = _timed_run(speculate=False)
        t_spec, traj_spec, session, backend = _timed_run(speculate=True)
        # Hard contract, checked before any timing is believed: the
        # speculative arm replays the serial trajectory exactly.
        assert traj_spec == traj_serial
        serial_times.append(t_serial)
        spec_times.append(t_spec)
        spec_stats = session.speculation_stats
        cache_stats = backend.stats

    best_serial = min(serial_times)
    best_spec = min(spec_times)
    speedup = best_serial / best_spec

    # Acceptance: >= 2x wall-clock on the Table 4 partitioned benchmark.
    assert speedup >= 2.0

    payload = {
        "host_cpus": os.cpu_count(),
        "workload": {
            "experiment": "table4 partitioned tuning",
            "cluster": "three_tier(2, 2, 2)",
            "mix": "shopping",
            "population": 2000,
            "iterations": ITERATIONS,
            "strategy": "simplex",
        },
        "methodology": (
            f"best of {REPEATS} interleaved serial/speculative repeats; "
            "bit-identity asserted on every repeat"
        ),
        "serial_seconds": [round(t, 3) for t in serial_times],
        "speculative_seconds": [round(t, 3) for t in spec_times],
        "best_serial_seconds": round(best_serial, 3),
        "best_speculative_seconds": round(best_spec, 3),
        "speedup": round(speedup, 2),
        "speculation": spec_stats.as_dict(),
        # Measurement-cache counters of the speculative arm.  hit_rate 0.0
        # is by design here (per-iteration seeds); config_cold_misses is
        # the number that would indicate a broken cache.
        "measurement_cache": cache_stats.as_dict(),
        "bit_identical": True,
    }
    atomic_write_json(RESULT_PATH, payload)

    lines = [
        "Speculative lookahead benchmark (table4 partitioned, 200 iterations)",
        f"  serial       best of {REPEATS}  {best_serial:6.2f} s   "
        f"(all: {', '.join(f'{t:.2f}' for t in serial_times)})",
        f"  speculative  best of {REPEATS}  {best_spec:6.2f} s   "
        f"(all: {', '.join(f'{t:.2f}' for t in spec_times)})",
        f"  speedup      {speedup:.2f}x",
        f"  hit rate     {spec_stats.hit_rate * 100:.1f}% of committed asks "
        "were prefetched",
        f"  waste ratio  {spec_stats.waste_ratio * 100:.1f}% of speculated "
        "candidates never committed",
        f"  trajectories bit-identical on every repeat: yes",
        f"  written to {RESULT_PATH.name}",
    ]
    report("speculation", "\n".join(lines))
