#!/usr/bin/env python
"""Tuning over the network: the original Active Harmony deployment shape.

The real Active Harmony Adaptation Controller ran as a daemon; the tunable
servers of the cluster connected to it over TCP.  This example starts a
Harmony TCP server in-process, then connects two independent *remote*
clients — standing in for a Squid box and a MySQL box on other machines —
each registering its own parameters and tuning against its own synthetic
performance surface, concurrently.

Run:  python examples/remote_tuning.py
"""

import threading

import numpy as np

from repro import HarmonyServer, IntParameter
from repro.harmony.net import HarmonyTCPServer, RemoteHarmonyClient

SQUID_PARAMS = [
    IntParameter("cache_mem", default=8, low=4, high=256),
    IntParameter("store_objects_per_bucket", default=20, low=5, high=200, step=5),
]
MYSQL_PARAMS = [
    IntParameter("table_cache", default=64, low=16, high=1024, step=16),
    IntParameter("thread_cache", default=10, low=1, high=128),
]


def squid_hit_rate(cfg, rng):
    """Synthetic proxy metric: hit rate grows with cache, lookup cost bites."""
    hits = 1.0 - np.exp(-cfg["cache_mem"] / 64.0)
    lookup_penalty = 0.0006 * cfg["store_objects_per_bucket"]
    return float((hits - lookup_penalty) * 100 * np.exp(rng.normal(0, 0.01)))


def mysql_qps(cfg, rng):
    """Synthetic database metric: open-table misses dominate."""
    miss = np.exp(-cfg["table_cache"] / 260.0)
    churn = 0.3 * np.exp(-cfg["thread_cache"] / 20.0)
    qps = 1000.0 / (1.0 + 2.0 * miss + churn)
    return float(qps * np.exp(rng.normal(0, 0.01)))


def tune_remotely(address, name, params, metric, iterations, out):
    rng = np.random.default_rng(hash(name) % 2**32)
    with RemoteHarmonyClient(*address, name) as client:
        client.register(params)
        default = metric({p.name: p.default for p in params}, rng)
        for _ in range(iterations):
            cfg = client.fetch()
            client.report(metric(cfg, rng))
        best = client.unregister()
        out[name] = (default, metric(best, rng), dict(best))


def main() -> None:
    server = HarmonyTCPServer(HarmonyServer(seed=2024))
    results: dict = {}
    with server.running() as address:
        print(f"harmony server listening on {address[0]}:{address[1]}")
        workers = [
            threading.Thread(
                target=tune_remotely,
                args=(address, "squid-box", SQUID_PARAMS, squid_hit_rate, 80, results),
            ),
            threading.Thread(
                target=tune_remotely,
                args=(address, "mysql-box", MYSQL_PARAMS, mysql_qps, 80, results),
            ),
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()

    for name, (default, tuned, best) in sorted(results.items()):
        print(f"\n{name}: {default:8.1f} -> {tuned:8.1f} "
              f"({tuned / default - 1:+.1%})")
        for key, value in sorted(best.items()):
            print(f"   {key:26s} = {value}")


if __name__ == "__main__":
    main()
