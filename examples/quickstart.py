#!/usr/bin/env python
"""Quickstart: tune a three-tier TPC-W cluster with Active Harmony.

Builds the paper's basic setup — one proxy (Squid model), one application
server (Tomcat model), one database (MySQL model), 750 emulated browsers on
the shopping mix — and runs 100 tuning iterations of the integer-adapted
Nelder–Mead simplex over all 23 Table-3 parameters.

Run:  python examples/quickstart.py
"""

from repro import (
    AnalyticBackend,
    ClusterSpec,
    ClusterTuningSession,
    Scenario,
    SHOPPING_MIX,
    make_scheme,
)

ITERATIONS = 100


def main() -> None:
    cluster = ClusterSpec.three_tier(n_proxy=1, n_app=1, n_db=1)
    scenario = Scenario(cluster=cluster, mix=SHOPPING_MIX, population=750)
    backend = AnalyticBackend()

    session = ClusterTuningSession(
        backend,
        scenario,
        scheme=make_scheme(scenario, "default"),  # one server, all params
        seed=42,
    )

    baseline = session.measure_baseline(iterations=10).window_stats(0)
    print(f"default configuration: {baseline.mean:6.1f} WIPS "
          f"(sd {baseline.stddev:.1f})")

    print(f"tuning for {ITERATIONS} iterations ...")
    for i in range(ITERATIONS):
        measurement = session.step()
        if (i + 1) % 20 == 0:
            window = session.history.window_stats(max(0, i - 19), i + 1)
            print(f"  iteration {i + 1:3d}: recent mean {window.mean:6.1f} WIPS")

    best = session.best_configuration()
    best_wips = session.history.best().performance
    print(f"\nbest measured: {best_wips:.1f} WIPS "
          f"({(best_wips / baseline.mean - 1) * 100:+.1f}% vs default)")
    print("\nmost-moved parameters (vs default):")
    default = cluster.default_configuration()
    moves = sorted(
        ((name, default[name], best[name]) for name in default),
        key=lambda t: abs(t[2] - t[1]) / max(abs(t[1]), 1),
        reverse=True,
    )
    for name, before, after in moves[:8]:
        print(f"  {name:42s} {before:>10,} -> {after:>10,}")


if __name__ == "__main__":
    main()
