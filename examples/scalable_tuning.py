#!/usr/bin/env python
"""Scalable cluster tuning: default vs duplication vs partitioning (§III.B).

On a 2-proxy / 2-app / 2-database cluster, the default method must search a
46-dimensional space through one aggregate WIPS signal.  Parameter
duplication tunes 23 tier-level parameters; parameter partitioning splits
the cluster into two work lines, each tuned by its own Harmony server fed
by its own line's throughput.  This example reproduces the Table 4
comparison at a reduced iteration budget.

Run:  python examples/scalable_tuning.py
"""

from repro import (
    AnalyticBackend,
    ClusterSpec,
    ClusterTuningSession,
    Scenario,
    SHOPPING_MIX,
    make_scheme,
)

ITERATIONS = 80


def main() -> None:
    cluster = ClusterSpec.three_tier(2, 2, 2)
    scenario = Scenario(cluster=cluster, mix=SHOPPING_MIX, population=1600)
    backend = AnalyticBackend()

    probe = ClusterTuningSession(backend, scenario, seed=1)
    baseline = probe.measure_baseline(iterations=10).window_stats(0)
    print(f"no tuning: {baseline.mean:6.1f} WIPS (sd {baseline.stddev:.1f})\n")

    print(f"{'method':<14} {'dims':>5} {'best WIPS':>10} {'improve':>8} "
          f"{'2nd-half sd':>12} {'converged at':>13}")
    for method in ("default", "duplication", "partitioning"):
        scheme = make_scheme(scenario, method, work_lines=2)
        session = ClusterTuningSession(
            backend, scenario, scheme=scheme, seed=23
        )
        session.run(ITERATIONS)
        history = session.history
        best = history.best().performance
        window = history.window_stats(ITERATIONS // 2)
        print(
            f"{method:<14} {scheme.max_group_dimension:>5} "
            f"{best:>10.1f} "
            f"{(best / baseline.mean - 1) * 100:>7.1f}% "
            f"{window.stddev:>12.1f} "
            f"{history.iterations_to_converge():>13}"
        )

    print(
        "\nBoth scaled methods search half the dimensions per tuning server"
        "\n(23 vs 46): duplication tunes one representative node per tier and"
        "\ncopies values within the tier; partitioning gives each work line"
        "\nits own Harmony server fed by its own line's WIPS."
    )


if __name__ == "__main__":
    main()
