#!/usr/bin/env python
"""Scalable cluster tuning: a 64/128/16 cluster at one million browsers.

The paper's duplication method (§III.B) tunes one representative node
per tier and copies values within the tier — the tuned dimension count
is independent of cluster width.  The approximation stack makes the
*measurement* side scale the same way: hierarchical aggregation solves
one station per replica group (208 nodes cost the same as 3) and the
fluid MVA solver's cost is independent of the population, so tuning a
208-node cluster at N=10^6 runs in seconds on a laptop.

For contrast, the same protocol is repeated on the paper-sized 2/2/2
cluster at N=1600 — same code path, the backend just resolves to the
exact per-node solve there (`approximation="auto"`).

Run:  python examples/scalable_tuning.py
"""

from repro import (
    AnalyticBackend,
    ClusterSpec,
    ClusterTuningSession,
    Scenario,
    SHOPPING_MIX,
    make_scheme,
)

ITERATIONS = 80


def tune(cluster: ClusterSpec, population: int) -> None:
    scenario = Scenario(
        cluster=cluster, mix=SHOPPING_MIX, population=population
    )
    backend = AnalyticBackend()
    fluid, hier = backend.resolve_modes(cluster, population)
    modes = {
        (False, False): "exact per-node Schweitzer",
        (True, False): "fluid",
        (False, True): "hierarchical",
        (True, True): "fluid + hierarchical",
    }[(fluid, hier)]
    print(
        f"{cluster!r}, N={population:,}\n"
        f"  auto-selected solver: {modes}"
    )

    probe = ClusterTuningSession(backend, scenario, seed=1)
    baseline = probe.measure_baseline(iterations=10).window_stats(0)
    m = backend.measure(
        scenario, cluster.default_configuration(), seed=1
    )
    if m.diagnostics.get("solver.aggregated_nodes"):
        print(
            f"  aggregation folded away "
            f"{m.diagnostics['solver.aggregated_nodes']:.0f} of "
            f"{cluster.num_nodes} nodes"
        )
    print(f"  no tuning: {baseline.mean:8.1f} WIPS (sd {baseline.stddev:.1f})")

    scheme = make_scheme(scenario, "duplication")
    session = ClusterTuningSession(backend, scenario, scheme=scheme, seed=23)
    session.run(ITERATIONS)
    history = session.history
    best = history.best().performance
    print(
        f"  duplication ({scheme.max_group_dimension} dims): "
        f"{best:8.1f} WIPS "
        f"({(best / baseline.mean - 1) * 100:+.1f}%), "
        f"converged at iteration {history.iterations_to_converge()}\n"
    )


def main() -> None:
    import time

    start = time.perf_counter()
    tune(ClusterSpec.wide(64, 128, 16), population=1_000_000)
    tune(ClusterSpec.three_tier(2, 2, 2), population=1600)
    print(
        f"both runs: {time.perf_counter() - start:.1f} s — the wide\n"
        "cluster costs about the same as the paper-sized one because the\n"
        "duplication scheme's dimension count, the hierarchical solve's\n"
        "station count and the fluid solver's iteration count are all\n"
        "independent of cluster width and population."
    )


if __name__ == "__main__":
    main()
