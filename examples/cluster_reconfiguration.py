#!/usr/bin/env python
"""Automatic cluster reconfiguration (the paper's §IV / Figure 7 scenario).

A six-node front cluster (4 proxies + 2 application servers, plus two
databases) tuned with the duplication scheme serves a browsing workload
that turns into ordering traffic.  The application tier saturates; the §IV
algorithm spots an over-loaded app node (CPU above the high threshold) and
an idle proxy (every resource below the low thresholds), checks the cost
model, and re-roles the proxy into the application tier without stopping
the system.

Run:  python examples/cluster_reconfiguration.py
"""

from repro import (
    AnalyticBackend,
    BROWSING_MIX,
    ClusterSpec,
    ClusterTuningSession,
    ORDERING_MIX,
    Reconfigurator,
    Scenario,
    make_scheme,
)

SWITCH_AT = 40
RECONFIG_AT = 50
TOTAL = 100


def tier_report(measurement, cluster) -> str:
    parts = []
    for node_id, util in measurement.utilization.items():
        parts.append(f"{node_id}:{util.max_utilization():.2f}")
    return " ".join(parts)


def main() -> None:
    cluster = ClusterSpec.three_tier(n_proxy=4, n_app=2, n_db=2)
    scenario = Scenario(cluster=cluster, mix=BROWSING_MIX, population=2000)
    session = ClusterTuningSession(
        AnalyticBackend(), scenario,
        scheme=make_scheme(scenario, "duplication"), seed=11,
    )
    reconfigurator = Reconfigurator()

    for i in range(TOTAL):
        if i == SWITCH_AT:
            print(f"[{i:3d}] workload switches browsing -> ordering")
            session.set_mix(ORDERING_MIX)
        measurement = session.step()
        if i % 10 == 0:
            print(f"[{i:3d}] {measurement.wips:7.1f} WIPS   "
                  f"busiest-resource per node: "
                  f"{tier_report(measurement, session.scenario.cluster)}")
        if i == RECONFIG_AT:
            decision = reconfigurator.decide(
                session.scenario.cluster, measurement
            )
            if decision is None:
                print(f"[{i:3d}] reconfiguration check: no move warranted")
            else:
                print(
                    f"[{i:3d}] reconfiguration: move {decision.node_id} "
                    f"{decision.from_role.value} -> {decision.to_role.value} "
                    f"(relieves {decision.relieves}, eq(1) cost "
                    f"{decision.cost:.2f}, "
                    f"{'immediate' if decision.immediate else 'after drain'})"
                )
                session.set_cluster(
                    reconfigurator.apply(session.scenario.cluster, decision)
                )

    wips = session.history.performances()
    before = wips[SWITCH_AT + 5 : RECONFIG_AT + 1].mean()
    after = wips[RECONFIG_AT + 5 :].mean()
    print(f"\nordering WIPS before reconfiguration: {before:7.1f}")
    print(f"ordering WIPS after reconfiguration:  {after:7.1f} "
          f"({(after / before - 1) * 100:+.0f}%)")


if __name__ == "__main__":
    main()
