#!/usr/bin/env python
"""Which knobs matter?  (the paper's §III.A diagnostic use of Harmony)

Two complementary views of the same question:

1. **Ground truth** — one-at-a-time sweeps of a few interesting parameters
   on the analytic backend, reporting each knob's effect size.
2. **What a tuning run reveals** — run Active Harmony for a while and mine
   the recorded history for parameter importance, the way an administrator
   who only has the live system would.

Run:  python examples/sensitivity_analysis.py
"""

from repro import (
    AnalyticBackend,
    BROWSING_MIX,
    ClusterSpec,
    ClusterTuningSession,
    Scenario,
    make_scheme,
)
from repro.analysis import (
    history_importance,
    importance_table,
    sensitivity_report,
)

INTERESTING = (
    "proxy0.cache_mem",
    "proxy0.maximum_object_size_in_memory",
    "proxy0.cache_swap_low",
    "proxy0.cache_swap_high",
    "app0.maxProcessors",
    "db0.table_cache",
    "db0.join_buffer_size",
)


def main() -> None:
    cluster = ClusterSpec.three_tier(1, 1, 1)
    scenario = Scenario(cluster=cluster, mix=BROWSING_MIX, population=750)
    backend = AnalyticBackend()

    print("sweeping parameters one at a time (ground truth) ...")
    report = sensitivity_report(
        backend, scenario, names=INTERESTING, points=5, repeats=3, seed=2
    )
    print(report.to_table())
    swap = report.curve("proxy0.cache_swap_low").effect_size
    cache = report.curve("proxy0.cache_mem").effect_size
    print(
        f"\n-> cache_mem moves WIPS by {cache:.0%}; the eviction watermark "
        f"moves it by {swap:.1%} — the paper's finding that the watermarks "
        "'do not impact the overall system performance'.\n"
    )

    print("running 80 tuning iterations and mining the history ...")
    session = ClusterTuningSession(
        backend, scenario, scheme=make_scheme(scenario, "default"), seed=9
    )
    session.run(80)
    importances = history_importance(session.history, cluster.full_space())
    print(importance_table(importances, top=10))


if __name__ == "__main__":
    main()
