#!/usr/bin/env python
"""Adapting to a changing workload (the paper's Figure 5 scenario).

The store starts under the browsing mix; after 60 iterations the traffic
turns into the ordering mix (a sale day), and later back.  The adaptive
session detects each shift from the WIPS level change and restarts its
search from the best configuration it knows, re-adapting within a few
iterations — the behaviour the paper demonstrates in Figure 5.

Run:  python examples/adaptive_workload.py
"""

from repro import (
    AnalyticBackend,
    AdaptiveTuningSession,
    BROWSING_MIX,
    ClusterSpec,
    ClusterTuningSession,
    ORDERING_MIX,
    Scenario,
    make_scheme,
)

SEGMENT = 60
SCHEDULE = [("browsing", BROWSING_MIX), ("ordering", ORDERING_MIX),
            ("browsing", BROWSING_MIX)]


def sparkline(values, width=50, lo=None, hi=None) -> str:
    blocks = " .:-=+*#%@"
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    span = max(hi - lo, 1e-9)
    step = max(1, len(values) // width)
    out = []
    for i in range(0, len(values), step):
        v = values[i]
        out.append(blocks[min(9, int((v - lo) / span * 9.99))])
    return "".join(out)


def main() -> None:
    cluster = ClusterSpec.three_tier(1, 1, 1)
    scenario = Scenario(cluster=cluster, mix=BROWSING_MIX, population=750)
    inner = ClusterTuningSession(
        AnalyticBackend(), scenario,
        scheme=make_scheme(scenario, "default"), seed=7,
    )
    session = AdaptiveTuningSession(inner)

    for name, mix in SCHEDULE:
        session.set_mix(mix)
        print(f"--- workload: {name} ({SEGMENT} iterations)")
        for _ in range(SEGMENT):
            session.step()
        recent = session.history.window_stats(
            len(session.history) - 20
        )
        print(f"    settled at {recent.mean:6.1f} WIPS (sd {recent.stddev:.1f})")

    wips = list(session.history.performances())
    print("\nWIPS over the whole run (one char ≈ "
          f"{max(1, len(wips) // 50)} iterations):")
    print("  " + sparkline(wips))
    print(f"search restarts triggered at iterations: {session.restarts}")


if __name__ == "__main__":
    main()
