#!/usr/bin/env python
"""Tuning an arbitrary application with the Harmony client API.

Active Harmony is "a general tuning system that has no domain specific
information" (paper §VII) — the web cluster is just one client.  This
example tunes a synthetic batch application with the same minimal API the
paper's instrumented servers used: register tunable parameters, then
alternate fetch / report.

The fake application processes records with a configurable worker count,
chunk size and compression level; its throughput surface has a ridge (too
many workers thrash, too large chunks blow the cache) plus measurement
noise, so the integer-adapted simplex has something real to climb.

Run:  python examples/custom_system.py
"""

import numpy as np

from repro import HarmonyClient, HarmonyServer, IntParameter
from repro.util.rng import spawn_rng

PARAMETERS = [
    IntParameter("workers", default=4, low=1, high=64),
    IntParameter("chunk_kb", default=64, low=16, high=4096, step=16),
    IntParameter("compression", default=6, low=0, high=9),
]

CORES = 16
CACHE_KB = 1024


def run_batch_job(cfg, rng) -> float:
    """Synthetic records/second for a configuration (noisy)."""
    workers = cfg["workers"]
    chunk = cfg["chunk_kb"]
    level = cfg["compression"]

    parallel = min(workers, CORES) * (1.0 - 0.015 * max(0, workers - CORES))
    per_record_cpu = 1.0 + 0.12 * level  # compression costs CPU
    io_bytes = 1.0 / (1.0 + 0.25 * level)  # ... but shrinks the I/O
    io_eff = min(1.0, 0.25 + chunk / 512.0)  # small chunks waste syscalls
    cache_penalty = 1.0 + max(0.0, (workers * chunk - CACHE_KB) / CACHE_KB) * 0.08

    cpu_rate = parallel / (per_record_cpu * cache_penalty)
    io_rate = 40.0 * io_eff / io_bytes
    rate = 1000.0 * min(cpu_rate / CORES, io_rate / 40.0)
    return rate * float(np.exp(rng.normal(0.0, 0.02)))


def main() -> None:
    server = HarmonyServer(seed=5)
    client = HarmonyClient(server, "batch-job")
    dims = client.register(PARAMETERS)
    print(f"registered {dims} tunable parameters with the Harmony server")

    rng = spawn_rng(99, "example.batch-job")
    default_rate = np.mean(
        [run_batch_job({p.name: p.default for p in PARAMETERS}, rng)
         for _ in range(10)]
    )
    print(f"default configuration: {default_rate:7.1f} records/s")

    for i in range(120):
        cfg = client.fetch()
        client.report(run_batch_job(cfg, rng))

    best = client.unregister()
    best_rate = np.mean([run_batch_job(best, rng) for _ in range(10)])
    print(f"tuned configuration:   {best_rate:7.1f} records/s "
          f"({(best_rate / default_rate - 1) * 100:+.0f}%)")
    print("best configuration found:")
    for name, value in sorted(best.items()):
        print(f"  {name:12s} = {value}")


if __name__ == "__main__":
    main()
