"""The tuning layer: wiring Active Harmony to the cluster under test.

* :mod:`repro.tuning.iteration` — the measurement-iteration protocol of
  §III.A (warm up / measure / cool down; the Harmony server adjusts the
  configuration between iterations),
* :mod:`repro.tuning.session` — :class:`ClusterTuningSession`, which drives
  any :class:`~repro.harmony.scaling.TuningScheme` (default method,
  parameter duplication, parameter partitioning) against a backend,
* :mod:`repro.tuning.reconfig` — the §IV automatic cluster-reconfiguration
  algorithm (Table 5 / Figure 6).
"""

from repro.tuning.adaptive import AdaptiveTuningSession
from repro.tuning.iteration import IterationRunner, IterationSpec
from repro.tuning.reconfig import (
    MoveDecision,
    ReconfigPolicy,
    Reconfigurator,
)
from repro.tuning.reconfig_loop import AppliedMove, ReconfigurationLoop
from repro.tuning.session import ClusterTuningSession, make_scheme

__all__ = [
    "AdaptiveTuningSession",
    "IterationSpec",
    "IterationRunner",
    "ClusterTuningSession",
    "make_scheme",
    "ReconfigPolicy",
    "Reconfigurator",
    "MoveDecision",
    "ReconfigurationLoop",
    "AppliedMove",
]
