"""Automatic cluster reconfiguration — the §IV algorithm.

A literal implementation of Figure 6 / Table 5 of the paper:

1. every (node *i*, resource *j*) with utilization ``R_ij`` above the high
   threshold ``HT_ij`` puts node *i* on the overloaded list ``L1``;
2. every node whose resources are *all* below the low thresholds goes on
   the lightly-loaded list ``L2``;
3. ``L1`` is sorted by *degree of urgency* (resource-priority weighted —
   the paper's footnote 3: an overloaded CPU is more urgent than a busy
   NIC);
4. for the most urgent node *i*, pick the candidate *k* in ``L2`` with
   (a) ``Tier(k) ≠ Tier(i)``, (b) ``M(Tier(k)) > 1`` (never empty a tier),
   and (c) minimal cost ``F + N_k·M_km − N_k·A_k``;
5. reconfigure *k* to serve ``Tier(i)``.

Equation (1)'s sign decides *when*: non-negative → wait for node *k*'s jobs
to drain before reconfiguring (cheaper than moving them); negative →
reconfigure immediately and migrate the jobs to same-tier peers.

The reconfiguration check runs at a lower frequency than parameter tuning
(the paper suggests every ~50 iterations) since it reacts to long-term
trends and costs more to execute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.cluster.node import Role
from repro.cluster.topology import ClusterSpec
from repro.model.base import Measurement

__all__ = ["ReconfigPolicy", "MoveDecision", "Reconfigurator"]


@dataclass(frozen=True)
class ReconfigPolicy:
    """Thresholds and cost model (the paper's Table 5 variables).

    ``high_thresholds`` / ``low_thresholds`` are the ``HT_ij`` / ``LT_ij``
    values, uniform across nodes by default.  ``urgency_weights`` order the
    resources for step 3 (CPU overload outranks network, per footnote 3).
    ``move_cost`` is ``M_km`` per job — migrating a database's jobs means
    moving state and is far more expensive than re-pointing proxy or app
    traffic, which is what keeps stateful nodes in place.  ``reconfig_cost``
    is ``F``, the fixed cost (in seconds) of restarting a node in its new
    role.
    """

    high_thresholds: Mapping[str, float] = field(
        default_factory=lambda: {
            "cpu": 0.85,
            "disk": 0.85,
            "network": 0.85,
            "memory": 0.90,
        }
    )
    low_thresholds: Mapping[str, float] = field(
        default_factory=lambda: {
            "cpu": 0.45,
            "disk": 0.45,
            "network": 0.45,
            "memory": 0.75,
        }
    )
    urgency_weights: Mapping[str, float] = field(
        default_factory=lambda: {
            "cpu": 4.0,
            "memory": 3.0,
            "disk": 2.0,
            "network": 1.0,
        }
    )
    move_cost: Mapping[Role, float] = field(
        default_factory=lambda: {Role.PROXY: 0.2, Role.APP: 0.5, Role.DB: 30.0}
    )
    reconfig_cost: float = 2.0

    def __post_init__(self) -> None:
        for resource, high in self.high_thresholds.items():
            low = self.low_thresholds.get(resource)
            if low is None:
                raise ValueError(f"no low threshold for resource {resource!r}")
            if not 0.0 < low < high:
                raise ValueError(
                    f"{resource}: need 0 < LT ({low}) < HT ({high})"
                )


@dataclass(frozen=True)
class MoveDecision:
    """The outcome of one reconfiguration check."""

    #: Node to re-role (the algorithm's *k*).
    node_id: str
    #: Tier it leaves.
    from_role: Role
    #: Tier it joins (the overloaded node's tier).
    to_role: Role
    #: The overloaded node that triggered the move (the algorithm's *i*).
    relieves: str
    #: Equation (1) value; negative → reconfigure immediately.
    cost: float

    @property
    def immediate(self) -> bool:
        """True when migrating jobs now beats waiting for them to drain."""
        return self.cost < 0.0


class Reconfigurator:
    """Stateless evaluator of the §IV algorithm over one measurement."""

    def __init__(self, policy: Optional[ReconfigPolicy] = None) -> None:
        self.policy = policy or ReconfigPolicy()

    # -- steps 1-3 -------------------------------------------------------
    def overloaded(self, measurement: Measurement) -> list[str]:
        """Step 1's L1, already sorted by step 3's degree of urgency."""
        pol = self.policy
        scored: list[tuple[float, str]] = []
        for node_id, util in measurement.utilization.items():
            urgency = 0.0
            for resource, value in util.as_dict().items():
                ht = pol.high_thresholds[resource]
                if value > ht:
                    urgency = max(
                        urgency, pol.urgency_weights[resource] * (value - ht)
                    )
            if urgency > 0.0:
                scored.append((urgency, node_id))
        scored.sort(reverse=True)
        return [node_id for _, node_id in scored]

    def underutilized(self, measurement: Measurement) -> list[str]:
        """Step 2's L2: nodes with every resource under its low threshold."""
        pol = self.policy
        out = []
        for node_id, util in measurement.utilization.items():
            if all(
                value <= pol.low_thresholds[resource]
                for resource, value in util.as_dict().items()
            ):
                out.append(node_id)
        return out

    # -- steps 4-5 ----------------------------------------------------------
    def equation1(self, measurement: Measurement, cluster: ClusterSpec,
                  node_id: str) -> float:
        """The cost ``F + N_k·M_km − N_k·A_k`` for candidate ``k``."""
        jobs = float(measurement.diagnostics.get(f"{node_id}.jobs", 1.0))
        avg_service = float(
            measurement.diagnostics.get(f"{node_id}.service_time", 0.05)
        )
        move = self.policy.move_cost[cluster.role_of(node_id)]
        return self.policy.reconfig_cost + jobs * move - jobs * avg_service

    def decide(
        self, cluster: ClusterSpec, measurement: Measurement
    ) -> Optional[MoveDecision]:
        """Run one reconfiguration check; None when no move is warranted."""
        l1 = self.overloaded(measurement)
        if not l1:
            return None
        l2 = self.underutilized(measurement)
        if not l2:
            return None
        target = l1[0]
        target_role = cluster.role_of(target)
        best: Optional[MoveDecision] = None
        for candidate in l2:
            role = cluster.role_of(candidate)
            if role is target_role:  # constraint (a)
                continue
            if cluster.tier_size(role) <= 1:  # constraint (b)
                continue
            cost = self.equation1(measurement, cluster, candidate)
            if best is None or cost < best.cost:
                best = MoveDecision(
                    node_id=candidate,
                    from_role=role,
                    to_role=target_role,
                    relieves=target,
                    cost=cost,
                )
        return best

    def apply(self, cluster: ClusterSpec, decision: MoveDecision) -> ClusterSpec:
        """Step 5: the reconfigured cluster (nodes keep their ids)."""
        return cluster.move_node(decision.node_id, decision.to_role)
