"""Cluster tuning sessions: a tuning scheme driven against a backend.

A :class:`ClusterTuningSession` owns

* a :class:`~repro.model.base.Scenario` (the cluster + workload),
* a :class:`~repro.harmony.scaling.TuningScheme` (default method /
  duplication / partitioning),
* one Harmony tuning session per scheme group (the paper's "separate
  Active Harmony tuning server for each of the groups"), and
* an :class:`~repro.tuning.iteration.IterationRunner`.

Each :meth:`step` fetches every group's next configuration fragment,
combines them into a full cluster configuration, runs one measurement
iteration, and reports back — the whole-cluster WIPS to every group under
the default/duplication methods, or each work line's own WIPS under
partitioning (the per-group signal that §III.B credits for partitioning's
stability).
"""

from __future__ import annotations

from typing import Optional

from repro.faults.resilience import ResiliencePolicy, ResilienceStats
from repro.harmony.history import TuningHistory
from repro.harmony.parameter import Configuration
from repro.harmony.scaling import (
    DuplicationScheme,
    PartitionScheme,
    TuningScheme,
    identity_scheme,
)
from repro.harmony.server import HarmonyServer
from repro.harmony.simplex import SimplexOptions
from repro.harmony.speculate import SpeculativeEvaluator
from repro.model.base import (
    Measurement,
    PerformanceBackend,
    Scenario,
    SpeculationStats,
)
from repro.tuning.iteration import IterationRunner, IterationSpec

__all__ = ["ClusterTuningSession", "make_scheme"]


def make_scheme(scenario: Scenario, method: str, work_lines: int = 2) -> TuningScheme:
    """Build the §III.B tuning scheme named by ``method``.

    ``"default"`` — one server tunes every parameter of every node;
    ``"duplication"`` — tune one representative node per tier, copy within
    the tier; ``"partitioning"`` — one server per work line (the scenario
    must be able to form ``work_lines`` lines).
    """
    full_space = scenario.cluster.full_space()
    constraints = scenario.cluster.full_constraints()
    if method == "default":
        return identity_scheme(full_space, constraints=constraints)
    if method == "duplication":
        return DuplicationScheme(
            full_space, scenario.cluster.tiers(), constraints=constraints
        )
    if method == "partitioning":
        return PartitionScheme(
            full_space,
            scenario.cluster.work_lines(work_lines),
            constraints=constraints,
        )
    raise ValueError(
        f"unknown method {method!r}; expected default/duplication/partitioning"
    )


class ClusterTuningSession:
    """Drive one tuning scheme against one scenario."""

    def __init__(
        self,
        backend: PerformanceBackend,
        scenario: Scenario,
        scheme: Optional[TuningScheme] = None,
        strategy: str = "simplex",
        seed: int = 0,
        iteration_spec: Optional[IterationSpec] = None,
        simplex_options: Optional[SimplexOptions] = None,
        on_measure_error: str = "raise",
        resilience: Optional[ResiliencePolicy] = None,
        speculate: bool = False,
        speculate_jobs: int = 1,
        speculate_engine: Optional[str] = None,
        journal=None,
    ) -> None:
        if on_measure_error not in ("raise", "penalize"):
            raise ValueError(
                f"on_measure_error must be 'raise' or 'penalize', "
                f"got {on_measure_error!r}"
            )
        self.on_measure_error = on_measure_error
        self.resilience = resilience
        self.resilience_stats = ResilienceStats()
        self.measure_failures = 0
        # Worst successful performance seen per group — the penalty value
        # for failed steps (a failure must never beat a real measurement).
        self._worst_perf: dict[str, float] = {}
        self._worst_wips: Optional[float] = None
        # Last successful step, for the "substitute" terminal response.
        self._last_good: Optional[tuple[Measurement, dict[str, float]]] = None
        self._consecutive_exhausted = 0
        self._failure_counts: dict[Configuration, int] = {}
        self._quarantined: set[Configuration] = set()
        self.scheme = scheme or identity_scheme(scenario.cluster.full_space())
        self.scenario = self._align_scenario(scenario)
        self.server = HarmonyServer(seed=seed, simplex_options=simplex_options)
        for group in self.scheme.groups:
            self.server.register(
                group.group_id,
                group.space,
                strategy=strategy,
                constraints=group.constraints,
            )
        self.runner = IterationRunner(
            backend, self.scenario, seed=seed, spec=iteration_spec
        )
        # Crash-safe checkpointing: a SessionJournal turns the runner into
        # a write-ahead-logged one.  Every outcome the session acts on is
        # fsync'd first; on --resume the journal replays those outcomes
        # and the session state reconstructs bit-identically.
        self.journal = journal
        if journal is not None:
            from repro.durability.journal import JournaledRunner

            self.runner = JournaledRunner(self.runner, journal)
        self.history = TuningHistory()
        # Speculative lookahead: enumerate each group's possible next asks
        # and warm the backend's deterministic caches in one batch per
        # step.  Purely a prefetch — the ask/tell sequence, RNG streams
        # and measurements are bit-identical with it on or off.
        self.speculator: Optional[SpeculativeEvaluator] = None
        if speculate:
            self.speculator = SpeculativeEvaluator(
                backend,
                self.scheme,
                {
                    g.group_id: self.server.sessions[g.group_id].strategy
                    for g in self.scheme.groups
                },
                jobs=speculate_jobs,
                engine=speculate_engine,
            )

    def _align_scenario(self, scenario: Scenario) -> Scenario:
        """Attach the partition's work lines to the scenario if needed."""
        if not isinstance(self.scheme, PartitionScheme):
            return scenario
        lines = {
            g.group_id: tuple(
                sorted({name.split(".", 1)[0] for name in g.space.names})
            )
            for g in self.scheme.groups
        }
        return Scenario(
            cluster=scenario.cluster,
            mix=scenario.mix,
            population=scenario.population,
            catalog=scenario.catalog,
            behavior=scenario.behavior,
            work_lines=lines,
        )

    # ------------------------------------------------------------------
    @property
    def iterations(self) -> int:
        """Completed tuning iterations."""
        return len(self.history)

    @property
    def speculation_stats(self) -> Optional[SpeculationStats]:
        """The speculative evaluator's counters (None when not speculating)."""
        return self.speculator.stats if self.speculator is not None else None

    def set_mix(self, mix) -> None:
        """Switch the offered workload mix (tuner state is kept)."""
        self.scenario = self.scenario.with_mix(mix)
        self.runner.scenario = self.scenario
        if self.speculator is not None:
            self.speculator.reset()

    def set_cluster(self, new_cluster) -> None:
        """Re-bind the session to a reconfigured cluster (§IV moves).

        Only the *duplication* scheme survives a node changing tiers: its
        tuned space is tier-level (one entry per role parameter) and thus
        independent of which nodes serve which tier — exactly why the
        reconfiguration experiments tune with duplication.  The expansion
        map is rebuilt for the new layout; the Harmony sessions (and all
        their search state) carry over untouched.
        """
        if not isinstance(self.scheme, DuplicationScheme):
            raise TypeError(
                "only duplication-scheme sessions survive reconfiguration "
                f"(got {type(self.scheme).__name__})"
            )
        new_scheme = DuplicationScheme(
            new_cluster.full_space(),
            new_cluster.tiers(),
            constraints=new_cluster.full_constraints(),
        )
        if sorted(g.space.names for g in new_scheme.groups) != sorted(
            g.space.names for g in self.scheme.groups
        ):
            raise ValueError("reconfigured cluster has a different tier-level space")
        self.scheme = new_scheme
        self.scenario = self.scenario.with_cluster(new_cluster)
        self.runner.scenario = self.scenario
        if self.speculator is not None:
            # Plans made for the old layout would mis-score the next step;
            # warmed solutions for the old scenario are merely unused.
            self.speculator.scheme = new_scheme
            self.speculator.reset()

    def _replaying(self) -> bool:
        """True while a resumed run is consuming journaled outcomes."""
        return self.journal is not None and self.journal.replaying

    def group_history(self, group_id: str) -> TuningHistory:
        """One group's tuning history (its own fetch/report stream)."""
        return self.server.history(group_id)

    def current_configuration(self) -> Configuration:
        """The full configuration the next step() will measure."""
        fragments = {
            g.group_id: self.server.sessions[g.group_id].strategy.ask()
            for g in self.scheme.groups
        }
        return self.scheme.combine(fragments)

    def step(self) -> Measurement:
        """Run one tuning iteration: fetch → measure → report.

        A backend failure (a crashed measurement — the paper's servers did
        occasionally wedge under bad configurations) either propagates
        (``on_measure_error="raise"``), is *penalized* with the worst
        performance observed so far (never an artificial 0.0, which would
        let one unlucky failure steer the simplex permanently), or — when
        a :class:`ResiliencePolicy` is set — is retried with deterministic
        virtual-time backoff and then resolved by the policy's terminal
        response (penalty / skip / substitute), with quarantine and
        rollback on top.
        """
        fragments: dict[str, Configuration] = {}
        for group in self.scheme.groups:
            fragments[group.group_id] = self.server.fetch(group.group_id)
        full = self.scheme.combine(fragments)
        policy = self.resilience
        if policy is not None and full in self._quarantined:
            # Known-bad configuration: penalize without wasting a
            # measurement so the strategy moves on immediately.
            self.resilience_stats.quarantine_hits += 1
            return self._penalize(full)
        if self.speculator is not None and not self._replaying():
            # Warm the deterministic caches for this step's configuration
            # plus every candidate the strategies could ask next, in one
            # fused batch.  Prefetching never changes measured values.
            # (During journal replay nothing is measured, so warming would
            # only waste the solves the journal exists to avoid.)
            self.speculator.prefetch(self.scenario, fragments)
        attempt = 0
        while True:
            try:
                measurement = self.runner.run(full)
                break
            except Exception:
                self.measure_failures += 1
                self.resilience_stats.failures += 1
                if policy is None:
                    if self.on_measure_error == "raise":
                        raise
                    return self._penalize(full)
                if attempt < policy.max_retries:
                    attempt += 1
                    self.resilience_stats.retries += 1
                    self._backoff(policy.delay(attempt))
                    continue
                return self._exhausted(full)
        self._record_success(full, measurement)
        return measurement

    # -- failure handling ----------------------------------------------
    def _record_success(self, full: Configuration, measurement: Measurement) -> None:
        """Report a successful measurement and refresh resilience state."""
        perfs: dict[str, float] = {}
        for group in self.scheme.groups:
            perf = self._group_performance(group.group_id, measurement)
            perfs[group.group_id] = perf
            worst = self._worst_perf.get(group.group_id)
            if worst is None or perf < worst:
                self._worst_perf[group.group_id] = perf
            self.server.report(group.group_id, perf)
        if self._worst_wips is None or measurement.wips < self._worst_wips:
            self._worst_wips = measurement.wips
        self._last_good = (measurement, perfs)
        self._consecutive_exhausted = 0
        self.history.append(full, measurement.wips)

    def _backoff(self, delay: int) -> None:
        """Wait ``delay`` ticks of *virtual* time before the retry.

        Backends that model a fault timeline (``FaultyBackend``) expose
        ``advance``; for everything else the wait is pure bookkeeping.
        There is deliberately no wall-clock sleep anywhere.
        """
        self.resilience_stats.backoff_ticks += delay
        advance = getattr(self.runner.backend, "advance", None)
        if advance is not None and delay > 0:
            advance(delay)

    def _failed_measurement(self, wips: float) -> Measurement:
        """The timeline entry recorded for a failed step."""
        return Measurement(
            wips=wips,
            raw_wips=wips,
            error_rate=1.0,
            response_time=float("inf"),
            utilization={},
        )

    def _penalize(self, full: Configuration) -> Measurement:
        """Report the worst-seen performance for a failed step."""
        self.resilience_stats.penalties += 1
        for group in self.scheme.groups:
            self.server.report(
                group.group_id, self._worst_perf.get(group.group_id, 0.0)
            )
        penalty = self._worst_wips if self._worst_wips is not None else 0.0
        self.history.append(full, penalty)
        return self._failed_measurement(penalty)

    def _exhausted(self, full: Configuration) -> Measurement:
        """Resolve a step whose retries are all spent."""
        policy = self.resilience
        assert policy is not None
        stats = self.resilience_stats
        stats.exhausted_steps += 1
        self._consecutive_exhausted += 1
        count = self._failure_counts.get(full, 0) + 1
        self._failure_counts[full] = count
        if (
            policy.quarantine_after
            and count >= policy.quarantine_after
            and full not in self._quarantined
        ):
            self._quarantined.add(full)
            stats.quarantined = len(self._quarantined)
        if (
            policy.rollback_after
            and self._consecutive_exhausted >= policy.rollback_after
        ):
            rolled = self._rollback(full)
            if rolled is not None:
                return rolled
        if policy.on_exhausted == "substitute" and self._last_good is not None:
            stats.substitutions += 1
            measurement, perfs = self._last_good
            for group in self.scheme.groups:
                self.server.report(group.group_id, perfs[group.group_id])
            self.history.append(full, measurement.wips)
            return measurement
        if policy.on_exhausted == "skip":
            # Report nothing: ask() is idempotent until tell(), so the
            # next step re-asks this configuration — the failure is
            # attributed to the environment, not the configuration.
            stats.skips += 1
            penalty = self._worst_wips if self._worst_wips is not None else 0.0
            return self._failed_measurement(penalty)
        return self._penalize(full)

    def _rollback(self, full: Configuration) -> Optional[Measurement]:
        """Sustained failure: deploy the best-known configuration.

        The failing candidate is penalized (the search must move away),
        while the *measured* — deployed — configuration is the best seen
        so far, so the service keeps producing its best-known throughput.
        Returns None when there is no distinct best or it too fails (a
        full outage), letting the terminal response apply instead.
        """
        if not len(self.history):
            return None
        best = self.history.best_configuration()
        if best == full:
            return None
        try:
            measurement = self.runner.run(best)
        except Exception:
            return None
        self.resilience_stats.rollbacks += 1
        self.resilience_stats.penalties += 1
        for group in self.scheme.groups:
            self.server.report(
                group.group_id, self._worst_perf.get(group.group_id, 0.0)
            )
        self.history.append(best, measurement.wips)
        return measurement

    def _group_performance(self, group_id: str, measurement: Measurement) -> float:
        if measurement.per_line_wips:
            try:
                return measurement.per_line_wips[group_id]
            except KeyError:
                raise KeyError(
                    f"backend produced no per-line WIPS for group {group_id!r}"
                ) from None
        return measurement.wips

    def run(self, iterations: int) -> TuningHistory:
        """Run ``iterations`` tuning steps; returns the global history."""
        if iterations < 0:
            raise ValueError("iterations must be non-negative")
        for _ in range(iterations):
            self.step()
        return self.history

    def best_configuration(self) -> Configuration:
        """Best full configuration measured so far (global WIPS)."""
        return self.history.best_configuration()

    def measure_baseline(self, configuration: Optional[Configuration] = None,
                         iterations: int = 10) -> TuningHistory:
        """Measure a fixed configuration (default: the cluster defaults).

        Used for the Table 4 "None (no tuning)" row; runs on the same seed
        stream as tuning iterations but does not touch the tuner state.
        """
        cfg = configuration or self.scenario.cluster.default_configuration()
        out = TuningHistory()
        for i in range(iterations):
            try:
                m = self.runner.run(cfg, index=10_000 + i)
            except Exception:
                if self.resilience is None and self.on_measure_error == "raise":
                    raise
                # A reference measurement, not tuner feedback: a failed
                # draw is simply dropped rather than penalized.
                continue
            out.append(cfg, m.wips)
        return out
