"""Cluster tuning sessions: a tuning scheme driven against a backend.

A :class:`ClusterTuningSession` owns

* a :class:`~repro.model.base.Scenario` (the cluster + workload),
* a :class:`~repro.harmony.scaling.TuningScheme` (default method /
  duplication / partitioning),
* one Harmony tuning session per scheme group (the paper's "separate
  Active Harmony tuning server for each of the groups"), and
* an :class:`~repro.tuning.iteration.IterationRunner`.

Each :meth:`step` fetches every group's next configuration fragment,
combines them into a full cluster configuration, runs one measurement
iteration, and reports back — the whole-cluster WIPS to every group under
the default/duplication methods, or each work line's own WIPS under
partitioning (the per-group signal that §III.B credits for partitioning's
stability).
"""

from __future__ import annotations

from typing import Optional

from repro.harmony.history import TuningHistory
from repro.harmony.parameter import Configuration
from repro.harmony.scaling import (
    DuplicationScheme,
    PartitionScheme,
    TuningScheme,
    identity_scheme,
)
from repro.harmony.server import HarmonyServer
from repro.harmony.simplex import SimplexOptions
from repro.harmony.speculate import SpeculativeEvaluator
from repro.model.base import (
    Measurement,
    PerformanceBackend,
    Scenario,
    SpeculationStats,
)
from repro.tuning.iteration import IterationRunner, IterationSpec

__all__ = ["ClusterTuningSession", "make_scheme"]


def make_scheme(scenario: Scenario, method: str, work_lines: int = 2) -> TuningScheme:
    """Build the §III.B tuning scheme named by ``method``.

    ``"default"`` — one server tunes every parameter of every node;
    ``"duplication"`` — tune one representative node per tier, copy within
    the tier; ``"partitioning"`` — one server per work line (the scenario
    must be able to form ``work_lines`` lines).
    """
    full_space = scenario.cluster.full_space()
    constraints = scenario.cluster.full_constraints()
    if method == "default":
        return identity_scheme(full_space, constraints=constraints)
    if method == "duplication":
        return DuplicationScheme(
            full_space, scenario.cluster.tiers(), constraints=constraints
        )
    if method == "partitioning":
        return PartitionScheme(
            full_space,
            scenario.cluster.work_lines(work_lines),
            constraints=constraints,
        )
    raise ValueError(
        f"unknown method {method!r}; expected default/duplication/partitioning"
    )


class ClusterTuningSession:
    """Drive one tuning scheme against one scenario."""

    def __init__(
        self,
        backend: PerformanceBackend,
        scenario: Scenario,
        scheme: Optional[TuningScheme] = None,
        strategy: str = "simplex",
        seed: int = 0,
        iteration_spec: Optional[IterationSpec] = None,
        simplex_options: Optional[SimplexOptions] = None,
        on_measure_error: str = "raise",
        speculate: bool = False,
        speculate_jobs: int = 1,
    ) -> None:
        if on_measure_error not in ("raise", "penalize"):
            raise ValueError(
                f"on_measure_error must be 'raise' or 'penalize', "
                f"got {on_measure_error!r}"
            )
        self.on_measure_error = on_measure_error
        self.measure_failures = 0
        self.scheme = scheme or identity_scheme(scenario.cluster.full_space())
        self.scenario = self._align_scenario(scenario)
        self.server = HarmonyServer(seed=seed, simplex_options=simplex_options)
        for group in self.scheme.groups:
            self.server.register(
                group.group_id,
                group.space,
                strategy=strategy,
                constraints=group.constraints,
            )
        self.runner = IterationRunner(
            backend, self.scenario, seed=seed, spec=iteration_spec
        )
        self.history = TuningHistory()
        # Speculative lookahead: enumerate each group's possible next asks
        # and warm the backend's deterministic caches in one batch per
        # step.  Purely a prefetch — the ask/tell sequence, RNG streams
        # and measurements are bit-identical with it on or off.
        self.speculator: Optional[SpeculativeEvaluator] = None
        if speculate:
            self.speculator = SpeculativeEvaluator(
                backend,
                self.scheme,
                {
                    g.group_id: self.server.sessions[g.group_id].strategy
                    for g in self.scheme.groups
                },
                jobs=speculate_jobs,
            )

    def _align_scenario(self, scenario: Scenario) -> Scenario:
        """Attach the partition's work lines to the scenario if needed."""
        if not isinstance(self.scheme, PartitionScheme):
            return scenario
        lines = {
            g.group_id: tuple(
                sorted({name.split(".", 1)[0] for name in g.space.names})
            )
            for g in self.scheme.groups
        }
        return Scenario(
            cluster=scenario.cluster,
            mix=scenario.mix,
            population=scenario.population,
            catalog=scenario.catalog,
            behavior=scenario.behavior,
            work_lines=lines,
        )

    # ------------------------------------------------------------------
    @property
    def iterations(self) -> int:
        """Completed tuning iterations."""
        return len(self.history)

    @property
    def speculation_stats(self) -> Optional[SpeculationStats]:
        """The speculative evaluator's counters (None when not speculating)."""
        return self.speculator.stats if self.speculator is not None else None

    def set_mix(self, mix) -> None:
        """Switch the offered workload mix (tuner state is kept)."""
        self.scenario = self.scenario.with_mix(mix)
        self.runner.scenario = self.scenario
        if self.speculator is not None:
            self.speculator.reset()

    def set_cluster(self, new_cluster) -> None:
        """Re-bind the session to a reconfigured cluster (§IV moves).

        Only the *duplication* scheme survives a node changing tiers: its
        tuned space is tier-level (one entry per role parameter) and thus
        independent of which nodes serve which tier — exactly why the
        reconfiguration experiments tune with duplication.  The expansion
        map is rebuilt for the new layout; the Harmony sessions (and all
        their search state) carry over untouched.
        """
        if not isinstance(self.scheme, DuplicationScheme):
            raise TypeError(
                "only duplication-scheme sessions survive reconfiguration "
                f"(got {type(self.scheme).__name__})"
            )
        new_scheme = DuplicationScheme(
            new_cluster.full_space(),
            new_cluster.tiers(),
            constraints=new_cluster.full_constraints(),
        )
        if sorted(g.space.names for g in new_scheme.groups) != sorted(
            g.space.names for g in self.scheme.groups
        ):
            raise ValueError("reconfigured cluster has a different tier-level space")
        self.scheme = new_scheme
        self.scenario = self.scenario.with_cluster(new_cluster)
        self.runner.scenario = self.scenario
        if self.speculator is not None:
            # Plans made for the old layout would mis-score the next step;
            # warmed solutions for the old scenario are merely unused.
            self.speculator.scheme = new_scheme
            self.speculator.reset()

    def group_history(self, group_id: str) -> TuningHistory:
        """One group's tuning history (its own fetch/report stream)."""
        return self.server.history(group_id)

    def current_configuration(self) -> Configuration:
        """The full configuration the next step() will measure."""
        fragments = {
            g.group_id: self.server.sessions[g.group_id].strategy.ask()
            for g in self.scheme.groups
        }
        return self.scheme.combine(fragments)

    def step(self) -> Measurement:
        """Run one tuning iteration: fetch → measure → report.

        A backend failure (a crashed measurement — the paper's servers did
        occasionally wedge under bad configurations) either propagates
        (``on_measure_error="raise"``) or is *penalized*: the tuner is told
        the configuration performed at 0 WIPS, which the simplex treats as
        a worst point and moves away from, and the iteration is recorded as
        a zero-performance entry so the timeline stays complete.
        """
        fragments: dict[str, Configuration] = {}
        for group in self.scheme.groups:
            fragments[group.group_id] = self.server.fetch(group.group_id)
        full = self.scheme.combine(fragments)
        if self.speculator is not None:
            # Warm the deterministic caches for this step's configuration
            # plus every candidate the strategies could ask next, in one
            # fused batch.  Prefetching never changes measured values.
            self.speculator.prefetch(self.scenario, fragments)
        try:
            measurement = self.runner.run(full)
        except Exception:
            if self.on_measure_error == "raise":
                raise
            self.measure_failures += 1
            for group in self.scheme.groups:
                self.server.report(group.group_id, 0.0)
            self.history.append(full, 0.0)
            return Measurement(
                wips=0.0,
                raw_wips=0.0,
                error_rate=1.0,
                response_time=float("inf"),
                utilization={},
            )
        for group in self.scheme.groups:
            perf = self._group_performance(group.group_id, measurement)
            self.server.report(group.group_id, perf)
        self.history.append(full, measurement.wips)
        return measurement

    def _group_performance(self, group_id: str, measurement: Measurement) -> float:
        if measurement.per_line_wips:
            try:
                return measurement.per_line_wips[group_id]
            except KeyError:
                raise KeyError(
                    f"backend produced no per-line WIPS for group {group_id!r}"
                ) from None
        return measurement.wips

    def run(self, iterations: int) -> TuningHistory:
        """Run ``iterations`` tuning steps; returns the global history."""
        if iterations < 0:
            raise ValueError("iterations must be non-negative")
        for _ in range(iterations):
            self.step()
        return self.history

    def best_configuration(self) -> Configuration:
        """Best full configuration measured so far (global WIPS)."""
        return self.history.best_configuration()

    def measure_baseline(self, configuration: Optional[Configuration] = None,
                         iterations: int = 10) -> TuningHistory:
        """Measure a fixed configuration (default: the cluster defaults).

        Used for the Table 4 "None (no tuning)" row; runs on the same seed
        stream as tuning iterations but does not touch the tuner state.
        """
        cfg = configuration or self.scenario.cluster.default_configuration()
        out = TuningHistory()
        for i in range(iterations):
            m = self.runner.run(cfg, index=10_000 + i)
            out.append(cfg, m.wips)
        return out
