"""Measurement iterations.

The paper's protocol (§III.A): "we let the system warm up for 100 seconds
and measure the performance (WIPS) for 1000 seconds followed by 100 seconds
for cooling down.  We define such a cycle as one iteration.  The Active
Harmony server will adjust the configuration between two iterations."

:class:`IterationRunner` implements that cycle against any backend: the
analytic backend produces the steady-state measurement directly (its noise
stream is seeded per iteration); the discrete-event backend actually
simulates the three phases over simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harmony.parameter import Configuration
from repro.model.base import Measurement, PerformanceBackend, Scenario
from repro.util.rng import derive_seed

__all__ = ["IterationSpec", "IterationRunner"]


@dataclass(frozen=True)
class IterationSpec:
    """Phase durations of one iteration, in (simulated) seconds.

    Defaults follow the paper.  The discrete-event backend honours these
    durations; the analytic backend treats an iteration as one steady-state
    solve plus one noise draw, which is the paper's signal with the wall
    time abstracted away.
    """

    warmup: float = 100.0
    measure: float = 1000.0
    cooldown: float = 100.0

    def __post_init__(self) -> None:
        if self.measure <= 0:
            raise ValueError("measure duration must be positive")
        if self.warmup < 0 or self.cooldown < 0:
            raise ValueError("phase durations must be non-negative")

    @property
    def total(self) -> float:
        """Wall time of one full iteration."""
        return self.warmup + self.measure + self.cooldown

    def scaled(self, factor: float) -> "IterationSpec":
        """A proportionally shorter/longer iteration (for fast DES runs)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return IterationSpec(
            warmup=self.warmup * factor,
            measure=self.measure * factor,
            cooldown=self.cooldown * factor,
        )


class IterationRunner:
    """Run numbered measurement iterations of a scenario on a backend.

    The iteration index deterministically seeds the measurement, so a run
    is reproducible and two runners with the same base seed observe the
    same noise for the same (index, configuration).
    """

    def __init__(
        self,
        backend: PerformanceBackend,
        scenario: Scenario,
        seed: int = 0,
        spec: IterationSpec | None = None,
    ) -> None:
        self.backend = backend
        self.scenario = scenario
        self.seed = seed
        self.spec = spec or IterationSpec()
        self._count = 0

    @property
    def iterations_run(self) -> int:
        """Number of iterations executed so far."""
        return self._count

    def run(self, configuration: Configuration, index: int | None = None) -> Measurement:
        """Execute one iteration under ``configuration``.

        ``index`` defaults to the runner's internal counter; passing it
        explicitly allows replaying a specific iteration's noise.
        """
        i = self._count if index is None else index
        measurement = self.backend.measure(
            self.scenario,
            configuration,
            seed=derive_seed(self.seed, "iteration", i),
        )
        if index is None:
            self._count += 1
        return measurement
