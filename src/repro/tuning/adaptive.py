"""Adaptation to changing workloads (the Figure 5 behaviour).

The paper's Figure 5 changes the workload every 100 iterations and shows
the tuner re-adapting "fairly quickly".  A converged simplex, however, has
collapsed around the old workload's optimum and remembers stale objective
values, so an explicit *shift-and-restart* heuristic makes re-adaptation
fast: when the measured performance level shifts abruptly (beyond what the
measurement noise explains), the tuner restarts its search from the best
configuration it currently knows — retaining the knowledge, discarding the
stale simplex geometry.

:class:`AdaptiveTuningSession` layers that heuristic over
:class:`~repro.tuning.session.ClusterTuningSession`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.harmony.parameter import Configuration
from repro.model.base import Measurement
from repro.tpcw.interactions import WorkloadMix
from repro.tuning.session import ClusterTuningSession

__all__ = ["AdaptiveTuningSession"]


class AdaptiveTuningSession:
    """A tuning session that restarts its search on workload shifts."""

    def __init__(
        self,
        session: ClusterTuningSession,
        shift_threshold: float = 0.10,
        detect_window: int = 3,
        plateau_window: int = 12,
    ) -> None:
        if shift_threshold <= 0:
            raise ValueError("shift_threshold must be positive")
        if detect_window < 1 or plateau_window < detect_window:
            raise ValueError("need plateau_window >= detect_window >= 1")
        self.session = session
        self.shift_threshold = shift_threshold
        self.detect_window = detect_window
        self.plateau_window = plateau_window
        self._recent: list[float] = []
        self._restarts: list[int] = []

    @property
    def restarts(self) -> list[int]:
        """Iteration indices at which the search was restarted."""
        return list(self._restarts)

    @property
    def history(self):
        """The underlying global tuning history."""
        return self.session.history

    def set_mix(self, mix: WorkloadMix) -> None:
        """Switch the offered workload (the experiment driver's knob)."""
        self.session.set_mix(mix)

    def step(self) -> Measurement:
        """One tuning iteration with shift detection."""
        measurement = self.session.step()
        self._recent.append(measurement.wips)
        if len(self._recent) > self.plateau_window:
            self._recent.pop(0)
        if self._shift_detected():
            self._restart()
        return measurement

    def run(self, iterations: int) -> None:
        """Run ``iterations`` adaptive steps."""
        for _ in range(iterations):
            self.step()

    # ------------------------------------------------------------------
    def _shift_detected(self) -> bool:
        if len(self._recent) < self.plateau_window:
            return False
        # Medians, not means: a single bad configuration explored by the
        # simplex must not look like a workload shift, but a persistent
        # level change (every recent iteration moved) must.  Only *drops*
        # trigger: a gradual rise is the tuner's own progress, and a
        # favourable workload change needs no rescue — the stale simplex
        # keeps improving from where it is.
        head = float(np.median(self._recent[: -self.detect_window]))
        tail = float(np.median(self._recent[-self.detect_window :]))
        if head <= 0:
            return False
        return (head - tail) / head > self.shift_threshold

    def _restart(self) -> None:
        """Restart every group's search from its best-known fragment."""
        session = self.session
        self._restarts.append(len(session.history))
        self._recent = self._recent[-self.detect_window :]
        for group in session.scheme.groups:
            server_session = session.server.sessions[group.group_id]
            best: Optional[Configuration] = server_session.best_configuration()
            session.server.unregister(group.group_id)
            session.server.register(
                group.group_id,
                group.space,
                strategy="simplex",
                start=best,
                constraints=group.constraints,
            )
