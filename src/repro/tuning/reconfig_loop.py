"""Periodic reconfiguration: the §IV algorithm run as a background policy.

"Unlike parameter tuning which is done for each iteration, the
reconfiguration algorithm is run at a lower frequency (e.g., every 50
iterations) since it is designed to react to longer term trends, and incurs
a greater overhead to make changes."

:class:`ReconfigurationLoop` wraps a duplication-scheme
:class:`~repro.tuning.session.ClusterTuningSession` and, every
``check_every`` iterations, feeds a smoothed view of the recent node
utilizations to the :class:`~repro.tuning.reconfig.Reconfigurator`.  An
accepted move re-binds the session to the new layout; a ``cooldown`` then
suppresses further checks while the cluster re-settles (and the tuner
re-adapts), preventing oscillating moves.  Deferred moves (equation (1)
non-negative — cheaper to let the node drain) take effect ``drain_delay``
iterations after the decision, as the paper's "wait until all existing
requests finish".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.model.base import Measurement, ResourceUtilization
from repro.tuning.reconfig import MoveDecision, ReconfigPolicy, Reconfigurator
from repro.tuning.session import ClusterTuningSession

__all__ = ["AppliedMove", "ReconfigurationLoop"]


@dataclass(frozen=True)
class AppliedMove:
    """One executed reconfiguration, for the loop's audit trail."""

    decided_at: int
    applied_at: int
    decision: MoveDecision


class ReconfigurationLoop:
    """Tuning with periodic automatic reconfiguration checks."""

    def __init__(
        self,
        session: ClusterTuningSession,
        policy: Optional[ReconfigPolicy] = None,
        check_every: int = 50,
        cooldown: int = 25,
        drain_delay: int = 3,
        smoothing: int = 5,
        max_moves: Optional[int] = None,
    ) -> None:
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        if cooldown < 0 or drain_delay < 0:
            raise ValueError("cooldown and drain_delay must be non-negative")
        if smoothing < 1:
            raise ValueError("smoothing must be >= 1")
        self.session = session
        self.reconfigurator = Reconfigurator(policy)
        self.check_every = check_every
        self.cooldown = cooldown
        self.drain_delay = drain_delay
        self.smoothing = smoothing
        self.max_moves = max_moves
        self._recent: list[Measurement] = []
        self._moves: list[AppliedMove] = []
        self._pending: Optional[tuple[int, MoveDecision]] = None
        self._quiet_until = 0

    @property
    def moves(self) -> list[AppliedMove]:
        """Every reconfiguration executed so far."""
        return list(self._moves)

    @property
    def speculation_stats(self):
        """The wrapped session's speculation counters (None when serial).

        The loop needs no speculation logic of its own: each
        :meth:`step` delegates to the session's batched step path, and
        ``session.set_cluster`` (called on every executed move) resets the
        evaluator's plan so stale frontiers from the pre-move layout are
        never scored or prefetched against the new one.
        """
        return self.session.speculation_stats

    # ------------------------------------------------------------------
    def _smoothed(self) -> Measurement:
        """Average the recent window's utilizations into one measurement.

        The algorithm should react to trends, not to one iteration's noise
        (or to one freak configuration the tuner tried).  The node set may
        change mid-window (a node crashing or recovering under fault
        injection), so each node is averaged only over the entries that
        actually observed it — and only nodes present in the *latest*
        measurement are considered at all: a crashed node must not be
        offered to the reconfigurator as a move candidate.
        """
        window = self._recent[-self.smoothing :]
        last = window[-1]
        utilization = {}
        for node_id in last.utilization:
            seen = [m.utilization[node_id] for m in window if node_id in m.utilization]
            n = len(seen)
            utilization[node_id] = ResourceUtilization(
                cpu=sum(u.cpu for u in seen) / n,
                disk=sum(u.disk for u in seen) / n,
                network=sum(u.network for u in seen) / n,
                memory=sum(u.memory for u in seen) / n,
            )
        return Measurement(
            wips=last.wips,
            raw_wips=last.raw_wips,
            error_rate=last.error_rate,
            response_time=last.response_time,
            utilization=utilization,
            diagnostics=last.diagnostics,
        )

    def step(self) -> Measurement:
        """One tuning iteration plus the due reconfiguration actions."""
        measurement = self.session.step()
        if measurement.utilization:
            # Failed steps carry no utilizations — feeding them to the
            # smoother would erase the very overload signal a fault is
            # meant to produce.
            self._recent.append(measurement)
        if len(self._recent) > self.smoothing:
            self._recent.pop(0)
        i = self.session.iterations

        # Apply a deferred move once its drain delay elapsed.
        if self._pending is not None and i >= self._pending[0]:
            decided_at, decision = self._pending
            self._execute(decision, decided_at - self.drain_delay, i)
            self._pending = None
            return measurement

        if (
            self._pending is None
            and self._recent
            and i >= self._quiet_until
            and i % self.check_every == 0
            and (self.max_moves is None or len(self._moves) < self.max_moves)
        ):
            decision = self.reconfigurator.decide(
                self.session.scenario.cluster, self._smoothed()
            )
            if decision is not None:
                if decision.immediate or self.drain_delay == 0:
                    self._execute(decision, i, i)
                else:
                    self._pending = (i + self.drain_delay, decision)
        return measurement

    def _execute(self, decision: MoveDecision, decided_at: int, now: int) -> None:
        new_cluster = self.reconfigurator.apply(
            self.session.scenario.cluster, decision
        )
        self.session.set_cluster(new_cluster)
        self._moves.append(
            AppliedMove(decided_at=decided_at, applied_at=now, decision=decision)
        )
        self._quiet_until = now + self.cooldown
        self._recent.clear()  # old-layout utilizations no longer apply

    def run(self, iterations: int) -> None:
        """Run ``iterations`` steps of tuning-with-reconfiguration."""
        if iterations < 0:
            raise ValueError("iterations must be non-negative")
        for _ in range(iterations):
            self.step()
