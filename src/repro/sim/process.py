"""Generator-based processes for the simulation kernel."""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.core import Environment, Event, Interrupt, SimulationError

__all__ = ["Process"]


class Process(Event):
    """A coroutine driven by the event loop.

    A process wraps a generator that yields :class:`Event` objects; the
    process sleeps until each yielded event is processed, then resumes with
    the event's value (or the event's exception thrown in).  The process is
    itself an event: it triggers with the generator's return value, so
    processes can wait on each other.
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, env: Environment, generator: Generator) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"process needs a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        # Kick the process off at the current time via an initiator event.
        start = Event(env)
        self._waiting_on: Optional[Event] = start
        start.add_callback(self._resume)
        start._triggered = True
        env._schedule(env.now, start)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting on an event detaches it from that event.
        """
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        kick = Event(self.env)
        kick.add_callback(lambda _e: self._do_interrupt(cause))
        kick._triggered = True
        self.env._schedule(self.env.now, kick)

    def _do_interrupt(self, cause: Any) -> None:
        if self.triggered:  # finished in the meantime; drop silently
            return
        self._waiting_on = None
        self._step(None, Interrupt(cause))

    def _resume(self, event: Event) -> None:
        if event is not self._waiting_on:
            # Stale wakeup: we were interrupted out of this event (and have
            # moved on or finished since).  Ignore it.
            return
        self._waiting_on = None
        if event.exception is not None:
            self._step(None, event.exception)
        else:
            self._step(event.value, None)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        prev = self.env._active
        self.env._active = self
        try:
            if exc is not None:
                target = self._generator.throw(exc)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as unhandled:
            self.fail(unhandled)
            return
        except Exception as err:
            self.fail(err)
            return
        finally:
            self.env._active = prev

        if not isinstance(target, Event):
            self._step(
                None,
                SimulationError(f"process yielded non-event {target!r}"),
            )
            return
        self._waiting_on = target
        target.add_callback(self._resume)
