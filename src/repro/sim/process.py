"""Generator-based processes for the simulation kernel."""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.core import (
    Environment,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
    _heappush,
)

__all__ = ["Process"]


class Process(Event):
    """A coroutine driven by the event loop.

    A process wraps a generator that yields :class:`Event` objects; the
    process sleeps until each yielded event is processed, then resumes with
    the event's value (or the event's exception thrown in).  The process is
    itself an event: it triggers with the generator's return value, so
    processes can wait on each other.

    A yielded bare ``float`` is a plain delay — equivalent to yielding
    ``env.timeout(delay)``.  On the fast path it schedules a resume
    record instead of a :class:`~repro.sim.core.Timeout` (no event
    object, no callback); on the legacy path it is wrapped in a real
    ``Timeout``, reproducing the seed kernel's traffic.  Either way the
    delay acquires its schedule position at the yield, exactly where the
    seed kernel's ``Timeout`` constructor acquired its — simulations are
    bit-identical across both paths.
    """

    __slots__ = ("_generator", "_waiting_on", "_resume_seq")

    def __init__(self, env: Environment, generator: Generator) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"process needs a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        if env.fast:
            # Kick off at the current time via a bare resume record.
            self._resume_seq = env._schedule_resume(env._now, self)
        else:
            # Seed behaviour: a full initiator event with a callback.
            self._resume_seq = -1
            start = Event(env)
            self._waiting_on = start
            start.add_callback(self._resume)
            start._triggered = True
            env._schedule(env._now, start)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting on an event detaches it from that event.
        """
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        kick = Event(self.env)
        kick.add_callback(lambda _e: self._do_interrupt(cause))
        kick._triggered = True
        self.env._schedule(self.env._now, kick)

    def _do_interrupt(self, cause: Any) -> None:
        if self.triggered:  # finished in the meantime; drop silently
            return
        self._waiting_on = None
        self._resume_seq = -1  # invalidate any pending resume record
        self._step(None, Interrupt(cause))

    def _resume(self, event: Event) -> None:
        if event is not self._waiting_on:
            # Stale wakeup: we were interrupted out of this event (and have
            # moved on or finished since).  Ignore it.
            return
        self._waiting_on = None
        if event.exception is not None:
            self._step(None, event.exception)
        else:
            self._step(event.value, None)

    def _wait_on(self, target: Any) -> None:
        """Register the wait for a non-plain-delay yield (fast path only).

        Called by the run loop's inlined dispatch when the yielded object
        is not a non-negative ``float``: a real :class:`Event` wait, a
        negative delay (error) or a non-event (error).
        """
        if target.__class__ is float:
            self._step(
                None, SimulationError(f"negative timeout delay: {target}")
            )
            return
        if not isinstance(target, Event):
            self._step(
                None,
                SimulationError(f"process yielded non-event {target!r}"),
            )
            return
        self._waiting_on = target
        if (
            not target._processed
            and target._waiter is None
            and not target._callbacks
        ):
            target._waiter = self
        else:
            target.add_callback(self._resume)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        env = self.env
        prev = env._active
        env._active = self
        try:
            if exc is not None:
                target = self._generator.throw(exc)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as unhandled:
            self.fail(unhandled)
            return
        except Exception as err:
            self.fail(err)
            return
        finally:
            env._active = prev

        if target.__class__ is float:
            # Bare-delay fast path: one heap record, no Event machinery.
            if target < 0.0:
                self._step(
                    None, SimulationError(f"negative timeout delay: {target}")
                )
                return
            if env.fast:
                self._waiting_on = None
                env._seq = seq = env._seq + 1
                _heappush(env._queue, (env._now + target, seq, None, self))
                self._resume_seq = seq
                return
            target = Timeout(env, target)
        elif not isinstance(target, Event):
            self._step(
                None,
                SimulationError(f"process yielded non-event {target!r}"),
            )
            return
        self._waiting_on = target
        if (
            env.fast
            and not target._processed
            and target._waiter is None
            and not target._callbacks
        ):
            target._waiter = self
        else:
            target.add_callback(self._resume)
