"""Event loop and primitive events for the simulation kernel."""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import Process

__all__ = ["Environment", "Event", "Timeout", "Interrupt", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (double trigger, yielding a bad object…)."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries whatever the interrupter supplied.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait on.

    An event is *triggered* with a value (success) or *failed* with an
    exception.  Callbacks registered before the trigger run when the event is
    processed by the loop; waiting processes are resumed with the value or
    have the exception thrown into them.
    """

    __slots__ = ("env", "_value", "_exc", "_triggered", "_processed", "_callbacks")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._triggered = False
        self._processed = False
        self._callbacks: list[Callable[["Event"], None]] = []

    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` was called."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the loop has delivered the event to its waiters."""
        return self._processed

    @property
    def value(self) -> Any:
        """The success value (only meaningful after the event succeeded)."""
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The failure exception, if the event failed."""
        return self._exc

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self.env._schedule(self.env.now, self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed with ``exc``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exc!r}")
        self._triggered = True
        self._exc = exc
        self.env._schedule(self.env.now, self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event is processed.

        If the event was already processed the callback runs immediately.
        """
        if self._processed:
            fn(self)
        else:
            self._callbacks.append(fn)

    def _process(self) -> None:
        self._processed = True
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._triggered = True
        self._value = value
        env._schedule(env.now + delay, self)


class Environment:
    """The simulation clock and event queue."""

    __slots__ = ("_now", "_queue", "_seq", "_active")

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._active: Optional["Process"] = None

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional["Process"]:
        """The process currently being stepped (None outside process code)."""
        return self._active

    # -- event construction helpers ------------------------------------
    def event(self) -> Event:
        """Create an untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` firing after ``delay``."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> "Process":
        """Start a new :class:`Process` running ``generator``."""
        from repro.sim.process import Process

        return Process(self, generator)

    # -- scheduling -----------------------------------------------------
    def _schedule(self, at: float, event: Event) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (at, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        at, _, event = heapq.heappop(self._queue)
        self._now = at
        event._process()

    def run(self, until: Optional[float] = None) -> float:
        """Run events until the queue is empty or the clock passes ``until``.

        Returns the final simulated time.  When ``until`` is given the clock
        is advanced to exactly ``until`` even if no event lands there.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"until={until} is in the past (now={self._now})")
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                break
            self.step()
        if until is not None:
            self._now = max(self._now, until)
        return self._now
