"""Event loop and primitive events for the simulation kernel.

Two dispatch paths share one public API:

* The default **fast path** keeps the heap entry as the unit of
  scheduling instead of the :class:`Event` object.  Entries are
  ``(at, seq, event, process)`` 4-tuples; a plain timer wakeup — the
  dominant operation in the DES, one per think/service delay — is a
  ``(at, seq, None, process)`` *resume record* that resumes the waiting
  process directly from the scheduler, with no ``Event`` allocation, no
  callback list and no bound-method callback.  Processes wait on real
  events through a single ``_waiter`` slot when possible, and
  :meth:`Environment.run` dispatches with the heap bindings hoisted into
  locals.
* The **legacy path** (``REPRO_DES_LEGACY=1`` in the environment, or
  ``Environment(fast=False)``) reproduces the seed kernel's behaviour
  and per-event object traffic: every delay allocates a full
  :class:`Timeout`, every wait registers a callback, and the run loop
  calls :meth:`Environment.step` per event.  It is the reference
  baseline for ``benchmarks/bench_des.py`` and the bit-identity suites.

Both paths schedule in the same total ``(at, seq)`` order — a process
yielding a bare ``float`` acquires its sequence number at the same point
in the schedule stream as the seed kernel's ``yield env.timeout(...)``
did — so simulations are bit-identical across the two.
"""

from __future__ import annotations

import heapq
import os
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import Process

__all__ = ["Environment", "Event", "Timeout", "Interrupt", "SimulationError"]

_heappush = heapq.heappush
_heappop = heapq.heappop
_INF = float("inf")


class SimulationError(RuntimeError):
    """Raised for kernel misuse (double trigger, yielding a bad object…)."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries whatever the interrupter supplied.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait on.

    An event is *triggered* with a value (success) or *failed* with an
    exception.  Callbacks registered before the trigger run when the event is
    processed by the loop; waiting processes are resumed with the value or
    have the exception thrown into them.

    The first fast-path process to wait occupies the ``_waiter`` slot
    instead of appending a callback; the callback list itself is created
    lazily (most events never need one).  Delivery order is unchanged:
    the waiter slot is only used while the callback list is empty, so it
    is always the chronologically first registration.
    """

    __slots__ = (
        "env",
        "_value",
        "_exc",
        "_triggered",
        "_processed",
        "_callbacks",
        "_waiter",
    )

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._triggered = False
        self._processed = False
        # The legacy path keeps the seed kernel's eager list (its cost is
        # part of the pre-PR baseline); the fast path allocates lazily.
        self._callbacks: Optional[list[Callable[["Event"], None]]] = (
            None if env.fast else []
        )
        self._waiter: Optional["Process"] = None

    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` was called."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the loop has delivered the event to its waiters."""
        return self._processed

    @property
    def value(self) -> Any:
        """The success value (only meaningful after the event succeeded)."""
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The failure exception, if the event failed."""
        return self._exc

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        env = self.env
        if env.fast:
            env._seq = seq = env._seq + 1
            env._n_events += 1
            _heappush(env._queue, (env._now, seq, self, None))
        else:
            env._schedule(env.now, self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed with ``exc``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exc!r}")
        self._triggered = True
        self._exc = exc
        env = self.env
        if env.fast:
            env._seq = seq = env._seq + 1
            env._n_events += 1
            _heappush(env._queue, (env._now, seq, self, None))
        else:
            env._schedule(env.now, self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event is processed.

        If the event was already processed the callback runs immediately.
        """
        if self._processed:
            fn(self)
        elif self._callbacks is None:
            self._callbacks = [fn]
        else:
            self._callbacks.append(fn)

    def _process(self) -> None:
        self._processed = True
        waiter = self._waiter
        if waiter is not None:
            self._waiter = None
            waiter._resume(self)
        callbacks = self._callbacks
        if self.env.fast:
            self._callbacks = None
        else:
            # Seed behaviour: swap in a fresh list before running.
            self._callbacks = []
        if callbacks:
            for fn in callbacks:
                fn(self)


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._triggered = True
        self._value = value
        env._schedule(env._now + delay, self)


class Environment:
    """The simulation clock and event queue.

    ``fast=None`` (the default) selects the fast dispatch path unless
    ``REPRO_DES_LEGACY`` is set in the process environment.
    """

    __slots__ = ("_now", "_queue", "_seq", "_active", "fast", "_n_events")

    def __init__(
        self, initial_time: float = 0.0, fast: Optional[bool] = None
    ) -> None:
        if fast is None:
            fast = not os.environ.get("REPRO_DES_LEGACY")
        self.fast = bool(fast)
        self._now = float(initial_time)
        self._queue: list[
            tuple[float, int, Optional[Event], Optional["Process"]]
        ] = []
        self._seq = 0
        self._active: Optional["Process"] = None
        self._n_events = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional["Process"]:
        """The process currently being stepped (None outside process code)."""
        return self._active

    # -- observability --------------------------------------------------
    @property
    def scheduled_entries(self) -> int:
        """Total heap entries scheduled so far (events + resume records)."""
        return self._seq

    @property
    def pending_entries(self) -> int:
        """Heap entries not yet dispatched."""
        return len(self._queue)

    @property
    def fast_resumes(self) -> int:
        """Resume records scheduled without an :class:`Event` allocation.

        Derived as total entries minus event-carrying entries, so the
        hot delay path never touches a counter.
        """
        return self._seq - self._n_events

    # -- event construction helpers ------------------------------------
    def event(self) -> Event:
        """Create an untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` firing after ``delay``."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> "Process":
        """Start a new :class:`Process` running ``generator``."""
        from repro.sim.process import Process

        return Process(self, generator)

    # -- scheduling -----------------------------------------------------
    def _schedule(self, at: float, event: Event) -> None:
        self._seq = seq = self._seq + 1
        self._n_events += 1
        _heappush(self._queue, (at, seq, event, None))

    def _schedule_resume(self, at: float, process: "Process") -> int:
        """Schedule a bare resume record for ``process``; returns its seq.

        The process is resumed with ``(None, None)`` when the record is
        dispatched, unless its ``_resume_seq`` no longer matches (the
        record went stale through an interrupt or the process moved on).
        """
        self._seq = seq = self._seq + 1
        _heappush(self._queue, (at, seq, None, process))
        return seq

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else _INF

    def step(self) -> None:
        """Process exactly one heap entry (event or resume record)."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        entry = _heappop(self._queue)
        self._now = entry[0]
        event = entry[2]
        if event is not None:
            event._process()
        else:
            process = entry[3]
            if process._resume_seq == entry[1]:
                process._step(None, None)

    def run(self, until: Optional[float] = None) -> float:
        """Run events until the queue is empty or the clock passes ``until``.

        Returns the final simulated time.  When ``until`` is given the clock
        is advanced to exactly ``until`` even if no event lands there.
        """
        if until is not None:
            if until < self._now:
                raise SimulationError(
                    f"until={until} is in the past (now={self._now})"
                )
            limit = until
        else:
            limit = _INF
        queue = self._queue
        if self.fast:
            pop = _heappop
            push = _heappush
            while queue:
                at, seq, event, process = pop(queue)
                if at > limit:
                    # Too far: restore the entry and stop.
                    push(queue, (at, seq, event, process))
                    break
                self._now = at
                if event is None:
                    if process._resume_seq != seq:
                        continue  # stale record (interrupted / moved on)
                    value = None
                else:
                    # Event delivery.  The dominant shape — one fast-path
                    # waiter, no callbacks, no failure — feeds straight
                    # into the inlined send below; anything else takes
                    # the full _process path.
                    waiter = event._waiter
                    if (
                        waiter is None
                        or event._callbacks is not None
                        or event._exc is not None
                        or waiter._waiting_on is not event
                    ):
                        event._process()
                        continue
                    event._processed = True
                    event._waiter = None
                    waiter._waiting_on = None
                    process = waiter
                    value = event._value
                # Inline of Process._step for the dominant resume /
                # single-waiter delivery cycle; non-delay yields fall
                # back to Process._wait_on.
                self._active = process
                try:
                    target = process._generator.send(value)
                except StopIteration as stop:
                    self._active = None
                    process.succeed(stop.value)
                    continue
                except Interrupt as unhandled:
                    self._active = None
                    process.fail(unhandled)
                    continue
                except Exception as err:
                    self._active = None
                    process.fail(err)
                    continue
                self._active = None
                if target.__class__ is float and target >= 0.0:
                    self._seq = seq = self._seq + 1
                    push(queue, (at + target, seq, None, process))
                    process._resume_seq = seq
                else:
                    process._wait_on(target)
        else:
            while queue and queue[0][0] <= limit:
                self.step()
        if until is not None:
            self._now = max(self._now, until)
        return self._now
