"""Multi-server queueing resources with bounded waiting rooms.

:class:`Resource` models a pool of ``capacity`` identical servers (threads,
database connections, disk channels).  Acquire requests beyond capacity wait
FIFO in a queue of at most ``queue_limit`` entries; requests arriving to a
full queue fail immediately with :class:`QueueFullError` — this is how the
cluster models express Tomcat's ``acceptCount`` and similar backlog limits.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.sim.core import Environment, Event, SimulationError
from repro.util.stats import TimeWeightedStats

__all__ = ["Resource", "AcquireRequest", "QueueFullError"]


class QueueFullError(Exception):
    """An acquire arrived while the waiting room was full (rejected)."""


class AcquireRequest(Event):
    """Event representing one pending or granted acquisition.

    Yield it to wait for a server; call :meth:`release` (or use the resource's
    ``release``) exactly once when done.
    """

    __slots__ = ("resource", "_released")

    def __init__(self, env: Environment, resource: "Resource") -> None:
        super().__init__(env)
        self.resource = resource
        self._released = False

    def release(self) -> None:
        """Return the server to the pool (idempotence is an error)."""
        self.resource.release(self)


class Resource:
    """``capacity`` servers with a FIFO waiting room of ``queue_limit``."""

    __slots__ = (
        "env",
        "name",
        "_capacity",
        "_queue_limit",
        "_in_service",
        "_waiting",
        "_rejected",
        "_granted",
        "busy_stats",
        "queue_stats",
    )

    def __init__(
        self,
        env: Environment,
        capacity: int,
        queue_limit: Optional[int] = None,
        name: str = "resource",
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if queue_limit is not None and queue_limit < 0:
            raise ValueError(f"queue_limit must be >= 0, got {queue_limit}")
        self.env = env
        self.name = name
        self._capacity = capacity
        self._queue_limit = queue_limit
        self._in_service = 0
        self._waiting: deque[AcquireRequest] = deque()
        self._rejected = 0
        self._granted = 0
        self.busy_stats = TimeWeightedStats(env.now, 0.0)
        self.queue_stats = TimeWeightedStats(env.now, 0.0)

    # -- introspection ----------------------------------------------------
    @property
    def capacity(self) -> int:
        """Number of servers."""
        return self._capacity

    @property
    def in_service(self) -> int:
        """Requests currently holding a server."""
        return self._in_service

    @property
    def queue_length(self) -> int:
        """Requests currently waiting."""
        return len(self._waiting)

    @property
    def rejected(self) -> int:
        """Count of acquires rejected because the waiting room was full."""
        return self._rejected

    @property
    def granted(self) -> int:
        """Count of acquires that obtained a server."""
        return self._granted

    def utilization(self, now: Optional[float] = None) -> float:
        """Time-average fraction of servers busy since the last reset."""
        t = self.env.now if now is None else now
        return self.busy_stats.mean(t) / self._capacity

    def reset_stats(self) -> None:
        """Restart utilization/queue integration at the current time."""
        self.busy_stats.reset(self.env.now)
        self.queue_stats.reset(self.env.now)
        self._rejected = 0
        self._granted = 0

    # -- acquire / release -------------------------------------------------
    def acquire(self) -> AcquireRequest:
        """Request a server; the returned event triggers when granted.

        If the waiting room is full the event fails with
        :class:`QueueFullError` (delivered when yielded on).
        """
        env = self.env
        req = AcquireRequest(env, self)
        if self._in_service < self._capacity:
            self._in_service += 1
            self._granted += 1
            self.busy_stats.update(env._now, self._in_service)
            req.succeed(req)
        elif self._queue_limit is not None and len(self._waiting) >= self._queue_limit:
            self._rejected += 1
            req.fail(QueueFullError(self.name))
        else:
            self._waiting.append(req)
            self.queue_stats.update(env._now, len(self._waiting))
        return req

    def release(self, req: AcquireRequest) -> None:
        """Free the server held by ``req`` and admit the next waiter."""
        if req.resource is not self:
            raise SimulationError("release on the wrong resource")
        if req._released:
            raise SimulationError("double release")
        if not req.triggered or req.exception is not None:
            raise SimulationError("release of a request that never held a server")
        req._released = True
        if self._waiting:
            nxt = self._waiting.popleft()
            self.queue_stats.update(self.env._now, len(self._waiting))
            self._granted += 1
            nxt.succeed(nxt)  # server handed over; _in_service unchanged
        else:
            self._in_service -= 1
            self.busy_stats.update(self.env._now, self._in_service)

    def cancel(self, req: AcquireRequest) -> None:
        """Withdraw a waiting request (no effect if already granted)."""
        try:
            self._waiting.remove(req)
        except ValueError:
            return
        self.queue_stats.update(self.env.now, len(self._waiting))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Resource({self.name!r}, capacity={self._capacity}, "
            f"busy={self._in_service}, queued={len(self._waiting)})"
        )
