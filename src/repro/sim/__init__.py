"""A small discrete-event simulation kernel.

This is the substrate for the request-level backend (:mod:`repro.des`).  It
is deliberately SimPy-flavoured — generator-based processes communicating
through events and resources — but written from scratch and reduced to what
the cluster models need:

* :class:`Environment` — the event loop and simulated clock,
* :class:`Process` — a generator coroutine driven by the loop,
* :class:`Resource` — a multi-server queueing resource with an optional
  bounded waiting room (rejects when full, like a TCP accept backlog),
* :class:`Monitor` / :class:`repro.util.TimeWeightedStats` integration for
  utilization accounting.

Design notes (performance): the event queue is a binary heap of
``(time, sequence, event)`` tuples; the sequence number breaks ties FIFO and
avoids comparing event objects.  Processes are plain generators — no thread
or greenlet machinery — so a run costs one heap push/pop plus one ``send``
per event.
"""

from repro.sim.core import Environment, Event, Interrupt, SimulationError, Timeout
from repro.sim.process import Process
from repro.sim.resources import AcquireRequest, QueueFullError, Resource

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Interrupt",
    "SimulationError",
    "Process",
    "Resource",
    "AcquireRequest",
    "QueueFullError",
]
