"""Simulated server processes for the three tiers.

Each ``*Sim`` class owns the node's contended resources (CPU cores, one
disk, thread/connection pools) and exposes generator methods the request
flows yield through.  Cost constants come from the corresponding
:mod:`repro.cluster` model classes so the DES and the analytic backend
price the same work identically; service times are sampled exponential
around those means to generate realistic queueing variability.

A node's *memory penalty* (swap pressure) is computed once per measurement
from the same server-model evaluation the analytic backend uses and
multiplies every sampled service time on that node.
"""

from __future__ import annotations

import math

from repro.cluster.appserver import AppServerModel
from repro.cluster.context import WorkloadContext
from repro.cluster.database import DatabaseModel
from repro.cluster.node import NodeSpec
from repro.cluster.proxy import ProxyModel
from repro.sim.core import Environment
from repro.sim.resources import QueueFullError, Resource
from repro.tpcw.profiles import InteractionProfile
from repro.util.rng import RandomSource
from repro.util.stats import RunningStats

__all__ = ["NodeSim", "ProxyServerSim", "AppServerSim", "DbServerSim"]


class NodeSim:
    """Shared per-node machinery: CPU, disk, NIC byte accounting."""

    __slots__ = (
        "env",
        "node_id",
        "spec",
        "memory_penalty",
        "memory_bytes",
        "cpu",
        "disk",
        "nic_bytes",
        "latency",
    )

    def __init__(
        self,
        env: Environment,
        node_id: str,
        spec: NodeSpec,
        memory_penalty: float = 1.0,
        memory_bytes: float = 0.0,
    ) -> None:
        self.env = env
        self.node_id = node_id
        self.spec = spec
        self.memory_penalty = memory_penalty
        self.memory_bytes = memory_bytes
        self.cpu = Resource(env, spec.cpu_cores, name=f"{node_id}:cpu")
        self.disk = Resource(env, 1, name=f"{node_id}:disk")
        self.nic_bytes = 0.0
        self.latency = RunningStats()

    def _sample(self, rng: RandomSource, mean: float) -> float:
        """Exponential service time around ``mean`` with the swap penalty."""
        if mean <= 0.0:
            return 0.0
        return float(rng.exponential(mean)) * self.memory_penalty

    def use_cpu(self, rng: RandomSource, mean_seconds: float):
        """Hold one CPU core for a sampled service time (generator).

        The per-request flows below inline this body (acquire, sampled
        delay, release) rather than ``yield from`` it: each delegation
        level costs a frame hop on every kernel resume, and these sites
        sit on the hot path.  The helper remains for non-critical
        callers and tests.
        """
        req = self.cpu.acquire()
        yield req
        try:
            # A bare float yield is a delay (kernel fast path): no
            # Timeout object on the dominant service-time pattern.
            yield self._sample(rng, mean_seconds)
        finally:
            req.release()

    def use_disk(self, rng: RandomSource, mean_seconds: float):
        """Hold the disk for a sampled service time (generator)."""
        req = self.disk.acquire()
        yield req
        try:
            yield self._sample(rng, mean_seconds)
        finally:
            req.release()

    def account_nic(self, transfer_bytes: float) -> None:
        """Record bytes through this node's NIC."""
        self.nic_bytes += transfer_bytes

    def reset_stats(self) -> None:
        """Restart utilization integration (at the measurement window)."""
        self.cpu.reset_stats()
        self.disk.reset_stats()
        self.nic_bytes = 0.0
        self.latency = RunningStats()


class ProxyServerSim(NodeSim):
    """Tier 1: the Squid model, executed per request."""

    __slots__ = ("cfg", "ctx", "model", "mem_hit", "disk_hit", "lookup_cpu", "mean_obj")

    def __init__(self, env, node_id, spec, cfg: dict, ctx: WorkloadContext,
                 memory_penalty: float = 1.0, memory_bytes: float = 0.0) -> None:
        super().__init__(env, node_id, spec, memory_penalty, memory_bytes)
        self.cfg = cfg
        self.ctx = ctx
        model = ProxyModel(spec)
        self.model = model
        ev = model.evaluate(cfg, ctx)
        self.mem_hit = ev.mem_hit
        self.disk_hit = ev.disk_hit
        self.lookup_cpu = (
            model.LOOKUP_BASE_CPU
            + model.SCAN_CPU_PER_OBJECT * cfg["store_objects_per_bucket"] / 2.0
        )
        self.mean_obj = ctx.catalog.mean_object_bytes()

    def classify(self, rng: RandomSource) -> str:
        """Draw the cache outcome for one static object request."""
        u = rng.random()
        if u < self.mem_hit:
            return "mem"
        if u < self.mem_hit + self.disk_hit:
            return "disk"
        return "miss"

    def serve_static(self, rng: RandomSource, size: float):
        """Serve one static object; returns the outcome ("mem"/"disk"/"miss").

        On a miss the caller forwards to the application tier and then calls
        :meth:`relay` for the response path.
        """
        m = self.model
        cpu = self.cpu
        outcome = self.classify(rng)
        # use_cpu/use_disk inlined (see NodeSim.use_cpu).
        req = cpu.acquire()
        yield req
        try:
            yield self._sample(rng, m.PARSE_CPU + self.lookup_cpu)
        finally:
            req.release()
        if outcome == "mem":
            req = cpu.acquire()
            yield req
            try:
                yield self._sample(rng, size / m.MEM_COPY_RATE)
            finally:
                req.release()
        elif outcome == "disk":
            req = cpu.acquire()
            yield req
            try:
                yield self._sample(rng, m.DISK_HIT_CPU)
            finally:
                req.release()
            if rng.random() < m.DISK_HIT_IO_PROB:
                req = self.disk.acquire()
                yield req
                try:
                    yield self._sample(
                        rng, self.spec.disk_seconds(size, accesses=1.0)
                    )
                finally:
                    req.release()
        self.account_nic(size + 600.0)
        return outcome

    def accept_page(self, rng: RandomSource, cacheable: bool):
        """Handle a page request; returns True if served from cache."""
        m = self.model
        req = self.cpu.acquire()
        yield req
        try:
            yield self._sample(rng, m.PARSE_CPU + self.lookup_cpu)
        finally:
            req.release()
        if cacheable:
            outcome = self.classify(rng)
            if outcome != "miss":
                if outcome == "disk" and rng.random() < m.DISK_HIT_IO_PROB:
                    req = self.disk.acquire()
                    yield req
                    try:
                        yield self._sample(
                            rng,
                            self.spec.disk_seconds(
                                self.ctx.profile.response_bytes, accesses=1.0
                            ),
                        )
                    finally:
                        req.release()
                return True
        return False

    def relay(self, rng: RandomSource, size: float):
        """Relay a response fetched from the application tier."""
        m = self.model
        req = self.cpu.acquire()
        yield req
        try:
            yield self._sample(rng, m.FORWARD_CPU + size / m.MEM_COPY_RATE)
        finally:
            req.release()
        self.account_nic(2.0 * size + 600.0)


class AppServerSim(NodeSim):
    """Tier 2: the Tomcat model, executed per request."""

    __slots__ = ("cfg", "ctx", "model", "http_pool", "ajp_pool", "mean_obj")

    def __init__(self, env, node_id, spec, cfg: dict, ctx: WorkloadContext,
                 memory_penalty: float = 1.0, memory_bytes: float = 0.0) -> None:
        super().__init__(env, node_id, spec, memory_penalty, memory_bytes)
        self.cfg = cfg
        self.ctx = ctx
        self.model = AppServerModel(spec)
        self.http_pool = Resource(
            env,
            max(int(cfg["maxProcessors"]), 1),
            queue_limit=int(cfg["acceptCount"]),
            name=f"{node_id}:http",
        )
        self.ajp_pool = Resource(
            env,
            max(int(cfg["AJPmaxProcessors"]), 1),
            queue_limit=int(cfg["AJPacceptCount"]),
            name=f"{node_id}:ajp",
        )
        self.mean_obj = ctx.catalog.mean_object_bytes()

    def _spawn_cost(self, rng: RandomSource) -> float:
        """Thread-churn cost: spawning when the warm pool is exceeded."""
        m = self.model
        warm = float(self.cfg["minProcessors"])
        busy = float(self.http_pool.in_service)
        if busy <= warm:
            return 0.0
        prob = self.ctx.burstiness * (busy - warm) / max(busy, 1.0) * 0.25
        return m.SPAWN_CPU if rng.random() < prob else 0.0

    def serve_static(self, rng: RandomSource, size: float):
        """Serve a proxy cache miss from the servlet container's files."""
        m = self.model
        req = self.http_pool.acquire()
        yield req  # raises QueueFullError via the event if the backlog is full
        try:
            spawn = self._spawn_cost(rng)
            cpu_req = self.cpu.acquire()
            yield cpu_req
            try:
                yield self._sample(
                    rng,
                    m.PARSE_CPU + m.STATIC_SERVE_CPU
                    + size / m.FILE_COPY_RATE + spawn,
                )
            finally:
                cpu_req.release()
            if rng.random() < m.STATIC_DISK_ACCESS_PROB:
                disk_req = self.disk.acquire()
                yield disk_req
                try:
                    yield self._sample(
                        rng, self.spec.disk_seconds(size, accesses=1.0)
                    )
                finally:
                    disk_req.release()
            self.account_nic(size + 600.0)
        finally:
            req.release()

    def serve_page(
        self,
        rng: RandomSource,
        profile: InteractionProfile,
        db_call,  # generator factory: () -> generator running the DB work
    ):
        """Run a dynamic page: HTTP thread -> AJP thread -> servlet + DB."""
        m = self.model
        http = self.http_pool.acquire()
        yield http
        try:
            spawn = self._spawn_cost(rng)
            req = self.cpu.acquire()
            yield req
            try:
                yield self._sample(rng, m.PARSE_CPU + spawn)
            finally:
                req.release()
            ajp = self.ajp_pool.acquire()
            yield ajp
            try:
                syscalls = math.ceil(profile.response_bytes / self.cfg["bufferSize"])
                req = self.cpu.acquire()
                yield req
                try:
                    yield self._sample(
                        rng,
                        profile.app_cpu
                        + m.AJP_RELAY_CPU
                        + syscalls * m.WRITE_SYSCALL_CPU,
                    )
                finally:
                    req.release()
                if db_call is not None:
                    yield from db_call()
            finally:
                ajp.release()
            self.account_nic(profile.response_bytes + profile.db_result_bytes + 600.0)
        finally:
            http.release()


class DbServerSim(NodeSim):
    """Tier 3: the MySQL model, executed per page's worth of queries."""

    __slots__ = (
        "cfg",
        "ctx",
        "model",
        "conn_pool",
        "table_miss",
        "binlog_spill",
        "join_factor",
        "batch",
        "reader_factor",
    )

    def __init__(self, env, node_id, spec, cfg: dict, ctx: WorkloadContext,
                 memory_penalty: float = 1.0, memory_bytes: float = 0.0,
                 backlog: int = 10) -> None:
        super().__init__(env, node_id, spec, memory_penalty, memory_bytes)
        self.cfg = cfg
        self.ctx = ctx
        model = DatabaseModel(spec)
        self.model = model
        self.conn_pool = Resource(
            env,
            max(int(cfg["max_connections"]), 1),
            queue_limit=backlog,
            name=f"{node_id}:dbconn",
        )
        self.table_miss = math.exp(-cfg["table_cache"] / model.TABLE_WORKING_SET)
        self.binlog_spill = math.exp(
            -cfg["binlog_cache_size"] / model.BINLOG_RECORD_MEAN
        )
        jb = float(cfg["join_buffer_size"])
        if jb >= model.JOIN_BUFFER_NEEDED:
            self.join_factor = 1.0
        else:
            self.join_factor = 1.0 + model.JOIN_REFILL_COEF * math.log2(
                model.JOIN_BUFFER_NEEDED / jb
            )
        self.batch = min(16.0, max(1.0, cfg["delayed_queue_size"] / 500.0))
        self.reader_factor = 1.0 + 0.06 * math.exp(
            -cfg["delayed_insert_limit"] / 120.0
        )

    @staticmethod
    def _count(u: float, mean: float) -> int:
        """Integerize a fractional per-page operation count.

        ``u`` is a pre-drawn uniform — the four per-page counts consume
        one site-directed block of four (stream-identical to four scalar
        draws).
        """
        base = int(mean)
        return base + (1 if u < mean - base else 0)

    def run_queries(self, rng: RandomSource, profile: InteractionProfile):
        """Execute one dynamic page's database work inside one connection."""
        m = self.model
        conn = self.conn_pool.acquire()
        yield conn
        try:
            # Connection churn: thread-cache miss pays setup CPU.
            cpu = self.cpu
            disk = self.disk
            conc = max(float(self.conn_pool.in_service), 1.0)
            cache_hit = min(1.0, self.cfg["thread_con"] / conc)
            if rng.random() < m.CONN_CHURN_PER_PAGE * (1.0 - cache_hit):
                req = cpu.acquire()
                yield req
                try:
                    yield self._sample(rng, m.CONN_SETUP_CPU)
                finally:
                    req.release()

            u = rng.random(4)
            reads = self._count(u[0], profile.db_queries)
            heavy = self._count(u[1], profile.db_heavy_queries)
            writes = self._count(u[2], profile.db_writes)
            inserts = self._count(u[3], profile.db_inserts)

            # use_cpu/use_disk inlined throughout (see NodeSim.use_cpu).
            for _ in range(reads):
                cost = m.QUERY_CPU * self.reader_factor
                if rng.random() < self.table_miss:
                    cost += m.TABLE_OPEN_CPU
                    if rng.random() < m.TABLE_OPEN_DISK_PROB:
                        req = disk.acquire()
                        yield req
                        try:
                            yield self._sample(
                                rng, self.spec.disk_seconds(4096, accesses=1.0)
                            )
                        finally:
                            req.release()
                req = cpu.acquire()
                yield req
                try:
                    yield self._sample(rng, cost)
                finally:
                    req.release()
                if rng.random() < m.READ_MISS_PROB:
                    req = disk.acquire()
                    yield req
                    try:
                        yield self._sample(
                            rng,
                            self.spec.disk_seconds(
                                m.READ_MISS_BYTES, accesses=1.0
                            ),
                        )
                    finally:
                        req.release()
            for _ in range(heavy):
                req = cpu.acquire()
                yield req
                try:
                    yield self._sample(
                        rng, m.HEAVY_QUERY_CPU * self.join_factor
                    )
                finally:
                    req.release()
                req = disk.acquire()
                yield req
                try:
                    yield self._sample(
                        rng,
                        self.spec.disk_seconds(m.HEAVY_SCAN_BYTES, accesses=0.6),
                    )
                finally:
                    req.release()
            for _ in range(writes):
                req = cpu.acquire()
                yield req
                try:
                    yield self._sample(rng, m.WRITE_CPU)
                finally:
                    req.release()
                req = disk.acquire()
                yield req
                try:
                    yield self._sample(
                        rng,
                        self.spec.disk_seconds(
                            4096, accesses=m.WRITE_LOG_ACCESSES
                        ),
                    )
                finally:
                    req.release()
                if rng.random() < self.binlog_spill:
                    req = disk.acquire()
                    yield req
                    try:
                        yield self._sample(
                            rng,
                            self.spec.disk_seconds(
                                m.BINLOG_RECORD_MEAN, accesses=1.0
                            ),
                        )
                    finally:
                        req.release()
            for _ in range(inserts):
                req = cpu.acquire()
                yield req
                try:
                    yield self._sample(rng, m.INSERT_CPU)
                finally:
                    req.release()
                # Delayed-insert batching amortizes the disk write.
                if rng.random() < 1.0 / self.batch:
                    req = disk.acquire()
                    yield req
                    try:
                        yield self._sample(
                            rng,
                            self.spec.disk_seconds(
                                4096, accesses=m.INSERT_DISK_ACCESS
                            ),
                        )
                    finally:
                        req.release()
            syscalls = math.ceil(
                max(profile.db_result_bytes, 1.0) / self.cfg["net_buffer_length"]
            )
            req = cpu.acquire()
            yield req
            try:
                yield self._sample(rng, syscalls * m.WRITE_SYSCALL_CPU)
            finally:
                req.release()
            self.account_nic(profile.db_result_bytes + 400.0)
        finally:
            conn.release()
