"""Request-level discrete-event backend.

Where the analytic backend (:mod:`repro.model`) solves a queueing network,
this backend *runs* the cluster: emulated-browser processes think and issue
interactions; page and image requests flow through proxy, application and
database server processes contending for CPU, disk, thread pools and
connection pools built on the :mod:`repro.sim` kernel.  It shares every
cost constant and cache/hit model with the analytic backend (both import
the same :mod:`repro.cluster` server models), so the two backends are two
*evaluations* of one substrate — the cross-validation tests assert they
agree on throughput within a tolerance.

Use it for validation and request-level detail (latency distributions,
queue dynamics); use the analytic backend for 200-iteration tuning sweeps.
"""

from repro.des.backend import SimulationBackend
from repro.des.servers import AppServerSim, DbServerSim, NodeSim, ProxyServerSim

__all__ = [
    "SimulationBackend",
    "NodeSim",
    "ProxyServerSim",
    "AppServerSim",
    "DbServerSim",
]
