"""The discrete-event measurement backend.

One :meth:`SimulationBackend.measure` call builds the cluster's server
processes, spawns the emulated-browser population, runs warm-up /
measurement / cool-down over simulated time (the §III.A iteration), and
returns the same :class:`~repro.model.base.Measurement` the analytic
backend produces — WIPS, error rate, response times and per-node resource
utilizations.

Simulated durations default to a scaled-down iteration (the paper's
100/1000/100 s cycle × ``time_scale``) so a measurement stays cheap enough
for tests while collecting thousands of interactions.

Performance layers (all default-on, all bit-identical to the seed DES):

* the kernel fast path (:mod:`repro.sim.core`) — service/think delays are
  bare-float yields dispatched as resume records, not ``Timeout`` events;
* per-browser :class:`~repro.util.rng.BlockSampler` streams — uniform and
  exponential draws are served from pre-drawn blocks where stream-stable
  (the load balancer's bounded ``integers`` draw stays scalar);
* opt-in **parallel replications** (``replications=R``): R seed-derived
  independent iterations fanned through the parallel executor and merged
  by batch means for tighter confidence intervals at roughly the
  wall-clock of one.  ``replications=1`` (default) is bit-identical to
  the seed backend and keeps legacy cache keys; ``R>1`` points are
  cache-key-separated via :meth:`measurement_cache_token`.

``profile=True`` records event counts, RNG draw accounting and per-phase
wall-clock into ``Measurement.diagnostics`` (diagnostics only: profiled
measurements carry timing values and are excluded from byte-identity
gates).
"""

from __future__ import annotations

import math
import os
import time
from typing import Mapping, Optional, Sequence

from repro.cluster.appserver import AppServerModel
from repro.cluster.context import WorkloadContext
from repro.cluster.database import DatabaseModel
from repro.cluster.memory import MemoryModel
from repro.cluster.node import Role
from repro.cluster.proxy import ProxyModel
from repro.cluster.topology import ClusterSpec
from repro.des.servers import AppServerSim, DbServerSim, NodeSim, ProxyServerSim
from repro.faults.backend import ClusterOutageError
from repro.harmony.parameter import Configuration
from repro.model.base import (
    Measurement,
    PerformanceBackend,
    ResourceUtilization,
    Scenario,
)
from repro.sim.core import Environment
from repro.sim.resources import QueueFullError
from repro.tpcw.interactions import InteractionCategory
from repro.tpcw.metrics import WipsMeter
from repro.tpcw.mix import MixSampler
from repro.tpcw.navigation import NavigationModel
from repro.tpcw.wirt import WirtTracker
from repro.tpcw.profiles import PROFILES
from repro.tuning.iteration import IterationSpec
from repro.util.rng import BlockSampler, RandomSource, RngFactory, derive_seed
from repro.util.stats import RunningStats, percentile

__all__ = ["SimulationBackend", "NETWORK_RTT"]

#: Per-interaction network round trips (matches the analytic backend).
NETWORK_RTT = 5e-3


def _clock() -> float:
    """Wall-clock reads for ``profile=True`` diagnostics only.

    Never feeds simulation state — profiled measurements are documented
    as excluded from determinism/byte-identity gates.
    """
    return time.perf_counter()  # repro: noqa[RPL002] profile diagnostics only


class _InteractionError(Exception):
    """A page request was rejected somewhere along the pipeline."""


class _SimCluster:
    """The wired-up simulated cluster for one measurement."""

    def __init__(
        self,
        env: Environment,
        cluster: ClusterSpec,
        configuration: Mapping[str, int],
        ctx: WorkloadContext,
        memory: MemoryModel,
        work_lines: Optional[Mapping[str, tuple[str, ...]]] = None,
    ) -> None:
        self.env = env
        self.ctx = ctx
        self.nodes: dict[str, NodeSim] = {}
        by_role: dict[Role, list[NodeSim]] = {r: [] for r in Role}
        for placement in cluster.placements:
            cfg = cluster.node_config(configuration, placement.node_id)
            role = placement.role
            if role is Role.PROXY:
                model_eval = ProxyModel(placement.spec).evaluate(cfg, ctx)
                sim: NodeSim = ProxyServerSim(
                    env, placement.node_id, placement.spec, cfg, ctx,
                    memory.penalty(model_eval.memory_bytes, placement.spec.memory_bytes),
                    model_eval.memory_bytes,
                )
            elif role is Role.APP:
                app_eval = AppServerModel(placement.spec).evaluate(
                    cfg, ctx, dynamic_pages=1.0, static_requests=1.0
                )
                sim = AppServerSim(
                    env, placement.node_id, placement.spec, cfg, ctx,
                    memory.penalty(app_eval.memory_bytes, placement.spec.memory_bytes),
                    app_eval.memory_bytes,
                )
            else:
                db_eval = DatabaseModel(placement.spec).evaluate(
                    cfg, ctx, dynamic_pages=1.0
                )
                sim = DbServerSim(
                    env, placement.node_id, placement.spec, cfg, ctx,
                    memory.penalty(db_eval.memory_bytes, placement.spec.memory_bytes),
                    db_eval.memory_bytes,
                )
            self.nodes[placement.node_id] = sim
            by_role[role].append(sim)
        self._by_role = by_role
        # Work lines restrict routing; otherwise one global line.
        if work_lines:
            self.lines = {
                line: {
                    role: [self.nodes[n] for n in node_ids
                           if cluster.role_of(n) is role]
                    for role in Role
                }
                for line, node_ids in work_lines.items()
            }
        else:
            self.lines = {"all": by_role}
        # A line with an empty tier cannot serve its population share:
        # surface it as the same outage the analytic path raises, at
        # build time, instead of dying mid-simulation inside an
        # unwaited process (where the error would be swallowed).
        for line, groups in self.lines.items():
            for role, sims in groups.items():
                if not sims:
                    raise ClusterOutageError(
                        f"work line {line!r} has no {role.value} node to "
                        "route to"
                    )

    def pick(self, line: str, role: Role, rng: RandomSource) -> NodeSim:
        """Random uniform node of ``role`` within ``line`` (load balancer)."""
        nodes = self.lines[line][role]
        n = len(nodes)
        if n == 1:
            return nodes[0]
        if not n:
            # Defensive: construction already validates, but a tier
            # emptied behind our back must not surface as numpy's bare
            # ValueError from ``integers(0)``.
            raise ClusterOutageError(
                f"work line {line!r} has no {role.value} node to route to"
            )
        return nodes[int(rng.integers(n))]


def _replication_worker(
    init_kwargs: dict,
    scenario: Scenario,
    configuration: Configuration,
    seed: int,
) -> Measurement:
    """Parallel-executor worker: one independent replication."""
    backend = SimulationBackend(**init_kwargs)
    return backend._measure_once(scenario, configuration, seed)


def _merge_replications(results: Sequence[Measurement]) -> Measurement:
    """Batch-means merge of independent replications.

    Metrics and per-node utilizations are averaged in replication order
    (deterministic); ``replication.*`` diagnostics record the spread so
    callers get confidence intervals for free.
    """
    n = len(results)
    if n == 1:
        return results[0]
    inv = 1.0 / n
    wips_values = [m.wips for m in results]
    mean_wips = sum(wips_values) * inv
    utilization = {
        node: ResourceUtilization(
            cpu=sum(m.utilization[node].cpu for m in results) * inv,
            disk=sum(m.utilization[node].disk for m in results) * inv,
            network=sum(m.utilization[node].network for m in results) * inv,
            memory=sum(m.utilization[node].memory for m in results) * inv,
        )
        for node in results[0].utilization
    }
    diagnostics: dict[str, float] = {}
    for key in sorted({k for m in results for k in m.diagnostics}):
        values = [m.diagnostics[key] for m in results if key in m.diagnostics]
        diagnostics[key] = sum(values) / len(values)
    per_line = {
        line: sum(m.per_line_wips[line] for m in results) * inv
        for line in results[0].per_line_wips
    }
    variance = sum((w - mean_wips) ** 2 for w in wips_values) / (n - 1)
    stddev = math.sqrt(variance)
    stderr = stddev / math.sqrt(n)
    diagnostics["replication.count"] = float(n)
    diagnostics["replication.wips_stddev"] = stddev
    diagnostics["replication.wips_stderr"] = stderr
    diagnostics["replication.wips_ci95"] = 1.96 * stderr
    for i, w in enumerate(wips_values):
        diagnostics[f"replication.{i}.wips"] = w
    return Measurement(
        wips=mean_wips,
        raw_wips=sum(m.raw_wips for m in results) * inv,
        error_rate=sum(m.error_rate for m in results) * inv,
        response_time=sum(m.response_time for m in results) * inv,
        utilization=utilization,
        diagnostics=diagnostics,
        per_line_wips=per_line,
    )


class SimulationBackend(PerformanceBackend):
    """Request-level DES implementation of the backend interface."""

    def __init__(
        self,
        iteration_spec: Optional[IterationSpec] = None,
        time_scale: float = 0.15,
        memory: Optional[MemoryModel] = None,
        navigation: bool = False,
        replications: int = 1,
        replication_jobs: Optional[int] = None,
        profile: bool = False,
        legacy_kernel: Optional[bool] = None,
    ) -> None:
        """``navigation=True`` makes each emulated browser follow the TPC-W
        navigation graph (correlated sessions) instead of sampling
        interactions i.i.d.; the long-run mix — and therefore WIPS — is
        identical (same stationary distribution).

        ``replications=R`` (R>1) measures R seed-derived independent
        iterations and merges them by batch means; ``replication_jobs``
        bounds the process fan-out (1 forces the serial in-process loop,
        which is bit-identical to the parallel merge).  ``profile=True``
        adds ``profile.*`` diagnostics (event counts, RNG draw mix,
        per-phase wall-clock).  ``legacy_kernel=True`` forces the seed
        kernel's dispatch path (the bench baseline); the default follows
        ``REPRO_DES_LEGACY``."""
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        if replications < 1:
            raise ValueError("replications must be >= 1")
        if replication_jobs is not None and replication_jobs < 1:
            raise ValueError("replication_jobs must be >= 1")
        base = iteration_spec or IterationSpec()
        self.spec = base.scaled(time_scale)
        self.memory = memory or MemoryModel()
        self.navigation = navigation
        self.replications = int(replications)
        self.replication_jobs = replication_jobs
        self.profile = profile
        self.legacy_kernel = legacy_kernel
        #: Environment ``fast`` argument (None = honour REPRO_DES_LEGACY).
        self._env_fast = None if legacy_kernel is None else not legacy_kernel
        #: Constructor kwargs a replication worker rebuilds from (one
        #: replication each, so ``replications`` is deliberately absent).
        self._init_kwargs = dict(
            iteration_spec=base,
            time_scale=time_scale,
            memory=self.memory,
            navigation=navigation,
            profile=profile,
            legacy_kernel=legacy_kernel,
        )
        self._context_cache: dict[tuple, WorkloadContext] = {}
        self._nav_cache: dict[str, NavigationModel] = {}
        #: The WIRT tracker of the most recent measure() call (per-type
        #: response-time percentiles for compliance reports).
        self.last_wirt: Optional[WirtTracker] = None

    def measurement_cache_token(self) -> tuple:
        """Replicated measurements live under their own cache keys.

        ``replications=1`` returns the empty token, keeping every legacy
        3-tuple cache key byte-identical (durable stores included).
        """
        if self.replications > 1:
            return ("replications", self.replications)
        return ()

    def _context(self, scenario: Scenario) -> WorkloadContext:
        # Content-keyed (not ``id()``-keyed): persistent backends outlive
        # their scenarios, and a dead catalog's id can be reused.
        key = (scenario.catalog.fingerprint(), scenario.mix.fingerprint())
        ctx = self._context_cache.get(key)
        if ctx is None:
            ctx = WorkloadContext.for_mix(scenario.mix, scenario.catalog)
            self._context_cache[key] = ctx
        return ctx

    # ------------------------------------------------------------------
    # request flows
    # ------------------------------------------------------------------
    def _static_flow(self, sim: _SimCluster, line: str,
                     proxy: ProxyServerSim, rng: RandomSource):
        size = sim.ctx.catalog.object_size(sim.ctx.catalog.sample_object(rng))
        outcome = yield from proxy.serve_static(rng, size)
        if outcome == "miss":
            app: AppServerSim = sim.pick(line, Role.APP, rng)  # type: ignore[assignment]
            yield from app.serve_static(rng, size)
            yield from proxy.relay(rng, size)

    def _interaction_flow(self, sim: _SimCluster, line: str, interaction,
                          rng: RandomSource):
        profile = PROFILES[interaction]
        proxy: ProxyServerSim = sim.pick(line, Role.PROXY, rng)  # type: ignore[assignment]
        yield NETWORK_RTT
        cacheable = rng.random() < profile.page_cacheable
        try:
            served = yield from proxy.accept_page(rng, cacheable)
            if not served:
                app: AppServerSim = sim.pick(line, Role.APP, rng)  # type: ignore[assignment]
                if cacheable:
                    yield from app.serve_static(rng, profile.response_bytes)
                else:
                    db: DbServerSim = sim.pick(line, Role.DB, rng)  # type: ignore[assignment]
                    yield from app.serve_page(
                        rng, profile, lambda: db.run_queries(rng, profile)
                    )
                yield from proxy.relay(rng, profile.response_bytes)
        except QueueFullError as err:
            raise _InteractionError(str(err)) from err
        # Embedded static objects, fetched concurrently.
        n = int(profile.static_objects)
        if rng.random() < profile.static_objects - n:
            n += 1
        if n:
            procs = [
                sim.env.process(self._static_flow(sim, line, proxy, rng))
                for _ in range(n)
            ]
            for proc in procs:
                try:
                    yield proc
                except QueueFullError:
                    pass  # a lost image degrades but does not fail the page

    def _navigation(self, scenario: Scenario) -> NavigationModel:
        nav = self._nav_cache.get(scenario.mix.name)
        if nav is None:
            nav = NavigationModel(scenario.mix)
            self._nav_cache[scenario.mix.name] = nav
        return nav

    def _browser(self, sim: _SimCluster, line: str, scenario: Scenario,
                 sampler: MixSampler, rng: RandomSource,
                 meter: WipsMeter, latency: RunningStats,
                 latency_samples: list, wirt: WirtTracker):
        env = sim.env
        behavior = scenario.behavior
        nav = self._navigation(scenario) if self.navigation else None
        interaction = sampler.sample(rng)
        while True:
            yield behavior.next_think_time(rng)
            if nav is not None:
                interaction = nav.next_interaction(interaction, rng)
            else:
                interaction = sampler.sample(rng)
            start = env._now
            try:
                yield env.process(
                    self._interaction_flow(sim, line, interaction, rng)
                )
            except _InteractionError:
                meter.record_error()
                continue
            if meter.window_open:
                latency.add(env._now - start)
                latency_samples.append(env._now - start)
                wirt.record(interaction, env._now - start)
            meter.record_completion(interaction)

    # ------------------------------------------------------------------
    def measure(
        self,
        scenario: Scenario,
        configuration: Configuration,
        seed: int = 0,
    ) -> Measurement:
        """Measure one point (see the class docstring).

        With ``replications=1`` this is a single simulated iteration;
        otherwise R seed-derived iterations merged by batch means.
        """
        if self.replications == 1:
            return self._measure_once(scenario, configuration, seed)
        return self._measure_replicated(scenario, configuration, seed)

    def _replication_seeds(self, seed: int) -> list[int]:
        """Replication 0 keeps ``seed`` itself (bit-compatible stream);
        further replications derive independent streams from it."""
        return [int(seed)] + [
            derive_seed(seed, "des-replication", i)
            for i in range(1, self.replications)
        ]

    def _measure_replicated(
        self,
        scenario: Scenario,
        configuration: Configuration,
        seed: int,
    ) -> Measurement:
        seeds = self._replication_seeds(seed)
        if self.replication_jobs == 1:
            results = [
                self._measure_once(scenario, configuration, s) for s in seeds
            ]
        else:
            from repro.parallel import ParallelExecutor, RunSpec

            jobs = self.replication_jobs or min(
                len(seeds), os.cpu_count() or 1
            )
            executor = ParallelExecutor(jobs=jobs, engine="process")
            try:
                out = executor.run(
                    [
                        RunSpec(
                            key=i,
                            fn=_replication_worker,
                            kwargs={
                                "init_kwargs": self._init_kwargs,
                                "scenario": scenario,
                                "configuration": configuration,
                                "seed": s,
                            },
                        )
                        for i, s in enumerate(seeds)
                    ]
                )
            finally:
                executor.close()
            results = [out[i] for i in range(len(seeds))]
        return _merge_replications(results)

    def _measure_once(
        self,
        scenario: Scenario,
        configuration: Configuration,
        seed: int = 0,
    ) -> Measurement:
        """Simulate one measurement iteration (the seed-identical path)."""
        profiling = self.profile
        t0 = _clock() if profiling else 0.0
        ctx = self._context(scenario)
        env = Environment(fast=self._env_fast)
        sim = _SimCluster(
            env,
            scenario.cluster,
            configuration,
            ctx,
            self.memory,
            scenario.work_lines,
        )
        rngs = RngFactory(seed).child("des")
        sampler = MixSampler(scenario.mix)
        wrap = env.fast  # block-sample only on the fast path (the legacy
        # path is the pre-PR reference, raw scalar generators included)
        samplers: list[BlockSampler] = []

        lines = sorted(sim.lines)
        meters = {line: WipsMeter() for line in lines}
        latency = RunningStats()
        latency_samples: list[float] = []
        wirt = WirtTracker()
        share = scenario.population // len(lines)
        remainder = scenario.population - share * len(lines)
        for li, line in enumerate(lines):
            count = share + (1 if li < remainder else 0)
            for b in range(count):
                rng: RandomSource = rngs.get("browser", line, b)
                if wrap:
                    # min_run=0: site-directed blocks only.  Browser
                    # streams interleave uniform and exponential draws
                    # every few calls, so the auto-fill heuristic would
                    # thrash (fill 1024, serve a handful, rewind).
                    rng = BlockSampler(rng, min_run=0)
                    if profiling:
                        samplers.append(rng)
                env.process(
                    self._browser(
                        sim, line, scenario, sampler, rng,
                        meters[line], latency, latency_samples, wirt,
                    )
                )

        t1 = _clock() if profiling else 0.0
        env.run(until=self.spec.warmup)
        t2 = _clock() if profiling else 0.0
        for node in sim.nodes.values():
            node.reset_stats()
        for meter in meters.values():
            meter.open_window(env.now)
        measure_end = self.spec.warmup + self.spec.measure
        env.run(until=measure_end)
        t3 = _clock() if profiling else 0.0
        for meter in meters.values():
            meter.close_window(env.now)
        duration = self.spec.measure

        utilization: dict[str, ResourceUtilization] = {}
        diagnostics: dict[str, float] = {}
        for node_id, node in sim.nodes.items():
            utilization[node_id] = ResourceUtilization(
                cpu=node.cpu.utilization(measure_end),
                disk=node.disk.utilization(measure_end),
                network=min(
                    node.nic_bytes / duration / node.spec.nic_rate, 1.0
                ),
                memory=node.memory_bytes / node.spec.memory_bytes,
            )
            diagnostics[f"{node_id}.jobs"] = (
                node.cpu.busy_stats.mean(measure_end)
                + node.cpu.queue_stats.mean(measure_end)
            )
            diagnostics[f"{node_id}.memory_penalty"] = node.memory_penalty
        for node in sim.nodes.values():
            if isinstance(node, AppServerSim):
                diagnostics[f"{node.node_id}.http.rejected"] = float(
                    node.http_pool.rejected
                )
            if isinstance(node, DbServerSim):
                diagnostics[f"{node.node_id}.dbconn.rejected"] = float(
                    node.conn_pool.rejected
                )

        total_completed = sum(m.completed for m in meters.values())
        total_errors = sum(m.errors for m in meters.values())
        wips = total_completed / duration
        # Secondary TPC-W metrics: per-category throughput (WIPSb-/WIPSo-
        # style) and response-time percentiles.
        for category in InteractionCategory:
            rate = sum(m.category_rate(category) for m in meters.values())
            diagnostics[f"wips_{category.value}"] = rate
        if latency_samples:
            diagnostics["rt_p50"] = percentile(latency_samples, 50)
            diagnostics["rt_p95"] = percentile(latency_samples, 95)
        # TPC-W WIRT compliance (clause 5.2): a valid WIPS number requires
        # every interaction type's p90 under its limit.
        diagnostics["wirt_compliant"] = 1.0 if wirt.compliant() else 0.0
        self.last_wirt = wirt
        if profiling:
            dispatched = env.scheduled_entries - env.pending_entries
            sim_wall = (t2 - t1) + (t3 - t2)
            diagnostics["profile.build_seconds"] = t1 - t0
            diagnostics["profile.warmup_seconds"] = t2 - t1
            diagnostics["profile.measure_seconds"] = t3 - t2
            # The DES does not simulate the cool-down phase (stats are
            # frozen at window close); recorded for schema completeness.
            diagnostics["profile.cooldown_seconds"] = 0.0
            diagnostics["profile.entries_scheduled"] = float(
                env.scheduled_entries
            )
            diagnostics["profile.entries_dispatched"] = float(dispatched)
            diagnostics["profile.entries_pending"] = float(
                env.pending_entries
            )
            diagnostics["profile.fast_resumes"] = float(env.fast_resumes)
            diagnostics["profile.events_per_second"] = (
                dispatched / sim_wall if sim_wall > 0 else 0.0
            )
            diagnostics["profile.rng_streams"] = float(len(samplers))
            for counter in ("scalar_draws", "block_draws", "fills",
                            "rewinds"):
                diagnostics[f"profile.rng_{counter}"] = float(
                    sum(getattr(s, counter) for s in samplers)
                )
        attempted = total_completed + total_errors
        per_line = (
            {line: m.completed / duration for line, m in meters.items()}
            if scenario.work_lines
            else {}
        )
        return Measurement(
            wips=wips,
            raw_wips=wips,
            error_rate=total_errors / attempted if attempted else 0.0,
            response_time=latency.mean,
            utilization=utilization,
            diagnostics=diagnostics,
            per_line_wips=per_line,
        )
