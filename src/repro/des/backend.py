"""The discrete-event measurement backend.

One :meth:`SimulationBackend.measure` call builds the cluster's server
processes, spawns the emulated-browser population, runs warm-up /
measurement / cool-down over simulated time (the §III.A iteration), and
returns the same :class:`~repro.model.base.Measurement` the analytic
backend produces — WIPS, error rate, response times and per-node resource
utilizations.

Simulated durations default to a scaled-down iteration (the paper's
100/1000/100 s cycle × ``time_scale``) so a measurement stays cheap enough
for tests while collecting thousands of interactions.
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from repro.cluster.appserver import AppServerModel
from repro.cluster.context import WorkloadContext
from repro.cluster.database import DatabaseModel
from repro.cluster.memory import MemoryModel
from repro.cluster.node import Role
from repro.cluster.proxy import ProxyModel
from repro.cluster.topology import ClusterSpec
from repro.des.servers import AppServerSim, DbServerSim, NodeSim, ProxyServerSim
from repro.harmony.parameter import Configuration
from repro.model.base import (
    Measurement,
    PerformanceBackend,
    ResourceUtilization,
    Scenario,
)
from repro.sim.core import Environment
from repro.sim.resources import QueueFullError
from repro.tpcw.interactions import InteractionCategory
from repro.tpcw.metrics import WipsMeter
from repro.tpcw.mix import MixSampler
from repro.tpcw.navigation import NavigationModel
from repro.tpcw.wirt import WirtTracker
from repro.tpcw.profiles import PROFILES
from repro.tuning.iteration import IterationSpec
from repro.util.rng import RngFactory
from repro.util.stats import RunningStats, percentile

__all__ = ["SimulationBackend"]

#: Per-interaction network round trips (matches the analytic backend).
NETWORK_RTT = 5e-3


class _InteractionError(Exception):
    """A page request was rejected somewhere along the pipeline."""


class _SimCluster:
    """The wired-up simulated cluster for one measurement."""

    def __init__(
        self,
        env: Environment,
        cluster: ClusterSpec,
        configuration: Mapping[str, int],
        ctx: WorkloadContext,
        memory: MemoryModel,
        work_lines: Optional[Mapping[str, tuple[str, ...]]] = None,
    ) -> None:
        self.env = env
        self.ctx = ctx
        self.nodes: dict[str, NodeSim] = {}
        by_role: dict[Role, list[NodeSim]] = {r: [] for r in Role}
        for placement in cluster.placements:
            cfg = cluster.node_config(configuration, placement.node_id)
            role = placement.role
            if role is Role.PROXY:
                model_eval = ProxyModel(placement.spec).evaluate(cfg, ctx)
                sim: NodeSim = ProxyServerSim(
                    env, placement.node_id, placement.spec, cfg, ctx,
                    memory.penalty(model_eval.memory_bytes, placement.spec.memory_bytes),
                    model_eval.memory_bytes,
                )
            elif role is Role.APP:
                app_eval = AppServerModel(placement.spec).evaluate(
                    cfg, ctx, dynamic_pages=1.0, static_requests=1.0
                )
                sim = AppServerSim(
                    env, placement.node_id, placement.spec, cfg, ctx,
                    memory.penalty(app_eval.memory_bytes, placement.spec.memory_bytes),
                    app_eval.memory_bytes,
                )
            else:
                db_eval = DatabaseModel(placement.spec).evaluate(
                    cfg, ctx, dynamic_pages=1.0
                )
                sim = DbServerSim(
                    env, placement.node_id, placement.spec, cfg, ctx,
                    memory.penalty(db_eval.memory_bytes, placement.spec.memory_bytes),
                    db_eval.memory_bytes,
                )
            self.nodes[placement.node_id] = sim
            by_role[role].append(sim)
        self._by_role = by_role
        # Work lines restrict routing; otherwise one global line.
        if work_lines:
            self.lines = {
                line: {
                    role: [self.nodes[n] for n in node_ids
                           if cluster.role_of(n) is role]
                    for role in Role
                }
                for line, node_ids in work_lines.items()
            }
        else:
            self.lines = {"all": by_role}

    def pick(self, line: str, role: Role, rng: np.random.Generator) -> NodeSim:
        """Random uniform node of ``role`` within ``line`` (load balancer)."""
        nodes = self.lines[line][role]
        if len(nodes) == 1:
            return nodes[0]
        return nodes[int(rng.integers(len(nodes)))]


class SimulationBackend(PerformanceBackend):
    """Request-level DES implementation of the backend interface."""

    def __init__(
        self,
        iteration_spec: Optional[IterationSpec] = None,
        time_scale: float = 0.15,
        memory: Optional[MemoryModel] = None,
        navigation: bool = False,
    ) -> None:
        """``navigation=True`` makes each emulated browser follow the TPC-W
        navigation graph (correlated sessions) instead of sampling
        interactions i.i.d.; the long-run mix — and therefore WIPS — is
        identical (same stationary distribution)."""
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        base = iteration_spec or IterationSpec()
        self.spec = base.scaled(time_scale)
        self.memory = memory or MemoryModel()
        self.navigation = navigation
        self._context_cache: dict[tuple, WorkloadContext] = {}
        self._nav_cache: dict[str, NavigationModel] = {}
        #: The WIRT tracker of the most recent measure() call (per-type
        #: response-time percentiles for compliance reports).
        self.last_wirt: Optional[WirtTracker] = None

    def _context(self, scenario: Scenario) -> WorkloadContext:
        # Content-keyed (not ``id()``-keyed): persistent backends outlive
        # their scenarios, and a dead catalog's id can be reused.
        key = (scenario.catalog.fingerprint(), scenario.mix.fingerprint())
        ctx = self._context_cache.get(key)
        if ctx is None:
            ctx = WorkloadContext.for_mix(scenario.mix, scenario.catalog)
            self._context_cache[key] = ctx
        return ctx

    # ------------------------------------------------------------------
    # request flows
    # ------------------------------------------------------------------
    def _static_flow(self, sim: _SimCluster, line: str,
                     proxy: ProxyServerSim, rng: np.random.Generator):
        size = sim.ctx.catalog.object_size(sim.ctx.catalog.sample_object(rng))
        outcome = yield from proxy.serve_static(rng, size)
        if outcome == "miss":
            app: AppServerSim = sim.pick(line, Role.APP, rng)  # type: ignore[assignment]
            yield from app.serve_static(rng, size)
            yield from proxy.relay(rng, size)

    def _interaction_flow(self, sim: _SimCluster, line: str, interaction,
                          rng: np.random.Generator):
        profile = PROFILES[interaction]
        proxy: ProxyServerSim = sim.pick(line, Role.PROXY, rng)  # type: ignore[assignment]
        yield sim.env.timeout(NETWORK_RTT)
        cacheable = rng.random() < profile.page_cacheable
        try:
            served = yield from proxy.accept_page(rng, cacheable)
            if not served:
                app: AppServerSim = sim.pick(line, Role.APP, rng)  # type: ignore[assignment]
                if cacheable:
                    yield from app.serve_static(rng, profile.response_bytes)
                else:
                    db: DbServerSim = sim.pick(line, Role.DB, rng)  # type: ignore[assignment]
                    yield from app.serve_page(
                        rng, profile, lambda: db.run_queries(rng, profile)
                    )
                yield from proxy.relay(rng, profile.response_bytes)
        except QueueFullError as err:
            raise _InteractionError(str(err)) from err
        # Embedded static objects, fetched concurrently.
        n = int(profile.static_objects)
        if rng.random() < profile.static_objects - n:
            n += 1
        if n:
            procs = [
                sim.env.process(self._static_flow(sim, line, proxy, rng))
                for _ in range(n)
            ]
            for proc in procs:
                try:
                    yield proc
                except QueueFullError:
                    pass  # a lost image degrades but does not fail the page

    def _navigation(self, scenario: Scenario) -> NavigationModel:
        nav = self._nav_cache.get(scenario.mix.name)
        if nav is None:
            nav = NavigationModel(scenario.mix)
            self._nav_cache[scenario.mix.name] = nav
        return nav

    def _browser(self, sim: _SimCluster, line: str, scenario: Scenario,
                 sampler: MixSampler, rng: np.random.Generator,
                 meter: WipsMeter, latency: RunningStats,
                 latency_samples: list, wirt: WirtTracker):
        env = sim.env
        behavior = scenario.behavior
        nav = self._navigation(scenario) if self.navigation else None
        interaction = sampler.sample(rng)
        while True:
            yield env.timeout(behavior.next_think_time(rng))
            if nav is not None:
                interaction = nav.next_interaction(interaction, rng)
            else:
                interaction = sampler.sample(rng)
            start = env.now
            try:
                yield env.process(
                    self._interaction_flow(sim, line, interaction, rng)
                )
            except _InteractionError:
                meter.record_error()
                continue
            if meter.window_open:
                latency.add(env.now - start)
                latency_samples.append(env.now - start)
                wirt.record(interaction, env.now - start)
            meter.record_completion(interaction)

    # ------------------------------------------------------------------
    def measure(
        self,
        scenario: Scenario,
        configuration: Configuration,
        seed: int = 0,
    ) -> Measurement:
        """Simulate one measurement iteration (see the class docstring)."""
        ctx = self._context(scenario)
        env = Environment()
        sim = _SimCluster(
            env,
            scenario.cluster,
            configuration,
            ctx,
            self.memory,
            scenario.work_lines,
        )
        rngs = RngFactory(seed).child("des")
        sampler = MixSampler(scenario.mix)

        lines = sorted(sim.lines)
        meters = {line: WipsMeter() for line in lines}
        latency = RunningStats()
        latency_samples: list[float] = []
        wirt = WirtTracker()
        share = scenario.population // len(lines)
        remainder = scenario.population - share * len(lines)
        for li, line in enumerate(lines):
            count = share + (1 if li < remainder else 0)
            for b in range(count):
                env.process(
                    self._browser(
                        sim, line, scenario, sampler,
                        rngs.get("browser", line, b),
                        meters[line], latency, latency_samples, wirt,
                    )
                )

        env.run(until=self.spec.warmup)
        for node in sim.nodes.values():
            node.reset_stats()
        for meter in meters.values():
            meter.open_window(env.now)
        measure_end = self.spec.warmup + self.spec.measure
        env.run(until=measure_end)
        for meter in meters.values():
            meter.close_window(env.now)
        duration = self.spec.measure

        utilization: dict[str, ResourceUtilization] = {}
        diagnostics: dict[str, float] = {}
        for node_id, node in sim.nodes.items():
            utilization[node_id] = ResourceUtilization(
                cpu=node.cpu.utilization(measure_end),
                disk=node.disk.utilization(measure_end),
                network=min(
                    node.nic_bytes / duration / node.spec.nic_rate, 1.0
                ),
                memory=node.memory_bytes / node.spec.memory_bytes,
            )
            diagnostics[f"{node_id}.jobs"] = (
                node.cpu.busy_stats.mean(measure_end)
                + node.cpu.queue_stats.mean(measure_end)
            )
            diagnostics[f"{node_id}.memory_penalty"] = node.memory_penalty
        for node in sim.nodes.values():
            if isinstance(node, AppServerSim):
                diagnostics[f"{node.node_id}.http.rejected"] = float(
                    node.http_pool.rejected
                )
            if isinstance(node, DbServerSim):
                diagnostics[f"{node.node_id}.dbconn.rejected"] = float(
                    node.conn_pool.rejected
                )

        total_completed = sum(m.completed for m in meters.values())
        total_errors = sum(m.errors for m in meters.values())
        wips = total_completed / duration
        # Secondary TPC-W metrics: per-category throughput (WIPSb-/WIPSo-
        # style) and response-time percentiles.
        for category in InteractionCategory:
            rate = sum(m.category_rate(category) for m in meters.values())
            diagnostics[f"wips_{category.value}"] = rate
        if latency_samples:
            diagnostics["rt_p50"] = percentile(latency_samples, 50)
            diagnostics["rt_p95"] = percentile(latency_samples, 95)
        # TPC-W WIRT compliance (clause 5.2): a valid WIPS number requires
        # every interaction type's p90 under its limit.
        diagnostics["wirt_compliant"] = 1.0 if wirt.compliant() else 0.0
        self.last_wirt = wirt
        attempted = total_completed + total_errors
        per_line = (
            {line: m.completed / duration for line, m in meters.items()}
            if scenario.work_lines
            else {}
        )
        return Measurement(
            wips=wips,
            raw_wips=wips,
            error_rate=total_errors / attempted if attempted else 0.0,
            response_time=latency.mean,
            utilization=utilization,
            diagnostics=diagnostics,
            per_line_wips=per_line,
        )
