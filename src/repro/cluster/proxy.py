"""Squid-like proxy-server performance model (tier 1).

The proxy serves static objects from a two-level cache (memory, then disk)
and relays everything else to the application tier.  The Table 3 parameters
map to mechanisms as follows:

``cache_mem``
    Memory-cache capacity (MB).  More memory means a larger fraction of
    static requests served without disk access — the dominant win for the
    browsing mix.
``maximum_object_size_in_memory`` / ``minimum_object_size`` /
``maximum_object_size``
    Admission bounds (KB) for the memory and disk caches; objects outside
    the bounds bypass the cache and are fetched from the application tier.
``store_objects_per_bucket``
    Average hash-chain length of the store index.  Longer chains mean more
    comparisons per lookup (CPU) but a smaller bucket table (memory).
``cache_swap_low`` / ``cache_swap_high``
    Disk-cache eviction watermarks.  As the paper found empirically, these
    "do not impact the overall system performance"; the model charges only
    a tiny eviction-churn disk cost when the hysteresis band is very narrow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.cluster.context import WorkloadContext
from repro.cluster.node import NodeSpec
from repro.util.units import GB, KB, MB

__all__ = ["ProxyEvaluation", "ProxyModel"]


@dataclass(frozen=True)
class ProxyEvaluation:
    """Per-interaction demands a proxy node generates under a workload."""

    #: CPU seconds per interaction on this node.
    cpu_demand: float
    #: Disk seconds per interaction on this node.
    disk_demand: float
    #: Bytes through this node's NIC per interaction (in + out).
    nic_bytes: float
    #: Resident memory, bytes.
    memory_bytes: float
    #: Expected *page* requests forwarded to the application tier, per
    #: interaction (dynamic pages plus cacheable-page misses).
    forward_pages: float
    #: Of those, pages that are truly dynamic (reach the servlet + database).
    forward_dynamic: float
    #: Expected static sub-requests forwarded to the application tier
    #: (cache-miss objects; cacheable-page misses are folded in here too
    #: since the app serves both from files without database work).
    forward_static: float
    #: Memory-cache hit fraction over static requests (diagnostic).
    mem_hit: float
    #: Disk-cache hit fraction over static requests (diagnostic).
    disk_hit: float


class ProxyModel:
    """Translate a Squid configuration into resource demands."""

    # Reference-machine costs (seconds / bytes); see module docstring.
    PARSE_CPU = 0.25e-3  # HTTP parse + ACL check per request
    SCAN_CPU_PER_OBJECT = 0.8e-6  # one hash-chain comparison
    LOOKUP_BASE_CPU = 0.02e-3
    MEM_COPY_RATE = 800 * MB  # memory-to-socket copy bandwidth
    DISK_HIT_CPU = 0.10e-3
    FORWARD_CPU = 0.40e-3  # relay a request/response to the app tier
    BASE_MEMORY = 36 * MB
    DISK_CACHE_BYTES = 10 * GB
    INDEX_ENTRY_BYTES = 76  # StoreEntry + hash link
    BUCKET_BYTES = 64
    CONNECTION_BUFFER = 32 * KB
    #: Fraction of static requests that target a tiny always-hot set of
    #: shared page furniture (logos, buttons, style sheets) which fits in
    #: any memory cache; the rest follow the item-catalog popularity curve.
    ALWAYS_HOT_FRACTION = 0.35
    #: Probability a disk-cache hit causes physical I/O (the OS page cache
    #: absorbs the rest of the re-reads of recently-touched spool files).
    DISK_HIT_IO_PROB = 0.55
    EVICTION_CHURN_DISK = 0.01e-3  # extra disk s/req when watermarks touch

    def __init__(self, node: NodeSpec) -> None:
        self.node = node

    def evaluate(
        self,
        cfg: Mapping[str, int],
        ctx: WorkloadContext,
        concurrency: float = 8.0,
    ) -> ProxyEvaluation:
        """Demands per interaction under configuration ``cfg``.

        ``concurrency`` is the solver's estimate of simultaneous in-flight
        requests at this node (sizes the connection buffers).
        """
        return self.partial(cfg, ctx)(concurrency)

    def partial(self, cfg: Mapping[str, int], ctx: WorkloadContext):
        """Partially evaluate ``cfg``: returns ``concurrency → evaluation``.

        Only the connection buffers depend on the concurrency estimate, so
        a solver iterating concurrency (the analytic backend's outer fixed
        point) can pay the cache-model work once per configuration.  The
        returned callable performs the remaining operations exactly as
        :meth:`evaluate` always has — results are bit-identical.
        """
        profile = ctx.profile
        cache_mem_bytes = cfg["cache_mem"] * MB
        min_obj = cfg["minimum_object_size"] * KB
        max_obj_disk = cfg["maximum_object_size"] * KB
        max_obj_mem = min(cfg["maximum_object_size_in_memory"] * KB, max_obj_disk)

        # --- hit fractions over static requests --------------------------
        # ``minimum_object_size`` gates only the *disk* cache (as in Squid):
        # tiny objects still live in the memory cache, which is why the
        # paper could raise the minimum without hurting performance.
        catalog_mem_hit = ctx.catalog.hit_fraction(cache_mem_bytes, 0.0, max_obj_mem)
        catalog_disk_hit = ctx.catalog.hit_fraction(
            self.DISK_CACHE_BYTES, min_obj, max_obj_disk
        )
        hot = self.ALWAYS_HOT_FRACTION
        # The two cache levels each retain the most popular objects of their
        # admissible sets, so the combined coverage is the larger of the two
        # (the memory set is essentially a subset of the much larger disk
        # set whenever both admit an object).
        catalog_union = max(catalog_mem_hit, catalog_disk_hit)
        mem_hit = hot + (1.0 - hot) * catalog_mem_hit
        total_hit = hot + (1.0 - hot) * catalog_union
        disk_hit = max(0.0, total_hit - mem_hit)
        miss = max(0.0, 1.0 - mem_hit - disk_hit)

        # --- request counts per interaction ------------------------------
        statics = profile.static_objects
        # Cacheable pages behave like popular static objects; dynamic pages
        # always forward and reach the servlet (and possibly the database).
        page_hit = profile.page_cacheable * (mem_hit + disk_hit)
        forward_dynamic = 1.0 - profile.page_cacheable
        forward_static_pages = profile.page_cacheable - page_hit
        forward_pages = forward_dynamic + forward_static_pages
        forward_static = statics * miss
        mean_obj = ctx.catalog.mean_object_bytes()

        # --- CPU ----------------------------------------------------------
        requests = statics + 1.0
        lookup_cpu = (
            self.LOOKUP_BASE_CPU
            + self.SCAN_CPU_PER_OBJECT * cfg["store_objects_per_bucket"] / 2.0
        )
        cpu = requests * (self.PARSE_CPU + lookup_cpu)
        served_bytes = (
            statics * (mem_hit + disk_hit) * mean_obj + page_hit * profile.response_bytes
        )
        cpu += served_bytes / self.MEM_COPY_RATE
        cpu += statics * disk_hit * self.DISK_HIT_CPU
        cpu += (forward_pages + forward_static) * self.FORWARD_CPU
        # Relayed responses are copied through the proxy too.
        relayed_bytes = forward_pages * profile.response_bytes + forward_static * mean_obj
        cpu += relayed_bytes / self.MEM_COPY_RATE
        cpu = self.node.cpu_seconds(cpu)

        # --- disk -----------------------------------------------------------
        disk = (
            statics
            * disk_hit
            * self.DISK_HIT_IO_PROB
            * self.node.disk_seconds(mean_obj, accesses=1.0)
        )
        # Cache fills: misses for admissible objects are written to disk.
        admissible_miss = max(0.0, catalog_disk_hit - catalog_mem_hit) * 0.05
        disk += statics * admissible_miss * self.node.disk_seconds(mean_obj, accesses=0.5)
        low, high = cfg["cache_swap_low"], cfg["cache_swap_high"]
        if high - low < 2:  # watermarks touching: continuous eviction churn
            disk += requests * self.EVICTION_CHURN_DISK
        disk = disk  # disk_seconds already absolute

        # --- NIC -----------------------------------------------------------
        response_total = statics * mean_obj + profile.response_bytes
        request_overhead = requests * 600.0  # headers in
        nic = response_total + request_overhead + relayed_bytes  # in from app + out

        # --- memory ----------------------------------------------------------
        cached_objects = min(
            ctx.catalog.num_objects,
            self.DISK_CACHE_BYTES / max(mean_obj, 1.0),
        )
        buckets = cached_objects / max(cfg["store_objects_per_bucket"], 1)
        # The concurrency-dependent connection buffers are the final
        # addition, so hoisting this prefix preserves the sum bit for bit.
        memory_base = (
            self.BASE_MEMORY
            + cache_mem_bytes
            + cached_objects * self.INDEX_ENTRY_BYTES
            + buckets * self.BUCKET_BYTES
        )
        connection_buffer = self.CONNECTION_BUFFER
        forward_static_total = forward_static + forward_static_pages

        def build(concurrency: float = 8.0) -> ProxyEvaluation:
            return ProxyEvaluation(
                cpu_demand=cpu,
                disk_demand=disk,
                nic_bytes=nic,
                memory_bytes=memory_base + concurrency * connection_buffer,
                forward_pages=forward_pages,
                forward_dynamic=forward_dynamic,
                forward_static=forward_static_total,
                mem_hit=mem_hit,
                disk_hit=disk_hit,
            )

        return build
