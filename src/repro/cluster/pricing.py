"""Dollars/WIPS — TPC-W's price-performance metric.

"The two primary performance metrics of the TPC-W benchmark are the number
of Web Interaction Per Second (WIPS), and a price performance metric
defined as Dollars/WIPS" (§II.C), and the paper's introduction lists
cost-effectiveness among the requirements a cluster-based design serves.

:class:`PricingModel` prices a cluster from era-appropriate commodity costs
(the paper's testbed is all open-source software on commodity dual-Athlon
boxes, so hardware dominates) and computes $/WIPS for a measured
throughput.  The :mod:`repro.experiments.price_performance` driver uses it
to ask the capacity-planning question the metric exists for: which tier
layout serves a workload at the lowest cost per interaction?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.node import NodeSpec
from repro.cluster.topology import ClusterSpec
from repro.util.units import GB

__all__ = ["PricingModel"]


@dataclass(frozen=True)
class PricingModel:
    """Cluster cost model (2003-era commodity prices, US dollars).

    ``base_node_cost`` covers chassis, board and one CPU; additional cores
    and memory are priced separately so heterogeneous
    :class:`~repro.cluster.node.NodeSpec` values price correctly.
    ``network_port_cost`` covers the switch share per machine, and
    ``maintenance_factor`` folds the TPC-style 3-year maintenance contract
    into the sticker price.  All the paper's software is open source —
    software cost is zero, one of the paper's selling points.
    """

    base_node_cost: float = 1400.0
    per_core_cost: float = 350.0
    per_gb_memory_cost: float = 400.0
    disk_cost: float = 200.0
    network_port_cost: float = 150.0
    maintenance_factor: float = 1.15

    def __post_init__(self) -> None:
        for name in (
            "base_node_cost",
            "per_core_cost",
            "per_gb_memory_cost",
            "disk_cost",
            "network_port_cost",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.maintenance_factor < 1.0:
            raise ValueError("maintenance_factor must be >= 1")

    def node_cost(self, spec: NodeSpec) -> float:
        """Price of one machine with the given hardware."""
        hardware = (
            self.base_node_cost
            + spec.cpu_cores * self.per_core_cost * spec.cpu_speed
            + (spec.memory_bytes / GB) * self.per_gb_memory_cost
            + self.disk_cost
            + self.network_port_cost
        )
        return hardware * self.maintenance_factor

    def cluster_cost(self, cluster: ClusterSpec) -> float:
        """Total price of every machine in the cluster."""
        return sum(self.node_cost(p.spec) for p in cluster.placements)

    def dollars_per_wips(self, cluster: ClusterSpec, wips: float) -> float:
        """TPC-W's price-performance metric for a measured throughput."""
        if wips <= 0:
            raise ValueError(f"wips must be positive, got {wips}")
        return self.cluster_cost(cluster) / wips
