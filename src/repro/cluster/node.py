"""Node hardware and server roles.

One :class:`NodeSpec` mirrors the paper's Table 2 machine: dual AMD Athlon
1.67 GHz, 1 GB memory, 100 Mbps Ethernet, one commodity disk.  All nodes in
the paper's cluster are homogeneous; heterogeneous specs are supported but
the duplication tuning scheme requires homogeneity within a tier (its
stated assumption).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.units import GB, MB

__all__ = ["Role", "NodeSpec", "DEFAULT_NODE"]


class Role(enum.Enum):
    """Which tier a node serves: proxy (tier 1), app (tier 2), db (tier 3)."""

    PROXY = "proxy"
    APP = "app"
    DB = "db"


@dataclass(frozen=True)
class NodeSpec:
    """Hardware capacities of one cluster machine."""

    #: Number of CPU cores (the paper's machines are dual-processor).
    cpu_cores: int = 2
    #: Relative per-core speed (1.0 = the paper's 1.67 GHz Athlon).
    cpu_speed: float = 1.0
    #: Physical memory, bytes.
    memory_bytes: float = 1 * GB
    #: Average disk access (seek + rotational) time, seconds.
    disk_access_time: float = 6e-3
    #: Sequential disk transfer rate, bytes/second.
    disk_transfer_rate: float = 40 * MB
    #: NIC line rate, bytes/second (100 Mbps full duplex).
    nic_rate: float = 100e6 / 8.0

    def __post_init__(self) -> None:
        if self.cpu_cores < 1:
            raise ValueError("cpu_cores must be >= 1")
        for field_name in (
            "cpu_speed",
            "memory_bytes",
            "disk_access_time",
            "disk_transfer_rate",
            "nic_rate",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")

    def cpu_seconds(self, reference_seconds: float) -> float:
        """Scale a reference-machine CPU time to this node's core speed."""
        return reference_seconds / self.cpu_speed

    def disk_seconds(self, transfer_bytes: float, accesses: float = 1.0) -> float:
        """Time for ``accesses`` random accesses transferring ``transfer_bytes``."""
        if transfer_bytes < 0 or accesses < 0:
            raise ValueError("disk work must be non-negative")
        return accesses * self.disk_access_time + transfer_bytes / self.disk_transfer_rate

    def nic_seconds(self, transfer_bytes: float) -> float:
        """Wire time for ``transfer_bytes`` through the NIC."""
        if transfer_bytes < 0:
            raise ValueError("transfer_bytes must be non-negative")
        return transfer_bytes / self.nic_rate


#: The paper's Table 2 machine.
DEFAULT_NODE = NodeSpec()
