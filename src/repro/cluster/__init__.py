"""The system under test: a simulated cluster-based three-tier web service.

The paper's testbed (Table 2) is 10 dual-Athlon Linux machines running Squid
(proxy tier), Tomcat (application tier) and MySQL (database tier).  This
package models that substrate:

* :mod:`repro.cluster.params` — the 23 tunable parameters of the paper's
  Table 3, with the paper's default values and tuning ranges,
* :mod:`repro.cluster.node` — node hardware (CPU, memory, disk, NIC),
* :mod:`repro.cluster.memory` — memory accounting and the swap-pressure
  penalty that makes extreme configurations behave poorly,
* :mod:`repro.cluster.proxy` / :mod:`appserver` / :mod:`database` —
  parametric performance models of Squid / Tomcat / MySQL,
* :mod:`repro.cluster.topology` — tier layout, the cluster-wide parameter
  space (``"<node>.<param>"`` names) and the reconfiguration operation
  (moving a node between tiers) used by §IV.
"""

from repro.cluster.appserver import AppServerModel
from repro.cluster.database import DatabaseModel
from repro.cluster.memory import MemoryModel
from repro.cluster.node import NodeSpec, Role
from repro.cluster.params import (
    APP_PARAMS,
    DB_PARAMS,
    PROXY_PARAMS,
    params_for_role,
    space_for_role,
)
from repro.cluster.pricing import PricingModel
from repro.cluster.proxy import ProxyModel
from repro.cluster.topology import ClusterSpec, NodePlacement

__all__ = [
    "NodeSpec",
    "Role",
    "PROXY_PARAMS",
    "APP_PARAMS",
    "DB_PARAMS",
    "params_for_role",
    "space_for_role",
    "MemoryModel",
    "PricingModel",
    "ProxyModel",
    "AppServerModel",
    "DatabaseModel",
    "ClusterSpec",
    "NodePlacement",
]
