"""Cluster topology: tiers, the cluster-wide parameter space, reconfiguration.

A :class:`ClusterSpec` is an immutable assignment of nodes to tiers.  Its
full parameter space namespaces each node's role parameters as
``"<node_id>.<param>"`` — the format the scaling schemes of
:mod:`repro.harmony.scaling` expect.  §IV's reconfiguration operation —
"reconfigure node B to run the same server process as node A" — is
:meth:`ClusterSpec.move_node`, which returns a new spec with the node
re-rolled (node ids are stable labels and survive moves).
"""

from __future__ import annotations

from dataclasses import astuple, dataclass
from typing import Mapping, Sequence

from repro.cluster.node import DEFAULT_NODE, NodeSpec, Role
from repro.cluster.params import constraints_for_role, params_for_role
from repro.harmony.constraints import ConstraintSet
from repro.harmony.parameter import Configuration, ParameterSpace

__all__ = ["NodePlacement", "ClusterSpec"]


@dataclass(frozen=True)
class NodePlacement:
    """One node: a stable id, its current tier role, and its hardware."""

    node_id: str
    role: Role
    spec: NodeSpec = DEFAULT_NODE

    def __post_init__(self) -> None:
        if not self.node_id or "." in self.node_id:
            raise ValueError(
                f"node_id must be non-empty and contain no '.', got {self.node_id!r}"
            )


class ClusterSpec:
    """An immutable cluster layout (who serves which tier)."""

    def __init__(self, placements: Sequence[NodePlacement], name: str = "cluster") -> None:
        ids = [p.node_id for p in placements]
        if len(set(ids)) != len(ids):
            dupes = sorted({i for i in ids if ids.count(i) > 1})
            raise ValueError(f"duplicate node ids: {dupes}")
        for role in Role:
            if not any(p.role is role for p in placements):
                raise ValueError(f"cluster needs at least one {role.value} node")
        self.name = name
        self._placements: tuple[NodePlacement, ...] = tuple(placements)
        self._by_id = {p.node_id: p for p in self._placements}

    @classmethod
    def three_tier(
        cls,
        n_proxy: int = 1,
        n_app: int = 1,
        n_db: int = 1,
        spec: NodeSpec = DEFAULT_NODE,
        name: str = "cluster",
    ) -> "ClusterSpec":
        """A homogeneous cluster with the given tier sizes."""
        placements = (
            [NodePlacement(f"proxy{i}", Role.PROXY, spec) for i in range(n_proxy)]
            + [NodePlacement(f"app{i}", Role.APP, spec) for i in range(n_app)]
            + [NodePlacement(f"db{i}", Role.DB, spec) for i in range(n_db)]
        )
        return cls(placements, name=name)

    @classmethod
    def wide(
        cls,
        n_proxy: int = 64,
        n_app: int = 128,
        n_db: int = 16,
        spec: NodeSpec = DEFAULT_NODE,
        name: str = "wide",
    ) -> "ClusterSpec":
        """A production-width homogeneous cluster (64/128/16 by default).

        Identical in shape to :meth:`three_tier` — it exists as the named
        entry point for the scale axis: wide clusters are what the
        hierarchical solver (:mod:`repro.model.hierarchy`) collapses to
        one representative station per tier, so a 64/128/16 topology
        solves at the cost of a 1/1/1 one.
        """
        return cls.three_tier(n_proxy, n_app, n_db, spec=spec, name=name)

    # -- introspection ------------------------------------------------------
    def fingerprint(self) -> tuple:
        """Content identity of the layout (for measurement caching).

        Covers everything that affects performance — node ids, roles and
        hardware — but not the display name; two clusters with identical
        placements fingerprint identically however they were built.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is None:
            cached = tuple(
                (p.node_id, p.role.value, astuple(p.spec))
                for p in self._placements
            )
            self._fingerprint = cached
        return cached

    @property
    def placements(self) -> tuple[NodePlacement, ...]:
        """All node placements."""
        return self._placements

    @property
    def node_ids(self) -> list[str]:
        """All node ids, in placement order."""
        return [p.node_id for p in self._placements]

    @property
    def num_nodes(self) -> int:
        """Total node count."""
        return len(self._placements)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._by_id

    def placement(self, node_id: str) -> NodePlacement:
        """The placement of one node."""
        try:
            return self._by_id[node_id]
        except KeyError:
            raise KeyError(f"unknown node {node_id!r}") from None

    def role_of(self, node_id: str) -> Role:
        """The tier a node currently serves (the paper's ``Tier(i)``)."""
        return self.placement(node_id).role

    def nodes_in(self, role: Role) -> list[str]:
        """Node ids serving ``role``, in placement order."""
        return [p.node_id for p in self._placements if p.role is role]

    def tier_size(self, role: Role) -> int:
        """The paper's ``M(t)``: number of nodes in tier ``t``."""
        return len(self.nodes_in(role))

    def tiers(self) -> dict[str, list[str]]:
        """Role-name → node ids (the shape the scaling schemes take)."""
        return {role.value: self.nodes_in(role) for role in Role}

    def replica_groups(self) -> dict[str, list[str]]:
        """Hardware-homogeneous replica groups, keyed by representative.

        Nodes sharing a role *and* a hardware spec form one group; the
        representative is the first member in placement order.  This is
        the topology-level half of hierarchical aggregation — whether the
        group actually collapses also depends on the members sharing a
        configuration slice (see
        :func:`repro.model.hierarchy.aggregation_plan`).
        """
        groups: dict[tuple, list[str]] = {}
        for p in self._placements:
            groups.setdefault((p.role.value, astuple(p.spec)), []).append(
                p.node_id
            )
        return {members[0]: members for members in groups.values()}

    # -- parameter space -------------------------------------------------------
    def full_space(self) -> ParameterSpace:
        """Every node's role parameters, namespaced ``"<node>.<param>"``.

        Cached: the layout is immutable and wide clusters make this union
        expensive (hundreds of nodes × a dozen parameters), while hot
        paths — ``extremeness()`` per measurement — ask for it per call.
        """
        cached = getattr(self, "_full_space", None)
        if cached is None:
            space: ParameterSpace | None = None
            for p in self._placements:
                node_space = ParameterSpace(
                    list(params_for_role(p.role))
                ).prefixed(f"{p.node_id}.")
                space = node_space if space is None else space.union(node_space)
            assert space is not None
            cached = self._full_space = space
        return cached

    def default_configuration(self) -> Configuration:
        """The paper's "Default config." across all nodes."""
        return self.full_space().default_configuration()

    def full_constraints(self) -> ConstraintSet:
        """Every node's role constraints, namespaced like the full space."""
        merged = ConstraintSet()
        for p in self._placements:
            merged = merged.merge(
                constraints_for_role(p.role).prefixed(f"{p.node_id}.")
            )
        return merged

    def node_config(
        self, full_config: Mapping[str, int], node_id: str
    ) -> dict[str, int]:
        """Extract one node's un-namespaced parameter values."""
        if node_id not in self._by_id:
            raise KeyError(f"unknown node {node_id!r}")
        prefix = f"{node_id}."
        out = {
            name[len(prefix):]: value
            for name, value in full_config.items()
            if name.startswith(prefix)
        }
        expected = {p.name for p in params_for_role(self.role_of(node_id))}
        missing = expected - set(out)
        if missing:
            raise ValueError(
                f"configuration missing parameters for {node_id!r}: {sorted(missing)}"
            )
        return out

    # -- reconfiguration ---------------------------------------------------------
    def move_node(self, node_id: str, new_role: Role) -> "ClusterSpec":
        """Re-role a node (the §IV reconfiguration step 5).

        The vacated tier must keep at least one node — the algorithm's
        constraint (b) ``M(Tier(k)) > 1``.
        """
        placement = self.placement(node_id)
        if placement.role is new_role:
            raise ValueError(f"{node_id!r} already serves {new_role.value}")
        if self.tier_size(placement.role) <= 1:
            raise ValueError(
                f"cannot move {node_id!r}: it is the last {placement.role.value} node"
            )
        new_placements = [
            NodePlacement(p.node_id, new_role, p.spec) if p.node_id == node_id else p
            for p in self._placements
        ]
        return ClusterSpec(new_placements, name=self.name)

    def move_nodes(
        self, node_ids: Sequence[str], new_role: Role
    ) -> "ClusterSpec":
        """Re-role a batch of nodes in one step (tier-group reconfiguration).

        The wide-topology analogue of :meth:`move_node`: on a 128-node app
        tier the §IV controller shifts *groups* of replicas between tiers,
        and validating/rebuilding the spec once per group instead of once
        per node keeps the operation O(cluster).  Every vacated tier must
        keep at least one node after the whole batch moves.
        """
        moving = set(node_ids)
        if len(moving) != len(node_ids):
            raise ValueError("duplicate node ids in move batch")
        vacated: dict[Role, int] = {}
        for node_id in node_ids:
            role = self.placement(node_id).role
            if role is new_role:
                raise ValueError(f"{node_id!r} already serves {new_role.value}")
            vacated[role] = vacated.get(role, 0) + 1
        for role, count in vacated.items():
            if self.tier_size(role) - count < 1:
                raise ValueError(
                    f"cannot move {sorted(moving)}: the {role.value} tier "
                    f"would be left empty"
                )
        new_placements = [
            NodePlacement(p.node_id, new_role, p.spec)
            if p.node_id in moving
            else p
            for p in self._placements
        ]
        return ClusterSpec(new_placements, name=self.name)

    def work_lines(self, count: int) -> dict[str, list[str]]:
        """Partition nodes into ``count`` work lines (§III.B).

        Each line gets at least one node from every tier (the scheme's
        validity condition); nodes are dealt round-robin within each tier.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        for role in Role:
            if self.tier_size(role) < count:
                raise ValueError(
                    f"cannot form {count} work lines: only "
                    f"{self.tier_size(role)} {role.value} node(s)"
                )
        lines: dict[str, list[str]] = {f"line{i}": [] for i in range(count)}
        for role in Role:
            for i, node_id in enumerate(self.nodes_in(role)):
                lines[f"line{i % count}"].append(node_id)
        return lines

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{role.value}={self.tier_size(role)}" for role in Role
        )
        return f"ClusterSpec({self.name!r}, {parts})"
