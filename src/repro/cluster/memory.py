"""Memory accounting and the swap-pressure penalty.

The paper observed that "the system often performs poorly when using a
configuration with parameters with extreme values" (§III.A).  The physical
mechanism on a 1 GB machine is memory: caches, thread stacks and per-
connection buffers are all tunable upward, and once their resident sum
approaches physical memory the OS starts paging and every service time
inflates sharply.  :class:`MemoryModel` captures that: below a pressure
threshold the penalty factor is exactly 1.0; above it the factor grows
quadratically, and past physical memory it keeps growing steeply.

This single mechanism is what gives the tuning problem its structure — more
cache / more threads / bigger buffers always help *locally*, so without the
memory ceiling the optimizer would pin every parameter at its maximum.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MemoryModel"]


@dataclass(frozen=True)
class MemoryModel:
    """Swap-pressure penalty for one node.

    Parameters
    ----------
    pressure_threshold:
        Fraction of physical memory that can be used penalty-free (the OS
        needs the rest for the page cache and kernel structures).
    swap_slope:
        Penalty factor reached when resident memory equals physical memory;
        the factor is ``1 + (swap_slope - 1) * x**2`` where ``x`` is how far
        into the pressure band usage has grown (x=1 at physical memory), and
        continues quadratically beyond.
    """

    pressure_threshold: float = 0.85
    swap_slope: float = 4.0

    def __post_init__(self) -> None:
        if not 0.0 < self.pressure_threshold < 1.0:
            raise ValueError("pressure_threshold must be in (0, 1)")
        if self.swap_slope <= 1.0:
            raise ValueError("swap_slope must exceed 1")

    def penalty(self, used_bytes: float, capacity_bytes: float) -> float:
        """Service-time inflation factor for a node at this memory usage."""
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if used_bytes < 0:
            raise ValueError("usage must be non-negative")
        free_band = (1.0 - self.pressure_threshold) * capacity_bytes
        over = used_bytes - self.pressure_threshold * capacity_bytes
        if over <= 0.0:
            return 1.0
        x = over / free_band  # x = 1 exactly at physical memory
        return 1.0 + (self.swap_slope - 1.0) * x * x

    def headroom(self, used_bytes: float, capacity_bytes: float) -> float:
        """Bytes left before the penalty starts (negative when inside it)."""
        return self.pressure_threshold * capacity_bytes - used_bytes
