"""Tomcat-like application-server performance model (tier 2).

The application server runs two connector thread pools — the HTTP connector
(``minProcessors`` / ``maxProcessors`` / ``acceptCount`` / ``bufferSize``)
which fronts every request reaching the tier, and the AJP connector
(``AJPminProcessors`` / ``AJPmaxProcessors`` / ``AJPacceptCount``) which
executes the servlets for dynamic pages — plus static-file service for
proxy cache misses.

Parameter → mechanism map:

``maxProcessors`` / ``AJPmaxProcessors``
    Concurrency caps.  A thread is held for a request's *whole* residence in
    the tier and below it (servlet CPU plus database round trips), so the
    ordering mix — whose transactions park threads on long database
    operations — needs far larger pools than browsing, exactly the paper's
    Table 3 outcome.  Each configured thread costs resident memory.
``minProcessors``
    Pre-spawned threads.  When offered concurrency exceeds the warm pool,
    new threads must be spawned; the expected spawn cost scales with the
    workload's burstiness (browsing churns, ordering doesn't).
``acceptCount`` / ``AJPacceptCount``
    Backlog sizes.  Requests arriving when all threads are busy and the
    backlog is full are rejected (TPC-W counts them as failed interactions).
``bufferSize``
    Response write-buffer: a response of *b* bytes costs
    ``ceil(b / bufferSize)`` write syscalls.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.cluster.context import WorkloadContext
from repro.cluster.node import NodeSpec
from repro.util.units import KB, MB

__all__ = ["AppServerEvaluation", "AppServerModel"]


@dataclass(frozen=True)
class AppServerEvaluation:
    """Per-interaction demands an application node generates.

    Demands are normalized per *interaction entering the whole system*;
    the caller scales by the fraction of traffic routed to this node.
    ``dynamic_pages`` / ``static_requests`` echo the per-interaction visit
    counts this evaluation assumed (set by the proxy tier's forwarding).
    """

    cpu_demand: float
    disk_demand: float
    nic_bytes: float
    memory_bytes: float
    dynamic_pages: float
    static_requests: float
    #: HTTP pool: (threads, backlog).
    http_pool: tuple[int, int]
    #: AJP pool: (threads, backlog).
    ajp_pool: tuple[int, int]
    #: Expected thread-spawn events per interaction (diagnostic).
    spawn_rate: float


class AppServerModel:
    """Translate a Tomcat configuration into resource demands."""

    PARSE_CPU = 0.30e-3  # HTTP parse + dispatch
    STATIC_SERVE_CPU = 0.35e-3  # static file from OS page cache
    STATIC_DISK_ACCESS_PROB = 0.03  # page-cache miss probability
    AJP_RELAY_CPU = 0.20e-3  # HTTP->AJP handoff per dynamic page
    WRITE_SYSCALL_CPU = 0.018e-3  # one response write() call
    SPAWN_CPU = 1.6e-3  # create + warm a connector thread
    CONTEXT_SWITCH_COEF = 0.0012  # service inflation per runnable thread > cores
    FILE_COPY_RATE = 500 * MB

    JVM_BASE_MEMORY = 190 * MB
    HTTP_THREAD_MEMORY = 384 * KB  # stack + connection state, resident
    AJP_THREAD_MEMORY = 320 * KB

    def __init__(self, node: NodeSpec) -> None:
        self.node = node

    def evaluate(
        self,
        cfg: Mapping[str, int],
        ctx: WorkloadContext,
        dynamic_pages: float,
        static_requests: float,
        concurrency: float = 8.0,
    ) -> AppServerEvaluation:
        """Demands per interaction for the given per-interaction visits.

        ``dynamic_pages`` and ``static_requests`` come from the proxy tier's
        forwarding fractions; ``concurrency`` is the solver's estimate of
        simultaneous in-flight requests at this node.
        """
        return self.partial(cfg, ctx, dynamic_pages, static_requests)(
            concurrency
        )

    def partial(
        self,
        cfg: Mapping[str, int],
        ctx: WorkloadContext,
        dynamic_pages: float,
        static_requests: float,
    ):
        """Partially evaluate ``cfg``: returns ``concurrency → evaluation``.

        Concurrency drives only thread churn and the context-switch
        inflation; everything else — static service, memory, the pools —
        is fixed per configuration, and the forwarding visits themselves
        never depend on concurrency.  The returned callable finishes the
        CPU accumulation exactly where :meth:`evaluate` always has (the
        spawn term is the final addend before the context-switch factor),
        so results are bit-identical.
        """
        if dynamic_pages < 0 or static_requests < 0:
            raise ValueError("visit counts must be non-negative")
        profile = ctx.profile
        mean_obj = ctx.catalog.mean_object_bytes()
        requests = dynamic_pages + static_requests

        # --- thread churn (minProcessors) ---------------------------------
        warm = float(cfg["minProcessors"])
        burstiness = ctx.burstiness

        # --- CPU -------------------------------------------------------------
        # ``profile.app_cpu`` is already the unconditional per-interaction
        # expectation (see :func:`repro.tpcw.mix.expected_profile`); the
        # visit-count terms use the explicit per-interaction visits.
        syscalls_per_page = math.ceil(profile.response_bytes / cfg["bufferSize"])
        cpu_base = requests * self.PARSE_CPU
        cpu_base += static_requests * (
            self.STATIC_SERVE_CPU + mean_obj / self.FILE_COPY_RATE
        )
        cpu_base += profile.app_cpu
        cpu_base += dynamic_pages * (
            self.AJP_RELAY_CPU + syscalls_per_page * self.WRITE_SYSCALL_CPU
        )
        max_processors = float(cfg["maxProcessors"])
        cpu_cores = self.node.cpu_cores

        # --- disk -------------------------------------------------------------
        disk = static_requests * self.STATIC_DISK_ACCESS_PROB * self.node.disk_seconds(
            mean_obj, accesses=1.0
        )

        # --- NIC ---------------------------------------------------------------
        out_bytes = dynamic_pages * profile.response_bytes + static_requests * mean_obj
        nic = out_bytes + profile.db_result_bytes + requests * 600.0

        # --- memory ---------------------------------------------------------------
        http_threads = max(cfg["maxProcessors"], cfg["minProcessors"])
        ajp_threads = max(cfg["AJPmaxProcessors"], cfg["AJPminProcessors"])
        memory = (
            self.JVM_BASE_MEMORY
            + http_threads * (self.HTTP_THREAD_MEMORY + cfg["bufferSize"])
            + ajp_threads * self.AJP_THREAD_MEMORY
        )
        http_pool = (int(cfg["maxProcessors"]), int(cfg["acceptCount"]))
        ajp_pool = (int(cfg["AJPmaxProcessors"]), int(cfg["AJPacceptCount"]))

        def build(concurrency: float = 8.0) -> AppServerEvaluation:
            needed = max(concurrency, 1.0)
            spawn_prob = burstiness * max(0.0, needed - warm) / needed
            spawn_rate = spawn_prob * requests * 0.25  # threads linger; not
            # every request spawns — churn is a fraction of arrivals
            # during bursts.
            cpu = cpu_base + spawn_rate * self.SPAWN_CPU
            # Context switching once runnable threads exceed the cores.
            runnable = min(needed, max_processors)
            cs_factor = 1.0 + self.CONTEXT_SWITCH_COEF * max(
                0.0, runnable - cpu_cores
            )
            cpu *= cs_factor
            return AppServerEvaluation(
                cpu_demand=self.node.cpu_seconds(cpu),
                disk_demand=disk,
                nic_bytes=nic,
                memory_bytes=memory,
                dynamic_pages=dynamic_pages,
                static_requests=static_requests,
                http_pool=http_pool,
                ajp_pool=ajp_pool,
                spawn_rate=spawn_rate,
            )

        return build
