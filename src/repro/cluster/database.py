"""MySQL-like database-server performance model (tier 3).

Models a MySQL 3.23-era (MyISAM + binlog) server.  Parameter → mechanism:

``max_connections``
    Concurrency cap; each connection costs resident memory (thread stack,
    net buffer, lazily a join buffer).
``thread_con`` (``thread_cache_size``)
    Cached server threads.  Connection churn that misses the cache pays a
    thread-creation cost; the hit probability grows with the cache size
    relative to the concurrent-connection level.
``table_cache``
    Open-table descriptor cache.  A miss re-opens the table: CPU plus a
    chance of a disk access.  The working set (tables × connections touching
    them) is several hundred entries — the paper's tuner lands 761–905.
``net_buffer_length``
    Result-set transfer buffer: ``ceil(result / buffer)`` write syscalls.
``join_buffer_size``
    Joins that don't fit re-scan (extra passes).  The default 8 MB is far
    more than the TPC-W joins need, but it is *allocated per active join*,
    so with hundreds of connections it is pure memory waste — reproducing
    the paper's finding that "reducing the join buffer size does not impact
    performance" (and frees memory).
``binlog_cache_size``
    Transactions whose binlog records overflow the cache spill to a temp
    file on disk before commit.
``delayed_insert_limit`` / ``delayed_queue_size``
    The delayed-insert path batches inserts; a bigger queue amortizes disk
    writes over larger batches, and a very small handler limit starves
    readers slightly.
``thread_stack``
    Per-connection stack.  Below ~96 KB deep queries run degraded (the
    model charges a penalty on heavy queries); above, only memory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.cluster.context import WorkloadContext
from repro.cluster.node import NodeSpec
from repro.util.units import KB, MB

__all__ = ["DatabaseEvaluation", "DatabaseModel"]


@dataclass(frozen=True)
class DatabaseEvaluation:
    """Per-interaction demands a database node generates."""

    cpu_demand: float
    disk_demand: float
    nic_bytes: float
    memory_bytes: float
    #: Connection-pool capacity (``max_connections``).
    connection_limit: int
    #: Expected table-cache miss fraction (diagnostic).
    table_miss: float
    #: Expected binlog spill probability per write transaction (diagnostic).
    binlog_spill: float


class DatabaseModel:
    """Translate a MySQL configuration into resource demands."""

    QUERY_CPU = 2.0e-3  # simple indexed read
    HEAVY_QUERY_CPU = 12.0e-3  # join / aggregation (Best Sellers, Search)
    WRITE_CPU = 4.0e-3  # update transaction bookkeeping
    INSERT_CPU = 1.2e-3
    TABLE_OPEN_CPU = 1.0e-3
    TABLE_OPEN_DISK_PROB = 0.12
    CONN_SETUP_CPU = 2.2e-3  # thread create + auth on cache miss
    CONN_CHURN_PER_PAGE = 0.30  # fraction of dynamic pages opening a conn
    WRITE_SYSCALL_CPU = 0.015e-3
    TABLE_WORKING_SET = 260.0  # effective open-table entries needed
    JOIN_BUFFER_NEEDED = 384 * KB
    JOIN_REFILL_COEF = 0.22  # extra passes per halving below the need
    JOIN_EAGER_FRACTION = 0.08  # share of each connection's join buffer
    # that ends up resident (MySQL 3.23 allocates per-thread buffers
    # eagerly enough that hundreds of connections with the default 8 MB
    # join buffer visibly eat memory — the reason the paper's tuner cut it)
    BINLOG_RECORD_MEAN = 24 * KB  # mean binlog bytes per write transaction
    READ_MISS_PROB = 0.12  # buffer-pool miss per simple read
    READ_MISS_BYTES = 8 * KB
    HEAVY_SCAN_BYTES = 192 * KB
    WRITE_LOG_ACCESSES = 0.3  # group commit amortization
    INSERT_DISK_ACCESS = 0.4
    THREAD_STACK_RESIDENT = 0.2  # fraction of stack actually resident
    THREAD_STACK_SAFE = 96 * KB
    CONN_MISC_MEMORY = 24 * KB
    BASE_MEMORY = 90 * MB
    KEY_BUFFER = 64 * MB

    def __init__(self, node: NodeSpec) -> None:
        self.node = node

    def evaluate(
        self,
        cfg: Mapping[str, int],
        ctx: WorkloadContext,
        dynamic_pages: float,
        concurrency: float = 8.0,
    ) -> DatabaseEvaluation:
        """Demands per interaction given ``dynamic_pages`` visits/interaction.

        ``concurrency`` is the solver's estimate of simultaneously open
        connections (drives churn and lazy-allocation sizing).
        """
        return self.partial(cfg, ctx, dynamic_pages)(concurrency)

    def partial(
        self,
        cfg: Mapping[str, int],
        ctx: WorkloadContext,
        dynamic_pages: float,
    ):
        """Partially evaluate ``cfg``: returns ``concurrency → evaluation``.

        Concurrency enters only through connection churn (one CPU addend);
        the cache models, disk profile and memory are fixed per
        configuration.  The returned callable adds the churn term at the
        same position in the CPU sum as :meth:`evaluate` always has, so
        results are bit-identical.
        """
        if dynamic_pages < 0:
            raise ValueError("dynamic_pages must be non-negative")
        profile = ctx.profile
        # ``profile.db_*`` are unconditional per-interaction expectations
        # (see :func:`repro.tpcw.mix.expected_profile`); ``dynamic_pages``
        # drives only the per-visit overheads (connection churn, result
        # transfer syscalls).
        reads = profile.db_queries
        heavy = profile.db_heavy_queries
        writes = profile.db_writes
        inserts = profile.db_inserts
        queries = reads + heavy + writes

        # --- table cache -----------------------------------------------------
        table_miss = math.exp(-cfg["table_cache"] / self.TABLE_WORKING_SET)

        # --- join buffer ---------------------------------------------------------
        jb = float(cfg["join_buffer_size"])
        if jb >= self.JOIN_BUFFER_NEEDED:
            join_factor = 1.0
        else:
            join_factor = 1.0 + self.JOIN_REFILL_COEF * math.log2(
                self.JOIN_BUFFER_NEEDED / jb
            )

        # --- thread stack safety ---------------------------------------------------
        ts = float(cfg["thread_stack"])
        if ts >= self.THREAD_STACK_SAFE:
            stack_factor = 1.0
        else:
            stack_factor = 1.0 + 0.4 * (self.THREAD_STACK_SAFE - ts) / self.THREAD_STACK_SAFE

        # --- delayed inserts ----------------------------------------------------------
        batch = min(16.0, max(1.0, cfg["delayed_queue_size"] / 500.0))
        # A tiny handler limit makes the insert handler yield constantly,
        # delaying readers a little.
        reader_factor = 1.0 + 0.06 * math.exp(-cfg["delayed_insert_limit"] / 120.0) * min(
            inserts, 1.0
        )

        # --- binlog -------------------------------------------------------------------
        binlog_spill = math.exp(-cfg["binlog_cache_size"] / self.BINLOG_RECORD_MEAN)

        # --- CPU ----------------------------------------------------------------------
        # Result-transfer syscalls per interaction: the whole result volume
        # pushed through net_buffer_length-sized writes.
        syscalls = math.ceil(max(profile.db_result_bytes, 1.0) / cfg["net_buffer_length"])
        # Churn (the only concurrency-dependent addend) joins the sum in
        # the returned callable, at its original position in the chain.
        cpu_base = (
            reads * self.QUERY_CPU * reader_factor
            + heavy * self.HEAVY_QUERY_CPU * join_factor * stack_factor
            + writes * self.WRITE_CPU
            + inserts * self.INSERT_CPU
            + queries * table_miss * self.TABLE_OPEN_CPU
        )
        syscall_cpu = syscalls * self.WRITE_SYSCALL_CPU

        # --- disk ----------------------------------------------------------------------
        disk = reads * self.READ_MISS_PROB * self.node.disk_seconds(
            self.READ_MISS_BYTES, accesses=1.0
        )
        disk += heavy * self.node.disk_seconds(self.HEAVY_SCAN_BYTES, accesses=0.6)
        disk += writes * self.node.disk_seconds(4 * KB, accesses=self.WRITE_LOG_ACCESSES)
        disk += writes * binlog_spill * self.node.disk_seconds(
            self.BINLOG_RECORD_MEAN, accesses=1.0
        )
        disk += (inserts / batch) * self.node.disk_seconds(
            4 * KB, accesses=self.INSERT_DISK_ACCESS
        )
        disk += queries * table_miss * self.TABLE_OPEN_DISK_PROB * self.node.disk_seconds(
            4 * KB, accesses=1.0
        )

        # --- NIC -------------------------------------------------------------------------
        nic = profile.db_result_bytes + queries * 400.0

        # --- memory -----------------------------------------------------------------------
        conns = float(cfg["max_connections"])
        per_conn = (
            ts * self.THREAD_STACK_RESIDENT
            + cfg["net_buffer_length"]
            + self.CONN_MISC_MEMORY
        )
        join_memory = conns * self.JOIN_EAGER_FRACTION * jb
        memory = self.BASE_MEMORY + self.KEY_BUFFER + conns * per_conn + join_memory

        thread_con = cfg["thread_con"]
        connection_limit = int(cfg["max_connections"])

        def build(concurrency: float = 8.0) -> DatabaseEvaluation:
            # --- connection churn --------------------------------------
            conn_level = max(concurrency, 1.0)
            cache_hit = min(1.0, thread_con / conn_level)
            churn = self.CONN_CHURN_PER_PAGE * dynamic_pages * (1.0 - cache_hit)
            cpu = cpu_base + churn * self.CONN_SETUP_CPU + syscall_cpu
            return DatabaseEvaluation(
                cpu_demand=self.node.cpu_seconds(cpu),
                disk_demand=disk,
                nic_bytes=nic,
                memory_bytes=memory,
                connection_limit=connection_limit,
                table_miss=table_miss,
                binlog_spill=binlog_spill,
            )

        return build
