"""Workload context shared by the per-server performance models.

The server models translate a configuration into resource demands *given a
workload*.  :class:`WorkloadContext` packages what they need: the mix's
average interaction profile, the static-content catalog, and the mix's
*burstiness* — the coefficient of variation of back-end work across
interactions, which drives thread-churn costs (the paper attributes the
browsing mix's tuning difficulty to its "dramatically changing" request
characteristics, §III.A).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tpcw.catalog import Catalog
from repro.tpcw.interactions import Interaction, WorkloadMix
from repro.tpcw.mix import expected_profile
from repro.tpcw.profiles import PROFILES, InteractionProfile

__all__ = ["WorkloadContext", "mix_burstiness"]


def mix_burstiness(mix: WorkloadMix) -> float:
    """Coefficient of variation of per-interaction back-end demand.

    "Back-end demand" is servlet CPU plus database work; a mix that blends
    pure-static page views with heavy transactions (browsing: CV ≈ high) has
    far more variable instantaneous concurrency than a mix of uniformly
    heavy interactions (ordering), which is what makes thread-pool sizing
    hard.  The value is normalized to [0, 1] by an empirical ceiling.
    """
    weights = np.array([mix.weight(i) for i in Interaction])
    demand = np.array(
        [
            PROFILES[i].app_cpu
            + 1.5e-3 * PROFILES[i].db_queries
            + 10e-3 * PROFILES[i].db_heavy_queries
            + 3e-3 * PROFILES[i].db_writes
            for i in Interaction
        ]
    )
    mean = float(np.dot(weights, demand))
    if mean <= 0:
        return 0.0
    var = float(np.dot(weights, (demand - mean) ** 2))
    cv = np.sqrt(var) / mean
    return float(min(1.0, cv / 2.5))


@dataclass(frozen=True)
class WorkloadContext:
    """Everything a server model needs to know about the offered workload."""

    mix: WorkloadMix
    catalog: Catalog
    profile: InteractionProfile
    burstiness: float

    @classmethod
    def for_mix(cls, mix: WorkloadMix, catalog: Catalog) -> "WorkloadContext":
        """Build the context for a standard mix."""
        return cls(
            mix=mix,
            catalog=catalog,
            profile=expected_profile(mix),
            burstiness=mix_burstiness(mix),
        )
