"""The tunable parameters of Table 3, with defaults and tuning ranges.

Defaults are the paper's "Default config." column verbatim.  Ranges are
chosen wide enough to contain every tuned value the paper reports (its
"Best configuration after 200 iterations" columns) with head-room, since the
paper notes it had to raise several hard limits to give Harmony room to move
(§V).  Units follow the original software: Squid's ``cache_mem`` is MB and
its object sizes KB; Tomcat's ``bufferSize`` and all MySQL sizes are bytes.
"""

from __future__ import annotations

from repro.cluster.node import Role
from repro.harmony.constraints import ConstraintSet, OrderingConstraint
from repro.harmony.parameter import IntParameter, ParameterSpace

__all__ = [
    "PROXY_PARAMS",
    "APP_PARAMS",
    "DB_PARAMS",
    "params_for_role",
    "space_for_role",
    "constraints_for_role",
    "PAPER_TUNED",
]

#: Squid proxy-server parameters (Table 3, "Proxy Server" block).
PROXY_PARAMS: tuple[IntParameter, ...] = (
    IntParameter("cache_mem", default=8, low=4, high=256, step=1),  # MB
    IntParameter("cache_swap_low", default=90, low=70, high=94, step=1),  # %
    IntParameter("cache_swap_high", default=95, low=75, high=98, step=1),  # %
    IntParameter("maximum_object_size", default=4096, low=256, high=16384, step=64),  # KB
    IntParameter("minimum_object_size", default=0, low=0, high=512, step=2),  # KB
    IntParameter("maximum_object_size_in_memory", default=8, low=2, high=4096, step=2),  # KB
    IntParameter("store_objects_per_bucket", default=20, low=5, high=200, step=5),
)

#: Tomcat web/application-server parameters (Table 3, "Web Server" block).
APP_PARAMS: tuple[IntParameter, ...] = (
    IntParameter("minProcessors", default=5, low=1, high=256, step=1),
    IntParameter("maxProcessors", default=20, low=5, high=512, step=1),
    IntParameter("acceptCount", default=10, low=5, high=1024, step=1),
    IntParameter("bufferSize", default=2048, low=512, high=16384, step=128),  # bytes
    IntParameter("AJPminProcessors", default=5, low=1, high=256, step=1),
    IntParameter("AJPmaxProcessors", default=20, low=5, high=512, step=1),
    IntParameter("AJPacceptCount", default=10, low=5, high=1024, step=1),
)

#: MySQL database-server parameters (Table 3, "Database Server" block).
DB_PARAMS: tuple[IntParameter, ...] = (
    IntParameter("binlog_cache_size", default=32768, low=4096, high=1048576, step=4096),
    IntParameter("delayed_insert_limit", default=100, low=10, high=1000, step=10),
    IntParameter("max_connections", default=100, low=10, high=1000, step=10),
    IntParameter("delayed_queue_size", default=1000, low=100, high=10000, step=100),
    IntParameter("join_buffer_size", default=8388608, low=131072, high=16777216, step=65536),
    IntParameter("net_buffer_length", default=16384, low=1024, high=65536, step=1024),
    IntParameter("table_cache", default=64, low=16, high=1024, step=16),
    IntParameter("thread_con", default=10, low=1, high=128, step=1),
    IntParameter("thread_stack", default=65536, low=32768, high=1048576, step=4096),
)
# Note: Table 3 prints the join_buffer_size default as 8,388,600 and the
# thread_stack default as 65,535 — MySQL 3.23's actual defaults are the
# power-of-two values 8,388,608 and 65,536 (the table rounds); we use the
# real values so they sit on the tuning grid.

_BY_ROLE: dict[Role, tuple[IntParameter, ...]] = {
    Role.PROXY: PROXY_PARAMS,
    Role.APP: APP_PARAMS,
    Role.DB: DB_PARAMS,
}


def params_for_role(role: Role) -> tuple[IntParameter, ...]:
    """The tunable parameters of one server role."""
    return _BY_ROLE[role]


def space_for_role(role: Role) -> ParameterSpace:
    """The parameter space of one server role."""
    return ParameterSpace(list(_BY_ROLE[role]))


#: Joint feasibility constraints per role: the real servers refuse (or
#: misbehave under) inverted orderings, so the tuner must respect them.
_ROLE_CONSTRAINTS: dict[Role, ConstraintSet] = {
    Role.PROXY: ConstraintSet(
        [OrderingConstraint("cache_swap_low", "cache_swap_high", min_gap=1)]
    ),
    Role.APP: ConstraintSet(
        [
            OrderingConstraint("minProcessors", "maxProcessors"),
            OrderingConstraint("AJPminProcessors", "AJPmaxProcessors"),
        ]
    ),
    Role.DB: ConstraintSet(),
}


def constraints_for_role(role: Role) -> ConstraintSet:
    """The joint feasibility constraints of one server role."""
    return _ROLE_CONSTRAINTS[role]


#: The paper's Table 3 "Best configuration after 200 iterations" columns,
#: kept for reference and for the EXPERIMENTS.md comparison (we do not use
#: these to seed tuning — our search must find its own optima).
PAPER_TUNED: dict[str, dict[str, int]] = {
    "browsing": {
        "cache_mem": 13, "cache_swap_low": 91, "cache_swap_high": 96,
        "maximum_object_size": 4096, "minimum_object_size": 0,
        "maximum_object_size_in_memory": 6, "store_objects_per_bucket": 15,
        "minProcessors": 1, "maxProcessors": 11, "acceptCount": 6,
        "bufferSize": 2049, "AJPminProcessors": 6, "AJPmaxProcessors": 86,
        "AJPacceptCount": 76,
        "binlog_cache_size": 63488, "delayed_insert_limit": 200,
        "max_connections": 201, "delayed_queue_size": 2600,
        "join_buffer_size": 407552, "net_buffer_length": 31744,
        "table_cache": 873, "thread_con": 81, "thread_stack": 102400,
    },
    "shopping": {
        "cache_mem": 17, "cache_swap_low": 86, "cache_swap_high": 96,
        "maximum_object_size": 4096, "minimum_object_size": 50,
        "maximum_object_size_in_memory": 256, "store_objects_per_bucket": 25,
        "minProcessors": 16, "maxProcessors": 16, "acceptCount": 21,
        "bufferSize": 3585, "AJPminProcessors": 26, "AJPmaxProcessors": 296,
        "AJPacceptCount": 306,
        "binlog_cache_size": 153600, "delayed_insert_limit": 400,
        "max_connections": 451, "delayed_queue_size": 9100,
        "join_buffer_size": 407552, "net_buffer_length": 38912,
        "table_cache": 905, "thread_con": 91, "thread_stack": 1018880,
    },
    "ordering": {
        "cache_mem": 21, "cache_swap_low": 91, "cache_swap_high": 96,
        "maximum_object_size": 5888, "minimum_object_size": 306,
        "maximum_object_size_in_memory": 2560, "store_objects_per_bucket": 105,
        "minProcessors": 102, "maxProcessors": 131, "acceptCount": 136,
        "bufferSize": 6657, "AJPminProcessors": 136, "AJPmaxProcessors": 161,
        "AJPacceptCount": 671,
        "binlog_cache_size": 284672, "delayed_insert_limit": 700,
        "max_connections": 701, "delayed_queue_size": 7100,
        "join_buffer_size": 407552, "net_buffer_length": 34816,
        "table_cache": 761, "thread_con": 76, "thread_stack": 773120,
    },
}
