"""``repro.lint`` — static determinism & reproducibility analysis.

A visitor-based :mod:`ast` analyzer (stdlib only) enforcing the
invariants the measurement pipeline depends on: label-derived RNG
streams, no wall-clock reads in modelled code, order-independent
fingerprints, picklable parallel work, Table 3-consistent parameter
ranges.  See docs/static_analysis.md for the rule catalogue and
``python -m repro lint --rules`` for inline documentation.

Typical programmatic use::

    from repro.lint import Analyzer, ALL_RULES, load_config, find_root

    root = find_root()
    analyzer = Analyzer(ALL_RULES, load_config(root))
    result = analyzer.lint_paths([root / "src"], root)
    assert result.ok, format_text(result)
"""

from repro.lint.config import LintConfig, find_root, load_config
from repro.lint.core import (
    Analyzer,
    Finding,
    LintResult,
    ParsedModule,
    Rule,
    Severity,
)
from repro.lint.reporters import (
    JSON_SCHEMA_VERSION,
    format_json,
    format_rules,
    format_text,
)
from repro.lint.rules import ALL_RULES, rules_by_id

__all__ = [
    "ALL_RULES",
    "Analyzer",
    "Finding",
    "JSON_SCHEMA_VERSION",
    "LintConfig",
    "LintResult",
    "ParsedModule",
    "Rule",
    "Severity",
    "find_root",
    "format_json",
    "format_rules",
    "format_text",
    "load_config",
    "rules_by_id",
]
