"""RPL002 — wall-clock reads inside deterministic subsystems.

The simulation, DES, analytic-model and Harmony-search layers must be
pure functions of (scenario, configuration, seed): the paper's tuning
loop re-measures configurations and our memoization layer (PR 1) caches
them, so a measurement that secretly depends on the host clock breaks
cache-hit equivalence and bit-identical replay.  Timing real elapsed
time is a benchmarking concern and belongs in ``benchmarks/`` or in
reporting code, never in the modelled hot paths.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import Finding, ParsedModule, Rule, Severity

__all__ = ["WallClockRule"]

#: Dotted call targets that read the host clock.
CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class WallClockRule(Rule):
    """Flag host-clock reads in the deterministic subsystems.

    Covers ``sim/``, ``des/``, ``model/``, ``harmony/``, ``faults/`` and
    ``tuning/`` — in particular, fault timelines and retry backoff must
    run on virtual ticks, never the host clock.

    Simulated time must advance only through the event loop /
    iteration counter; host-clock reads make measurements depend on
    machine load and wall time, which both the memoization cache and
    the parallel engine assume away.
    """

    id = "RPL002"
    name = "wall-clock-read"
    severity = Severity.ERROR
    path_markers = (
        "repro/sim/",
        "repro/des/",
        "repro/model/",
        "repro/harmony/",
        "repro/faults/",
        "repro/tuning/",
    )
    path_excludes = ("benchmarks/",)

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = module.imports.resolve(node.func)
            if qual in CLOCK_CALLS:
                yield self.finding(
                    module,
                    node,
                    f"'{qual}' reads the host clock inside a deterministic "
                    "subsystem; simulated time must come from the event "
                    "loop / iteration counter (wall timing belongs in "
                    "benchmarks/)",
                )
