"""RPL001 — unseeded or global random-number generation.

Every random draw in the library must come from a
:class:`numpy.random.Generator` seeded through
:func:`repro.util.rng.derive_seed` (normally via ``spawn_rng`` or an
``RngFactory``).  Module-level entry points — ``np.random.rand`` and
friends, the stdlib ``random`` module, or ``default_rng()`` without a
derived seed — draw from process-global or ad-hoc state, so results
depend on import order, call order across threads/processes, or nothing
at all, and the bit-identical replay guarantee (docs/performance.md) is
gone.  ``util/rng.py`` is the one sanctioned construction site.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import Finding, ParsedModule, Rule, Severity

__all__ = ["UnseededRandomRule"]


class UnseededRandomRule(Rule):
    """Flag module-level RNG calls and non-derived ``default_rng`` seeds.

    Violations: any call into the stdlib ``random`` module; any call to
    a ``numpy.random`` module-level function (``rand``, ``seed``,
    ``shuffle``, ...); ``default_rng()`` with no argument or a literal
    argument.  ``default_rng(derive_seed(...))`` — a call expression as
    the seed — is allowed, and ``util/rng.py`` itself is exempt as the
    sanctioned wrapper around numpy's constructors.
    """

    id = "RPL001"
    name = "unseeded-rng"
    severity = Severity.ERROR
    path_excludes = ("util/rng.py",)

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = module.imports.resolve(node.func)
            if qual is None:
                continue
            if qual == "random" or qual.startswith("random."):
                yield self.finding(
                    module,
                    node,
                    f"stdlib '{qual}' draws from process-global state; "
                    "use repro.util.rng.spawn_rng(seed, *labels) instead",
                )
            elif qual == "numpy.random.default_rng":
                if not self._has_derived_seed(node):
                    yield self.finding(
                        module,
                        node,
                        "default_rng() without a derived seed; construct "
                        "generators with repro.util.rng.spawn_rng / "
                        "RngFactory so streams are label-derived",
                    )
            elif qual.startswith("numpy.random."):
                leaf = qual.rsplit(".", 1)[1]
                if leaf[:1].islower():  # functions, not Generator/SeedSequence
                    yield self.finding(
                        module,
                        node,
                        f"'{qual}' uses numpy's global RNG state; draw from "
                        "a Generator obtained via repro.util.rng.spawn_rng",
                    )

    @staticmethod
    def _has_derived_seed(node: ast.Call) -> bool:
        """True when the seed argument is computed (e.g. derive_seed(...))."""
        args = list(node.args) + [kw.value for kw in node.keywords]
        if not args:
            return False
        seed = args[0]
        return not isinstance(seed, ast.Constant)
