"""RPL004 — exact float equality in model/solver code.

The MVA fixed point, the M/M/c/K pool corrections and the Nelder–Mead
simplex all work in floating point; comparing intermediate results with
``==``/``!=`` against float literals encodes an exactness the arithmetic
does not provide, and such comparisons behave differently across
BLAS/vectorization paths (the batched solver of PR 1 must agree with the
scalar one bit-for-bit *because* no logic branches on exact float
equality).  Use ``math.isclose``/``np.isclose`` or compare against an
explicit tolerance; genuinely exact sentinel checks (e.g. "was this
input literally zero") get a ``# repro: noqa[RPL004]`` with a comment.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import Finding, ParsedModule, Rule, Severity

__all__ = ["FloatEqualityRule"]


class FloatEqualityRule(Rule):
    """Flag ``==``/``!=`` where an operand is a float literal.

    Limited to ``model/`` and ``harmony/`` (the numeric solvers); a
    float literal on either side of an equality comparison — including
    a negated literal such as ``-1.0`` — is reported.
    """

    id = "RPL004"
    name = "float-equality"
    severity = Severity.WARNING
    path_markers = ("repro/model/", "repro/harmony/")

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            literal = next(
                (o for o in operands if self._is_float_literal(o)), None
            )
            if literal is not None:
                yield self.finding(
                    module,
                    node,
                    f"exact equality against float literal "
                    f"{ast.unparse(literal)}; use math.isclose / an explicit "
                    "tolerance (or noqa with a comment if exactness is the "
                    "point)",
                )

    @staticmethod
    def _is_float_literal(node: ast.expr) -> bool:
        if (
            isinstance(node, ast.UnaryOp)
            and isinstance(node.op, (ast.USub, ast.UAdd))
        ):
            node = node.operand
        return isinstance(node, ast.Constant) and isinstance(node.value, float)
