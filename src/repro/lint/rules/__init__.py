"""Rule registry: every shipped reproducibility rule, sorted by id.

Adding a rule: subclass :class:`repro.lint.core.Rule` in a module here,
give it a unique ``RPLnnn`` id, a class docstring explaining *why* the
pattern breaks reproducibility (surfaced by ``repro lint --rules``),
and append an instance to :data:`ALL_RULES`.  docs/static_analysis.md
has a worked example.
"""

from __future__ import annotations

from repro.lint.core import Rule
from repro.lint.rules.clock import WallClockRule
from repro.lint.rules.concurrency import (
    BlockingCallUnderLockRule,
    LockOrderRule,
    UnguardedSharedMutationRule,
    UnlockedLazyInitRule,
)
from repro.lint.rules.exceptions import SwallowedExceptionRule
from repro.lint.rules.fleet import (
    ImportTimeConcurrencyRule,
    SwallowedFleetFailureRule,
    UnorderedBatchRule,
    UnpicklablePayloadRule,
)
from repro.lint.rules.functions import MutableDefaultRule, UnpicklableSubmitRule
from repro.lint.rules.io import NonAtomicResultWriteRule
from repro.lint.rules.numerics import FloatEqualityRule
from repro.lint.rules.ordering import UnsortedIterationRule
from repro.lint.rules.parameters import ParameterBoundsRule
from repro.lint.rules.randomness import UnseededRandomRule

__all__ = ["ALL_RULES", "rules_by_id"]

#: Every shipped rule, in id order.  RPL00x: single-threaded determinism
#: (PR 2); RPL10x: concurrency safety for the shared engine.
ALL_RULES: tuple[Rule, ...] = (
    UnseededRandomRule(),
    WallClockRule(),
    UnsortedIterationRule(),
    FloatEqualityRule(),
    MutableDefaultRule(),
    UnpicklableSubmitRule(),
    ParameterBoundsRule(),
    SwallowedExceptionRule(),
    NonAtomicResultWriteRule(),
    UnguardedSharedMutationRule(),
    UnlockedLazyInitRule(),
    LockOrderRule(),
    BlockingCallUnderLockRule(),
    UnpicklablePayloadRule(),
    ImportTimeConcurrencyRule(),
    UnorderedBatchRule(),
    SwallowedFleetFailureRule(),
)


def rules_by_id() -> dict[str, Rule]:
    """Mapping of rule id -> rule instance (id-sorted)."""
    return {rule.id: rule for rule in sorted(ALL_RULES, key=lambda r: r.id)}
