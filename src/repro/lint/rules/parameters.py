"""RPL007 — ``IntParameter`` literals that contradict the Table 3 spec.

Table 3 of the paper fixes, for each of the 24 cross-tier tunables, the
default configuration and the best configuration Harmony found after
200 iterations on each workload mix.  Our tuning ranges
(``cluster/params.py``) must (a) be internally consistent — default on
the step grid and inside ``[low, high]`` — and (b) stay wide enough to
contain every tuned value the paper reports, otherwise the search is
structurally unable to reproduce the paper's optima and the comparison
tables silently lose meaning.  The spec below is a *static* mirror of
Table 3 (defaults as corrected in ``cluster/params.py``: the printed
8,388,600 / 65,535 are MySQL 3.23's 8,388,608 / 65,536 rounded), kept
here so the rule needs no runtime import of the code it checks.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.lint.core import Finding, ParsedModule, Rule, Severity

__all__ = ["ParameterBoundsRule", "TABLE3_SPEC"]


@dataclass(frozen=True)
class _Spec:
    """Per-parameter facts from Table 3 used by the check."""

    default: int
    #: Smallest / largest tuned value across the three workload mixes.
    tuned_min: int
    tuned_max: int


#: name -> Table 3 spec (default; min/max of browsing/shopping/ordering
#: tuned values).  Sorted alphabetically for diff-stability.
TABLE3_SPEC: dict[str, _Spec] = {
    "AJPacceptCount": _Spec(10, 76, 671),
    "AJPmaxProcessors": _Spec(20, 86, 296),
    "AJPminProcessors": _Spec(5, 6, 136),
    "acceptCount": _Spec(10, 6, 136),
    "binlog_cache_size": _Spec(32768, 63488, 284672),
    "bufferSize": _Spec(2048, 2049, 6657),
    "cache_mem": _Spec(8, 13, 21),
    "cache_swap_high": _Spec(95, 96, 96),
    "cache_swap_low": _Spec(90, 86, 91),
    "delayed_insert_limit": _Spec(100, 200, 700),
    "delayed_queue_size": _Spec(1000, 2600, 9100),
    "join_buffer_size": _Spec(8388608, 407552, 407552),
    "max_connections": _Spec(100, 201, 701),
    "maxProcessors": _Spec(20, 11, 131),
    "maximum_object_size": _Spec(4096, 4096, 5888),
    "maximum_object_size_in_memory": _Spec(8, 6, 2560),
    "minProcessors": _Spec(5, 1, 102),
    "minimum_object_size": _Spec(0, 0, 306),
    "net_buffer_length": _Spec(16384, 31744, 38912),
    "store_objects_per_bucket": _Spec(20, 15, 105),
    "table_cache": _Spec(64, 761, 905),
    "thread_con": _Spec(10, 76, 91),
    "thread_stack": _Spec(65536, 102400, 1018880),
}


class ParameterBoundsRule(Rule):
    """Validate literal ``IntParameter(...)`` definitions against Table 3.

    Only calls whose name/default/low/high/step arguments are all
    literals are checked (dynamically built parameters are out of static
    reach).  Internal-consistency violations (default off-grid or
    out-of-range, inverted bounds, non-positive step) are reported for
    any parameter; Table 3 parameters are additionally required to use
    the paper's default and bounds containing the paper's tuned values.
    """

    id = "RPL007"
    name = "parameter-bounds"
    severity = Severity.ERROR

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            callee = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None
            )
            if callee != "IntParameter":
                continue
            fields = self._literal_fields(node)
            if fields is None:
                continue
            yield from self._check_fields(module, node, *fields)

    # ------------------------------------------------------------------
    @staticmethod
    def _literal_fields(
        node: ast.Call,
    ) -> Optional[tuple[str, int, int, int, int]]:
        """Extract (name, default, low, high, step) if all literal."""
        order = ("name", "default", "low", "high", "step")
        values: dict[str, object] = {}
        for position, arg in enumerate(node.args):
            if position >= len(order):
                return None
            values[order[position]] = arg
        for kw in node.keywords:
            if kw.arg in order:
                values[kw.arg] = kw.value
        if not {"name", "default", "low", "high"} <= set(values):
            return None
        values.setdefault("step", ast.Constant(value=1))
        literal: dict[str, object] = {}
        for key, expr in values.items():
            if not isinstance(expr, ast.Constant):
                return None
            literal[key] = expr.value
        name = literal["name"]
        rest = (literal["default"], literal["low"], literal["high"], literal["step"])
        if not isinstance(name, str) or not all(
            isinstance(v, int) and not isinstance(v, bool) for v in rest
        ):
            return None
        return (name, *rest)  # type: ignore[return-value]

    def _check_fields(
        self,
        module: ParsedModule,
        node: ast.Call,
        name: str,
        default: int,
        low: int,
        high: int,
        step: int,
    ) -> Iterator[Finding]:
        if step < 1:
            yield self.finding(
                module, node, f"{name}: step must be >= 1, got {step}"
            )
            return
        if low > high:
            yield self.finding(
                module, node, f"{name}: low {low} > high {high}"
            )
            return
        if not (low <= default <= high) or (default - low) % step != 0:
            yield self.finding(
                module,
                node,
                f"{name}: default {default} is not a legal grid value of "
                f"range [{low}, {high}] step {step}",
            )
        spec = TABLE3_SPEC.get(name)
        if spec is None:
            return
        if default != spec.default:
            yield self.finding(
                module,
                node,
                f"{name}: default {default} contradicts Table 3's default "
                f"configuration value {spec.default}",
            )
        if low > spec.tuned_min or high < spec.tuned_max:
            yield self.finding(
                module,
                node,
                f"{name}: range [{low}, {high}] cannot contain Table 3's "
                f"tuned values [{spec.tuned_min}, {spec.tuned_max}]; the "
                "paper's reported optimum would be unreachable",
            )
