"""RPL003 — unsorted set/dict iteration in fingerprint-sensitive code.

The measurement cache introduced in PR 1 keys on scenario fingerprints
and serialized configurations; the parallel engine collates results by
key.  Iterating a ``set`` (arbitrary order, salted per process) or a
``dict``'s views (insertion order, which varies with construction path)
while building those artifacts yields fingerprints that differ between
processes or runs — silently defeating memoization and making JSON
reports diff-unstable.  Wrap the iterable in ``sorted(...)`` or iterate
an explicitly ordered sequence.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.core import Finding, ParsedModule, Rule, Severity

__all__ = ["UnsortedIterationRule"]

#: Substrings of function names that mark order-sensitive code anywhere.
_SENSITIVE_FUNC_MARKERS = ("fingerprint", "cache_key", "to_json")


class UnsortedIterationRule(Rule):
    """Flag ``for``/comprehension iteration over sets or dict views.

    Applies file-wide in serialization/collation paths (``util/
    serialization.py``, ``util/tables.py``, ``parallel/``, the backend
    cache modules) and, in any file, inside functions whose name
    mentions ``fingerprint``/``cache_key``/``to_json``.  Iterables that
    are ``set(...)``/``frozenset(...)`` calls, set literals, or
    ``.keys()``/``.values()``/``.items()`` views are violations unless
    directly wrapped in ``sorted(...)``.
    """

    id = "RPL003"
    name = "unsorted-iteration"
    severity = Severity.ERROR

    #: Files where every statement is order-sensitive.
    file_markers = (
        "util/serialization.py",
        "util/tables.py",
        "repro/parallel/",
        "model/base.py",
        "model/analytic.py",
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        whole_file = any(marker in module.path for marker in self.file_markers)
        sensitive_spans = [] if whole_file else self._sensitive_spans(module)

        for node in ast.walk(module.tree):
            iterables: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iterables.extend(gen.iter for gen in node.generators)
            else:
                continue
            for iterable in iterables:
                reason = self._unordered_reason(iterable)
                if reason is None:
                    continue
                line = getattr(iterable, "lineno", 0)
                if not whole_file and not any(
                    lo <= line <= hi for lo, hi in sensitive_spans
                ):
                    continue
                yield self.finding(
                    module,
                    iterable,
                    f"iteration over {reason} has no stable order here; "
                    "wrap it in sorted(...) so fingerprints, cache keys "
                    "and reports are order-independent",
                )

    @staticmethod
    def _sensitive_spans(module: ParsedModule) -> list[tuple[int, int]]:
        spans: list[tuple[int, int]] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and any(
                marker in node.name.lower()
                for marker in _SENSITIVE_FUNC_MARKERS
            ):
                spans.append((node.lineno, node.end_lineno or node.lineno))
        return spans

    @staticmethod
    def _unordered_reason(node: ast.expr) -> Optional[str]:
        """Describe why ``node`` iterates in unstable order, or None."""
        if isinstance(node, ast.Set):
            return "a set literal"
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return f"'{func.id}(...)'"
        if isinstance(func, ast.Attribute) and func.attr in (
            "keys",
            "values",
            "items",
        ):
            # ``cfg.items()`` on a Mapping; sorted(cfg.items()) is the fix.
            return f"'.{func.attr}()'"
        return None
