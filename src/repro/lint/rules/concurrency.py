"""RPL101–RPL104 — shared-state and lock-discipline rules.

PR 5's shared execution engine made the repository genuinely concurrent:
a persistent worker fleet, a Manager-backed cross-process store, thread
gangs over one backend, and layered L1/L2 caches.  The RPL00x family
guards single-threaded determinism; these rules guard the places where
races now live.  All four are AST heuristics over *lock-bearing* code —
a class (or module) that constructs a ``threading``/``multiprocessing``
synchronization primitive is declaring "instances of me are shared", and
that declaration is what the rules key on:

* RPL101 — mutating a non-lock ``self`` attribute outside every
  ``with self.<lock>:`` block of a lock-bearing class.
* RPL102 — check-then-set lazy initialization (``if self._x is None:
  self._x = ...``) without holding a lock: two threads both see None and
  both initialize.
* RPL103 — inconsistent lock acquisition order: the module's nested
  ``with`` statements imply a lock-order graph; a cycle (A before B here,
  B before A there) is a deadlock waiting for the right interleaving.
* RPL104 — blocking calls (``pool.map``/``submit``/solver calls/
  cross-process store RPC) made while holding a lock, serializing the
  very work the lock-free design exists to overlap — or deadlocking when
  the blocked-on work needs the held lock.

The rules are heuristic by design; a deliberate exception takes a
``# repro: noqa[RPL10x]`` with a one-line justification, which is
repository policy anyway.  The runtime sanitizer
(:mod:`repro.lint.sanitizer`, rules RPL151–RPL154) re-checks the same
hazards dynamically with real held-lock sets.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.core import Finding, ImportMap, ParsedModule, Rule, Severity

__all__ = [
    "UnguardedSharedMutationRule",
    "UnlockedLazyInitRule",
    "LockOrderRule",
    "BlockingCallUnderLockRule",
]

#: Dotted constructors whose result is a synchronization primitive.
LOCK_FACTORIES = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "multiprocessing.Lock",
        "multiprocessing.RLock",
        "multiprocessing.Condition",
        "multiprocessing.Semaphore",
    }
)

#: Container methods that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "add",
        "update",
        "pop",
        "popitem",
        "clear",
        "extend",
        "insert",
        "remove",
        "discard",
        "setdefault",
        "move_to_end",
    }
)

#: Methods where unguarded writes are construction, not sharing.
_CONSTRUCTION_METHODS = frozenset(
    {"__init__", "__post_init__", "__new__", "__del__", "__repr__"}
)


def _self_attr(node: ast.AST) -> Optional[str]:
    """``attr`` when ``node`` is ``self.attr`` / ``cls.attr``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id in ("self", "cls")
    ):
        return node.attr
    return None


def _creates_lock(value: ast.AST, imports: ImportMap) -> bool:
    """Whether evaluating ``value`` constructs a synchronization primitive.

    Walks the whole expression so wrapped constructions — e.g.
    ``sanitizer.wrap_lock("name", threading.Lock())`` or
    ``threading.Condition(threading.RLock())`` — still register.
    """
    for sub in ast.walk(value):
        if isinstance(sub, ast.Call) and imports.resolve(sub.func) in LOCK_FACTORIES:
            return True
    return False


def class_lock_attrs(cls: ast.ClassDef, imports: ImportMap) -> frozenset[str]:
    """Attribute names bound to locks anywhere in the class (incl. body)."""
    names: set[str] = set()
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign) and _creates_lock(stmt.value, imports):
            names.update(t.id for t in stmt.targets if isinstance(t, ast.Name))
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign) and _creates_lock(node.value, imports):
            for target in node.targets:
                attr = _self_attr(target)
                if attr is not None:
                    names.add(attr)
    return frozenset(names)


def module_lock_names(tree: ast.Module, imports: ImportMap) -> frozenset[str]:
    """Module-level names bound to locks."""
    names: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and _creates_lock(stmt.value, imports):
            names.update(t.id for t in stmt.targets if isinstance(t, ast.Name))
    return frozenset(names)


def _with_locks(
    node: ast.With | ast.AsyncWith,
    class_locks: frozenset[str],
    module_locks: frozenset[str],
) -> list[str]:
    """Canonical keys of the known locks a ``with`` statement acquires."""
    keys: list[str] = []
    for item in node.items:
        expr = item.context_expr
        attr = _self_attr(expr)
        if attr is not None and attr in class_locks:
            keys.append(f"self.{attr}")
        elif isinstance(expr, ast.Name) and expr.id in module_locks:
            keys.append(expr.id)
    return keys


def _tested_attrs(test: ast.expr) -> frozenset[str]:
    """Self attributes read anywhere inside an ``if`` test expression."""
    found: set[str] = set()
    for sub in ast.walk(test):
        attr = _self_attr(sub)
        if attr is not None:
            found.add(attr)
    return frozenset(found)


class UnguardedSharedMutationRule(Rule):
    """Flag mutation of worker-visible shared state outside its lock.

    A class that constructs a lock is advertising that its instances are
    shared between threads or processes; every write to its non-lock
    ``self`` attributes (assignment, augmented assignment, subscript
    store, or an in-place container method like ``.append``/``.update``)
    must then happen inside a ``with self.<lock>:`` block — otherwise a
    gang thread or fleet callback can interleave mid-update and corrupt
    counters, caches, or the worker-visible structures the shared engine
    collates results from.  Construction (``__init__``/``__post_init__``)
    is exempt (the instance is not yet shared), and check-then-set lazy
    initialization is RPL102's finding, not this rule's.
    """

    id = "RPL101"
    name = "unguarded-shared-mutation"
    severity = Severity.ERROR
    path_markers = ("repro/parallel/",)

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        module_locks = module_lock_names(module.tree, module.imports)
        for cls in (
            n for n in ast.walk(module.tree) if isinstance(n, ast.ClassDef)
        ):
            locks = class_lock_attrs(cls, module.imports)
            if not locks:
                continue
            for meth in cls.body:
                if not isinstance(
                    meth, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if meth.name in _CONSTRUCTION_METHODS:
                    continue
                yield from self._scan(
                    module, meth.body, locks, module_locks,
                    held=False, lazy=frozenset(),
                )

    def _scan(
        self,
        module: ParsedModule,
        stmts: list[ast.stmt],
        locks: frozenset[str],
        module_locks: frozenset[str],
        held: bool,
        lazy: frozenset[str],
    ) -> Iterator[Finding]:
        for stmt in stmts:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                guarded = held or bool(
                    _with_locks(stmt, locks, module_locks)
                )
                yield from self._scan(
                    module, stmt.body, locks, module_locks, guarded, lazy
                )
            elif isinstance(stmt, ast.If):
                tested = _tested_attrs(stmt.test) - locks
                yield from self._scan(
                    module, stmt.body, locks, module_locks, held,
                    lazy | tested,
                )
                yield from self._scan(
                    module, stmt.orelse, locks, module_locks, held, lazy
                )
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                yield from self._scan(
                    module, stmt.body + stmt.orelse, locks, module_locks,
                    held, lazy,
                )
            elif isinstance(stmt, ast.Try):
                bodies = stmt.body + stmt.orelse + stmt.finalbody
                for handler in stmt.handlers:
                    bodies = bodies + handler.body
                yield from self._scan(
                    module, bodies, locks, module_locks, held, lazy
                )
            elif isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue  # nested definitions run in their own context
            elif not held:
                yield from self._mutations(module, stmt, locks, lazy)

    def _mutations(
        self,
        module: ParsedModule,
        stmt: ast.stmt,
        locks: frozenset[str],
        lazy: frozenset[str],
    ) -> Iterator[Finding]:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = list(stmt.targets)
        elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            func = stmt.value.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATOR_METHODS
            ):
                attr = _self_attr(func.value)
                if attr is not None and attr not in locks and attr not in lazy:
                    yield self.finding(
                        module,
                        stmt.value,
                        f"in-place '.{func.attr}()' on shared attribute "
                        f"'self.{attr}' outside every lock of this class; "
                        "concurrent threads/workers can interleave — hold "
                        "the lock around the mutation",
                    )
            return
        else:
            return
        for target in targets:
            attr = _self_attr(target)
            if attr is None and isinstance(target, ast.Subscript):
                attr = _self_attr(target.value)
            if attr is None and isinstance(target, ast.Tuple):
                for element in target.elts:
                    attr = _self_attr(element)
                    if attr is not None:
                        break
            if attr is None or attr in locks or attr in lazy:
                continue
            yield self.finding(
                module,
                target,
                f"mutation of shared attribute 'self.{attr}' outside every "
                "lock of this lock-bearing class; guard it with the "
                "instance lock (or justify with a noqa comment)",
            )


class UnlockedLazyInitRule(Rule):
    """Flag check-then-set lazy initialization performed without a lock.

    ``if self._pool is None: self._pool = ProcessPoolExecutor(...)`` in a
    shared object is a textbook time-of-check/time-of-use race: two
    threads both observe None and both construct, leaking one pool (or
    one Manager process) and splitting subsequent work across two caches.
    Hold the instance lock around the whole check *and* set — the
    double-checked form (unlocked fast-path check, then re-check under
    the lock before assigning) also passes this rule.
    """

    id = "RPL102"
    name = "unlocked-lazy-init"
    severity = Severity.ERROR
    path_markers = ("repro/parallel/",)

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        module_locks = module_lock_names(module.tree, module.imports)
        for cls in (
            n for n in ast.walk(module.tree) if isinstance(n, ast.ClassDef)
        ):
            locks = class_lock_attrs(cls, module.imports)
            if not locks:
                continue
            for meth in cls.body:
                if not isinstance(
                    meth, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if meth.name in _CONSTRUCTION_METHODS:
                    continue
                yield from self._scan(
                    module, meth.body, locks, module_locks, held=False
                )

    def _scan(
        self,
        module: ParsedModule,
        stmts: list[ast.stmt],
        locks: frozenset[str],
        module_locks: frozenset[str],
        held: bool,
    ) -> Iterator[Finding]:
        for stmt in stmts:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                guarded = held or bool(_with_locks(stmt, locks, module_locks))
                yield from self._scan(
                    module, stmt.body, locks, module_locks, guarded
                )
            elif isinstance(stmt, ast.If):
                tested = _tested_attrs(stmt.test) - locks
                if (
                    not held
                    and tested
                    and self._sets_unguarded(
                        stmt.body, tested, locks, module_locks
                    )
                ):
                    attrs = ", ".join(
                        f"self.{a}" for a in sorted(tested)
                    )
                    yield self.finding(
                        module,
                        stmt,
                        f"check-then-set lazy initialization of {attrs} "
                        "without a lock: two threads can both see the "
                        "uninitialized state and both initialize; hold the "
                        "instance lock around the check and the assignment",
                    )
                else:
                    yield from self._scan(
                        module, stmt.body, locks, module_locks, held
                    )
                yield from self._scan(
                    module, stmt.orelse, locks, module_locks, held
                )
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                yield from self._scan(
                    module, stmt.body + stmt.orelse, locks, module_locks, held
                )
            elif isinstance(stmt, ast.Try):
                bodies = stmt.body + stmt.orelse + stmt.finalbody
                for handler in stmt.handlers:
                    bodies = bodies + handler.body
                yield from self._scan(module, bodies, locks, module_locks, held)

    def _sets_unguarded(
        self,
        stmts: list[ast.stmt],
        tested: frozenset[str],
        locks: frozenset[str],
        module_locks: frozenset[str],
    ) -> bool:
        """Whether the body assigns a tested attr outside every lock."""
        for stmt in stmts:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                if _with_locks(stmt, locks, module_locks):
                    continue  # guarded (double-checked) — fine
                if self._sets_unguarded(stmt.body, tested, locks, module_locks):
                    return True
            elif isinstance(stmt, (ast.If, ast.For, ast.AsyncFor, ast.While)):
                inner = list(stmt.body) + list(stmt.orelse)
                if self._sets_unguarded(inner, tested, locks, module_locks):
                    return True
            elif isinstance(stmt, ast.Try):
                bodies = stmt.body + stmt.orelse + stmt.finalbody
                for handler in stmt.handlers:
                    bodies = bodies + handler.body
                if self._sets_unguarded(bodies, tested, locks, module_locks):
                    return True
            elif isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for target in targets:
                    attr = _self_attr(target)
                    if attr is None and isinstance(target, ast.Subscript):
                        attr = _self_attr(target.value)
                    if attr in tested:
                        return True
            elif isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Call
            ):
                func = stmt.value.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATOR_METHODS
                    and _self_attr(func.value) in tested
                ):
                    return True
        return False


class LockOrderRule(Rule):
    """Flag modules whose nested ``with`` statements imply a lock cycle.

    Every lexically nested acquisition ``with A: ... with B:`` adds the
    edge A→B to a per-module lock-order graph.  If the reverse edge B→A
    also appears, the two code paths deadlock under the right
    interleaving — thread 1 holds A waiting for B while thread 2 holds B
    waiting for A.  The finding anchors at the later acquisition site and
    names the earlier one; the fix is a single global acquisition order
    (document it next to the lock definitions).
    """

    id = "RPL103"
    name = "lock-order-inversion"
    severity = Severity.ERROR

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        module_locks = module_lock_names(module.tree, module.imports)
        edges: dict[tuple[str, str], tuple[int, ast.AST]] = {}

        def scan(
            stmts: list[ast.stmt],
            stack: tuple[str, ...],
            class_locks: frozenset[str],
        ) -> None:
            for stmt in stmts:
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    keys = _with_locks(stmt, class_locks, module_locks)
                    new_stack = stack
                    for key in keys:
                        for held in new_stack:
                            if held != key:
                                edges.setdefault(
                                    (held, key), (stmt.lineno, stmt)
                                )
                        new_stack = new_stack + (key,)
                    scan(stmt.body, new_stack, class_locks)
                elif isinstance(stmt, ast.ClassDef):
                    locks = class_lock_attrs(stmt, module.imports)
                    scan(stmt.body, (), locks)
                elif isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    scan(stmt.body, (), class_locks)
                else:
                    for field_name in ("body", "orelse", "finalbody"):
                        inner = getattr(stmt, field_name, None)
                        if inner:
                            scan(inner, stack, class_locks)
                    for handler in getattr(stmt, "handlers", []):
                        scan(handler.body, stack, class_locks)

        scan(module.tree.body, (), frozenset())

        reported: set[frozenset[str]] = set()
        for (a, b), (line, node) in sorted(
            edges.items(), key=lambda kv: kv[1][0]
        ):
            reverse = edges.get((b, a))
            if reverse is None:
                continue
            pair = frozenset((a, b))
            if pair in reported:
                continue
            reported.add(pair)
            # Anchor at the later of the two conflicting sites.
            later_line, later_node = max(
                (line, node), reverse, key=lambda lv: lv[0]
            )
            first_line = min(line, reverse[0])
            yield self.finding(
                module,
                later_node,
                f"lock-order inversion: '{a}' and '{b}' are acquired in "
                f"opposite orders (other order at line {first_line}); "
                "two threads taking different paths deadlock — pick one "
                "global acquisition order",
            )


#: Attribute-call names that block for unbounded time.
_BLOCKING_ATTRS = frozenset({"map", "submit", "result", "shutdown", "join"})

#: Receiver-name fragments that mark a cross-process handle (Manager
#: proxies, shared stores): any RPC on them stalls the lock holder on IPC.
_RPC_RECEIVERS = ("shared", "store", "remote", "manager", "proxy")


def _receiver_name(node: ast.expr) -> Optional[str]:
    """The last identifier of the call receiver (``a.b.c`` → ``c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_solver_call(attr: str) -> bool:
    return (
        attr == "solve"
        or attr.startswith(("solve_", "_solve"))
        or attr.endswith("_solve")
        or attr in ("measure", "measure_batch", "prefetch_configs")
    )


class BlockingCallUnderLockRule(Rule):
    """Flag blocking work performed while a lock is held.

    ``pool.map``/``.submit``/``.result``/``.shutdown``/``.join``, solver
    entry points (``solve*``, ``measure``/``measure_batch``/
    ``prefetch_configs``), and RPC on cross-process handles (receivers
    named ``*shared*``/``*store*``/``*remote*``/``*manager*``/``*proxy*``)
    inside a ``with <lock>:`` block hold the lock across unbounded work:
    every other thread needing the lock stalls behind one solve, and if
    the blocked-on worker itself needs the lock, the fleet deadlocks.
    Snapshot state under the lock, then do the blocking work outside it.
    """

    id = "RPL104"
    name = "blocking-call-under-lock"
    severity = Severity.ERROR

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        module_locks = module_lock_names(module.tree, module.imports)

        def scan(
            stmts: list[ast.stmt],
            held: tuple[str, ...],
            class_locks: frozenset[str],
        ) -> Iterator[Finding]:
            for stmt in stmts:
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    keys = _with_locks(stmt, class_locks, module_locks)
                    if held:
                        # The with-items' own expressions run while the
                        # outer lock is already held.
                        for item in stmt.items:
                            yield from self._check_expr(
                                module, item.context_expr, held
                            )
                    yield from scan(stmt.body, held + tuple(keys), class_locks)
                elif isinstance(stmt, ast.ClassDef):
                    locks = class_lock_attrs(stmt, module.imports)
                    yield from scan(stmt.body, (), locks)
                elif isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    yield from scan(stmt.body, (), class_locks)
                elif isinstance(stmt, (ast.If, ast.While)):
                    if held:
                        yield from self._check_expr(module, stmt.test, held)
                    yield from scan(stmt.body, held, class_locks)
                    yield from scan(stmt.orelse, held, class_locks)
                elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                    if held:
                        yield from self._check_expr(module, stmt.iter, held)
                    yield from scan(stmt.body, held, class_locks)
                    yield from scan(stmt.orelse, held, class_locks)
                elif isinstance(stmt, ast.Try):
                    yield from scan(stmt.body, held, class_locks)
                    for handler in stmt.handlers:
                        yield from scan(handler.body, held, class_locks)
                    yield from scan(stmt.orelse, held, class_locks)
                    yield from scan(stmt.finalbody, held, class_locks)
                elif held:
                    # Simple statement: all of its expressions execute
                    # under the held locks.
                    yield from self._check_expr(module, stmt, held)

        yield from scan(module.tree.body, (), frozenset())

    def _check_expr(
        self, module: ParsedModule, root: ast.AST, held: tuple[str, ...]
    ) -> Iterator[Finding]:
        # Manual stack walk so lambda bodies (deferred execution) are
        # skipped — ``ast.walk`` cannot prune subtrees.
        stack: list[ast.AST] = [root]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Lambda):
                continue
            stack.extend(ast.iter_child_nodes(node))
            if not isinstance(node, ast.Call):
                continue
            reason = self._blocking_reason(node)
            if reason is not None:
                yield self.finding(
                    module,
                    node,
                    f"{reason} while holding {', '.join(held)}; the "
                    "lock is held across unbounded work — snapshot "
                    "state under the lock and block outside it",
                )

    @staticmethod
    def _blocking_reason(call: ast.Call) -> Optional[str]:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return None
        attr = func.attr
        if attr in _BLOCKING_ATTRS:
            if attr == "join" and isinstance(func.value, ast.Constant):
                return None  # "sep".join(...) — string join, not thread join
            return f"blocking '.{attr}()'"
        if _is_solver_call(attr):
            return f"solver call '.{attr}()'"
        receiver = _receiver_name(func.value)
        if receiver is not None and any(
            fragment in receiver.lower() for fragment in _RPC_RECEIVERS
        ):
            return f"cross-process RPC '.{attr}()' on '{receiver}'"
        return None
