"""RPL008 — exception handlers that swallow failure silently.

A bare ``except:`` (or ``except Exception: pass``) around solver or
measurement code hides exactly the failures the tuning loop must see:
MVA non-convergence, infeasible configurations, pool-solution overflow.
A swallowed error turns into a silently wrong performance number, the
simplex ranks it, and the whole session is quietly corrupted — the
paper's bad-configuration handling (§III.A) works because failures are
*reported* as penalty values, not suppressed.  Catch the narrowest
exception you can and either handle it or convert it into an explicit
penalty/NaN with a comment.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import Finding, ParsedModule, Rule, Severity

__all__ = ["SwallowedExceptionRule"]

_BROAD = ("Exception", "BaseException")


class SwallowedExceptionRule(Rule):
    """Flag bare ``except:`` and ``except Exception/BaseException: pass``.

    A bare handler is always reported (it also traps KeyboardInterrupt).
    A broad handler is reported only when its body is just ``pass``/
    ``...`` — i.e. the error is dropped on the floor.
    """

    id = "RPL008"
    name = "swallowed-exception"
    severity = Severity.WARNING

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare 'except:' traps everything including "
                    "KeyboardInterrupt; catch the specific exception",
                )
            elif self._is_broad(node.type) and self._body_is_noop(node.body):
                yield self.finding(
                    module,
                    node,
                    "'except Exception: pass' swallows solver failures "
                    "silently; handle the error or convert it into an "
                    "explicit penalty value",
                )

    @staticmethod
    def _is_broad(type_node: ast.expr) -> bool:
        names = (
            type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
        )
        return any(
            isinstance(n, ast.Name) and n.id in _BROAD for n in names
        )

    @staticmethod
    def _body_is_noop(body: list[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Constant
            ):
                continue  # docstring or bare `...`
            return False
        return True
