"""RPL105–RPL108 — process-fleet hygiene rules.

The shared engine ships work across a process boundary (RunSpec pickles
into a persistent fleet, Manager proxies carry cache traffic, batch
solvers collate by position), so a second family of hazards exists that
never mattered in-process:

* RPL105 — unpicklable payloads (lambdas, local functions, local-class
  instances) *inside* the kwargs/args that travel with submitted work.
  RPL006 already checks the callable itself; this rule checks the cargo.
* RPL106 — pools/locks/Manager constructed at import time.  Import runs
  in every fleet worker too (workers import the module to unpickle its
  functions), so an import-time pool forks pools recursively, and an
  import-time lock can be copied *held* through ``fork``.
* RPL107 — unordered collections (sets, dict views) feeding batch APIs
  whose outputs are collated positionally.  Set iteration order varies
  with hash seeding; a reordered batch row silently reassigns results.
* RPL108 — ``BrokenProcessPool`` (or a broad except around fleet calls)
  swallowed with a no-op handler.  A broken pool means a worker died
  mid-task; dropping that error silently loses the task's results.

Like their RPL10x siblings in :mod:`repro.lint.rules.concurrency`, these
are heuristics: the runtime sanitizer (RPL151–RPL154) covers the dynamic
half, and deliberate exceptions take ``# repro: noqa[RPL10x]`` with a
justification.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.core import Finding, ImportMap, ParsedModule, Rule, Severity

__all__ = [
    "UnpicklablePayloadRule",
    "ImportTimeConcurrencyRule",
    "UnorderedBatchRule",
    "SwallowedFleetFailureRule",
]

#: Dotted constructors that spin up concurrency machinery.
_CONCURRENCY_FACTORIES = frozenset(
    {
        "multiprocessing.Manager",
        "multiprocessing.Pool",
        "multiprocessing.pool.Pool",
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.process.ProcessPoolExecutor",
        "concurrent.futures.ThreadPoolExecutor",
        "concurrent.futures.thread.ThreadPoolExecutor",
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "multiprocessing.Lock",
        "multiprocessing.RLock",
        "multiprocessing.Condition",
        "multiprocessing.Semaphore",
    }
)

#: Batch entry points whose results are collated by input position.
_BATCH_FUNCTIONS = frozenset(
    {
        "solve_tasks_multi",
        "solve_mva_batch",
        "measure_batch",
        "prefetch_configs",
        "prefetch_frontier",
        "absorb_solutions",
        "run_gang",
    }
)

#: Receiver-name fragments marking a pool/fleet handle for ``.map``.
_POOL_RECEIVERS = ("pool", "executor", "fleet")


def _last_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class UnpicklablePayloadRule(Rule):
    """Flag unpicklable values travelling with cross-process work.

    Everything inside ``RunSpec(kwargs={...})``, the extra arguments of
    ``.submit(fn, *args, **kwargs)``, and a pool's ``initializer=`` /
    ``initargs=`` is pickled to reach a worker.  Lambdas, functions
    defined inside another function, and instances of classes defined
    inside a function all fail that pickling — but only on the actual
    multi-process path, so the bug ships as a works-serially-only
    landmine.  Pass module-level callables and plain data instead.
    """

    id = "RPL105"
    name = "unpicklable-payload"
    severity = Severity.ERROR

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        local_defs = self._local_defs(module.tree)
        local_classes = self._local_classes(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            for payload, where in self._payloads(node):
                yield from self._check_value(
                    module, payload, where, local_defs, local_classes
                )

    def _payloads(
        self, call: ast.Call
    ) -> Iterator[tuple[ast.expr, str]]:
        """(value, description) pairs that will cross the process boundary."""
        func = call.func
        if isinstance(func, ast.Name) and func.id == "RunSpec":
            for kw in call.keywords:
                if kw.arg == "kwargs":
                    yield from self._dict_values(kw.value, "RunSpec kwargs")
            if len(call.args) >= 3:
                yield from self._dict_values(call.args[2], "RunSpec kwargs")
        elif isinstance(func, ast.Attribute) and func.attr == "submit":
            for arg in call.args[1:]:
                yield arg, ".submit() argument"
            for kw in call.keywords:
                if kw.arg is not None and kw.value is not None:
                    yield kw.value, f".submit() keyword '{kw.arg}'"
        elif isinstance(func, ast.Name) and func.id in (
            "ProcessPoolExecutor",
            "Pool",
        ):
            for kw in call.keywords:
                if kw.arg == "initializer":
                    yield kw.value, "pool initializer"
                elif kw.arg == "initargs" and isinstance(
                    kw.value, (ast.Tuple, ast.List)
                ):
                    for element in kw.value.elts:
                        yield element, "pool initargs element"

    @staticmethod
    def _dict_values(
        node: ast.expr, where: str
    ) -> Iterator[tuple[ast.expr, str]]:
        if isinstance(node, ast.Dict):
            for value in node.values:
                if value is not None:
                    yield value, where
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Name
        ) and node.func.id == "dict":
            for kw in node.keywords:
                if kw.value is not None:
                    yield kw.value, where

    def _check_value(
        self,
        module: ParsedModule,
        value: ast.expr,
        where: str,
        local_defs: frozenset[str],
        local_classes: frozenset[str],
    ) -> Iterator[Finding]:
        for sub in ast.walk(value):
            if isinstance(sub, ast.Lambda):
                yield self.finding(
                    module,
                    sub,
                    f"lambda in {where} cannot be pickled to a fleet "
                    "worker; use a module-level function",
                )
            elif isinstance(sub, ast.Name) and sub.id in local_defs:
                yield self.finding(
                    module,
                    sub,
                    f"locally-defined function {sub.id!r} in {where} "
                    "cannot be pickled to a fleet worker; move it to "
                    "module level",
                )
            elif (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id in local_classes
            ):
                yield self.finding(
                    module,
                    sub,
                    f"instance of locally-defined class {sub.func.id!r} in "
                    f"{where} cannot be pickled to a fleet worker; define "
                    "the class at module level",
                )

    @staticmethod
    def _local_defs(tree: ast.Module) -> frozenset[str]:
        names: set[str] = set()
        for outer in ast.walk(tree):
            if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for inner in ast.walk(outer):
                if inner is outer:
                    continue
                if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    names.add(inner.name)
        return frozenset(names)

    @staticmethod
    def _local_classes(tree: ast.Module) -> frozenset[str]:
        names: set[str] = set()
        for outer in ast.walk(tree):
            if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for inner in ast.walk(outer):
                if isinstance(inner, ast.ClassDef):
                    names.add(inner.name)
        return frozenset(names)


class ImportTimeConcurrencyRule(Rule):
    """Flag pools, locks, and Managers constructed at import time.

    Module import runs in *every* process that unpickles a function from
    the module — including each fleet worker.  An import-time
    ``ProcessPoolExecutor``/``Manager`` therefore spawns helper processes
    recursively in every worker, and an import-time lock created in the
    parent is duplicated by ``fork`` in whatever state it happens to be
    in (possibly held, deadlocking the child).  Create concurrency
    machinery lazily, inside a function or method, after fork.
    """

    id = "RPL106"
    name = "import-time-concurrency"
    severity = Severity.ERROR

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        yield from self._scan(module, module.tree.body, module.imports)

    def _scan(
        self,
        module: ParsedModule,
        stmts: list[ast.stmt],
        imports: ImportMap,
    ) -> Iterator[Finding]:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # lazy construction — exactly the fix
            if isinstance(stmt, ast.ClassDef):
                yield from self._scan(module, stmt.body, imports)
                continue
            # Manual stack walk pruning deferred-execution subtrees
            # (functions, lambdas): only code that runs *at import* counts.
            stack: list[ast.AST] = [stmt]
            while stack:
                sub = stack.pop()
                if isinstance(
                    sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    continue
                stack.extend(ast.iter_child_nodes(sub))
                if (
                    isinstance(sub, ast.Call)
                    and imports.resolve(sub.func) in _CONCURRENCY_FACTORIES
                ):
                    what = imports.resolve(sub.func)
                    yield self.finding(
                        module,
                        sub,
                        f"'{what}' constructed at import time is fork-"
                        "unsafe: every fleet worker re-runs the import, "
                        "and fork can duplicate a held lock; construct it "
                        "lazily inside a function",
                    )


class UnorderedBatchRule(Rule):
    """Flag unordered collections feeding positionally-collated batches.

    ``solve_tasks_multi``/``measure_batch``/``pool.map`` and friends
    return results *by input position*; iterating a ``set`` (or raw
    ``.keys()``/``.values()``/``.items()`` views of an order-sensitive
    dict) to build their input makes that position depend on hash
    seeding, so the same run can assign solutions to different tasks on
    different interpreters.  Materialize through ``sorted(...)`` first.
    """

    id = "RPL107"
    name = "unordered-batch-input"
    severity = Severity.ERROR

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            label = self._batch_label(node)
            if label is None:
                continue
            values = list(node.args) + [
                kw.value for kw in node.keywords if kw.value is not None
            ]
            for value in values:
                culprit = self._unordered(value)
                if culprit is not None:
                    yield self.finding(
                        module,
                        culprit,
                        f"unordered {self._describe(culprit)} feeds "
                        f"'{label}', whose results are collated by input "
                        "position; wrap it in sorted(...) so batch order "
                        "is independent of hash seeding",
                    )

    @staticmethod
    def _batch_label(call: ast.Call) -> Optional[str]:
        func = call.func
        name = _last_name(func)
        if name in _BATCH_FUNCTIONS:
            return name
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "map"
            and (receiver := _last_name(func.value)) is not None
            and any(frag in receiver.lower() for frag in _POOL_RECEIVERS)
        ):
            return f"{receiver}.map"
        return None

    def _unordered(self, value: ast.expr) -> Optional[ast.expr]:
        """The unordered sub-expression making ``value`` order-unstable."""
        if isinstance(value, ast.Call):
            name = _last_name(value.func)
            if name in ("sorted",):
                return None  # explicitly ordered — the fix
            if isinstance(value.func, ast.Name) and name in (
                "set",
                "frozenset",
            ):
                return value
            if isinstance(value.func, ast.Attribute) and value.func.attr in (
                "keys",
                "values",
                "items",
            ):
                return value
            if isinstance(value.func, ast.Name) and name in ("list", "tuple"):
                for arg in value.args:
                    culprit = self._unordered(arg)
                    if culprit is not None:
                        return culprit
                return None
        if isinstance(value, ast.Set):
            return value
        if isinstance(
            value, (ast.ListComp, ast.GeneratorExp, ast.SetComp)
        ):
            for gen in value.generators:
                culprit = self._unordered(gen.iter)
                if culprit is not None:
                    return culprit
            if isinstance(value, ast.SetComp):
                return value
        return None

    @staticmethod
    def _describe(node: ast.expr) -> str:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "set literal"
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Attribute):
                return f"'.{node.func.attr}()' dict view"
            return f"'{node.func.id}(...)'"  # type: ignore[union-attr]
        return "collection"


class SwallowedFleetFailureRule(Rule):
    """Flag handlers that drop a dead-worker error on the floor.

    ``BrokenProcessPool`` means a fleet worker died mid-task — its
    results are gone and the pool is unusable.  A handler that just
    ``pass``es (or ``continue``s, or ``return``s nothing) converts that
    hard failure into silently missing measurements.  Either re-raise
    after cleanup, rebuild the pool and retry (what
    ``SharedEngine._run_fleet`` does), or convert the loss into an
    explicit penalty the tuning loop can see.  Broad ``except Exception``
    with a no-op body gets the same treatment when the guarded code
    performs fleet operations (``.map``/``.submit``/pool construction).
    """

    id = "RPL108"
    name = "swallowed-fleet-failure"
    severity = Severity.ERROR

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Try):
                continue
            fleet_body = self._does_fleet_work(node.body)
            for handler in node.handlers:
                if not self._noop(handler.body):
                    continue
                if self._names_broken_pool(handler.type):
                    yield self.finding(
                        module,
                        handler,
                        "BrokenProcessPool swallowed with a no-op handler: "
                        "a dead worker's results are silently lost; "
                        "rebuild-and-retry or re-raise",
                    )
                elif fleet_body and self._is_broad(handler.type):
                    yield self.finding(
                        module,
                        handler,
                        "broad except with a no-op body around fleet "
                        "operations also swallows BrokenProcessPool; "
                        "handle worker death explicitly",
                    )

    @staticmethod
    def _names_broken_pool(type_node: Optional[ast.expr]) -> bool:
        if type_node is None:
            return False
        names = (
            type_node.elts
            if isinstance(type_node, ast.Tuple)
            else [type_node]
        )
        return any(
            _last_name(n) == "BrokenProcessPool" for n in names
        )

    @staticmethod
    def _is_broad(type_node: Optional[ast.expr]) -> bool:
        if type_node is None:
            return True  # bare except
        names = (
            type_node.elts
            if isinstance(type_node, ast.Tuple)
            else [type_node]
        )
        return any(
            isinstance(n, ast.Name) and n.id in ("Exception", "BaseException")
            for n in names
        )

    @staticmethod
    def _noop(body: list[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, (ast.Pass, ast.Continue)):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Constant
            ):
                continue
            if isinstance(stmt, ast.Return) and (
                stmt.value is None or isinstance(stmt.value, ast.Constant)
            ):
                continue
            return False
        return True

    @staticmethod
    def _does_fleet_work(body: list[ast.stmt]) -> bool:
        for stmt in body:
            for sub in ast.walk(stmt):
                if not isinstance(sub, ast.Call):
                    continue
                func = sub.func
                if isinstance(func, ast.Attribute) and func.attr in (
                    "map",
                    "submit",
                ):
                    return True
                if (
                    isinstance(func, ast.Name)
                    and func.id == "ProcessPoolExecutor"
                ):
                    return True
        return False
