"""RPL009 — non-atomic writes to result and journal files.

A bare ``open(path, "w")`` truncates the destination before the new
content lands: a crash (or SIGKILL — exactly the scenario the durability
layer exists for) between the truncate and the final flush leaves a
half-written or empty file where a previous, valid result used to be.
``repro.util.serialization`` ships :func:`atomic_write_json` /
:func:`atomic_write_text` / :func:`atomic_write_bytes`, which write to a
temp file in the destination directory, fsync, and ``os.replace`` — the
destination is always either the old content or the complete new one.
Every result, report, and journal write must go through them.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.core import Finding, ParsedModule, Rule, Severity

__all__ = ["NonAtomicResultWriteRule"]

#: Substrings (lowercased) of names that mark a write target as a
#: result/journal path.
PATH_HINTS = ("result", "journal", "report", "history", "output")

#: File extensions that mark a string-literal target as a result file.
RESULT_EXTENSIONS = (".json", ".journal", ".seg", ".csv")

#: Modes that truncate or create the destination in place.
DESTRUCTIVE_MODES = ("w", "x", "+")


def _is_result_target(node: ast.AST) -> bool:
    """Does the write-target expression look like a result/journal path?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            text = sub.id.lower()
        elif isinstance(sub, ast.Attribute):
            text = sub.attr.lower()
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            text = sub.value.lower()
            if text.endswith(RESULT_EXTENSIONS):
                return True
        else:
            continue
        if any(hint in text for hint in PATH_HINTS):
            return True
    return False


def _open_mode(node: ast.Call) -> str:
    """The mode a builtin ``open`` call uses (default ``"r"``)."""
    mode: Optional[ast.expr] = None
    if len(node.args) > 1:
        mode = node.args[1]
    for kw in node.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return "r" if mode is None else "?"


class NonAtomicResultWriteRule(Rule):
    """Flag bare writes to result/journal paths outside the atomic helper.

    Covers the layers that produce durable artifacts — experiments,
    tuning, faults, util, and ``benchmarks/``.  The durability package
    and ``util/serialization.py`` are the sanctioned implementations
    (framed fsync'd appends and the temp-file + ``os.replace`` dance)
    and are excluded.

    Three shapes are flagged when the target looks like a result path
    (its name mentions result/journal/report/history/output, or a string
    literal ends in ``.json``/``.journal``/``.seg``/``.csv``):

    * ``open(target, "w"/"x"/"+...")`` — truncates before writing;
    * ``target.write_text(...)`` / ``target.write_bytes(...)``;
    * ``json.dump(obj, fh)`` — streams JSON through an already-open
      handle, so a crash mid-dump leaves torn JSON on disk.
    """

    id = "RPL009"
    name = "non-atomic-result-write"
    severity = Severity.ERROR
    path_markers = (
        "repro/experiments/",
        "repro/tuning/",
        "repro/faults/",
        "repro/parallel/",
        "repro/util/",
        "benchmarks/",
    )
    path_excludes = (
        "repro/util/serialization.py",
        "repro/durability/",
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                if not node.args or not _is_result_target(node.args[0]):
                    continue
                mode = _open_mode(node)
                if any(flag in mode for flag in DESTRUCTIVE_MODES):
                    yield self.finding(
                        module,
                        node,
                        f"bare open(..., {mode!r}) truncates a result file "
                        "in place; use repro.util.serialization."
                        "atomic_write_text/json (temp file + os.replace) "
                        "so a crash never destroys the previous result",
                    )
                continue
            if isinstance(func, ast.Attribute) and func.attr in (
                "write_text",
                "write_bytes",
            ):
                if _is_result_target(func.value):
                    yield self.finding(
                        module,
                        node,
                        f"'{func.attr}' rewrites a result file in place; "
                        "use repro.util.serialization.atomic_write_text/"
                        "json so a crash never destroys the previous result",
                    )
                continue
            if module.imports.resolve(func) == "json.dump":
                yield self.finding(
                    module,
                    node,
                    "'json.dump' streams through an open handle, so a "
                    "crash mid-dump leaves torn JSON; serialize with "
                    "json.dumps and write via repro.util.serialization."
                    "atomic_write_json",
                )
