"""RPL005 — mutable default arguments; RPL006 — unpicklable parallel work.

Two function-shape hazards:

* A mutable default (``def f(xs=[])``) is evaluated once at definition
  time and shared across calls — state leaks between supposedly
  independent measurements, which is exactly the cross-run coupling the
  parallel engine's "specs never share mutable state" contract forbids.
* Work submitted to the parallel executor must survive pickling to reach
  a worker process.  Lambdas and functions defined inside another
  function don't pickle; :class:`repro.parallel.plan.RunSpec` rejects
  them at runtime, but only on the ``jobs>1`` path — this rule catches
  the mistake before it ships as a works-serially-only landmine.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.core import Finding, ParsedModule, Rule, Severity

__all__ = ["MutableDefaultRule", "UnpicklableSubmitRule"]

_MUTABLE_CALLS = ("list", "dict", "set", "defaultdict", "OrderedDict", "Counter")


class MutableDefaultRule(Rule):
    """Flag list/dict/set literals (or constructor calls) as defaults.

    Applies repo-wide: the shared-instance trap corrupts measurement
    independence anywhere.  Use ``None`` plus an in-body default.
    """

    id = "RPL005"
    name = "mutable-default"
    severity = Severity.WARNING

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        module,
                        default,
                        f"mutable default {ast.unparse(default)!r} is shared "
                        "across calls; default to None and create the "
                        "container in the body",
                    )

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_CALLS
        )


class UnpicklableSubmitRule(Rule):
    """Flag lambdas/local functions handed to the parallel engine.

    Checks the ``fn`` argument of ``RunSpec(...)`` (second positional or
    keyword) and the first argument of any ``.submit(...)`` call: a
    lambda expression, or a name bound by a ``def`` nested inside the
    enclosing function, cannot cross the process boundary.
    """

    id = "RPL006"
    name = "unpicklable-submit"
    severity = Severity.ERROR

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        local_defs = self._local_function_names(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            fn_arg = self._submitted_callable(node)
            if fn_arg is None:
                continue
            if isinstance(fn_arg, ast.Lambda):
                yield self.finding(
                    module,
                    fn_arg,
                    "lambda submitted to the parallel engine cannot be "
                    "pickled to a worker; use a module-level function",
                )
            elif isinstance(fn_arg, ast.Name) and fn_arg.id in local_defs:
                yield self.finding(
                    module,
                    fn_arg,
                    f"locally-defined function {fn_arg.id!r} submitted to "
                    "the parallel engine cannot be pickled to a worker; "
                    "move it to module level",
                )

    @staticmethod
    def _submitted_callable(node: ast.Call) -> Optional[ast.expr]:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "RunSpec":
            for kw in node.keywords:
                if kw.arg == "fn":
                    return kw.value
            if len(node.args) >= 2:
                return node.args[1]
            return None
        if isinstance(func, ast.Attribute) and func.attr == "submit":
            return node.args[0] if node.args else None
        return None

    @staticmethod
    def _local_function_names(tree: ast.Module) -> frozenset[str]:
        """Names of functions defined inside another function."""
        names: set[str] = set()
        for outer in ast.walk(tree):
            if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for inner in ast.walk(outer):
                if inner is outer:
                    continue
                if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    names.add(inner.name)
        return frozenset(names)
