"""Text and JSON renderings of a lint run.

The JSON schema (version 1, documented in docs/api.md) is the contract
future tooling consumes — pre-commit hooks, the figure/table drivers,
CI annotations.  Both reporters emit findings in the analyzer's sorted
order, so output is byte-stable for identical inputs.
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.lint.core import LintResult, Rule

__all__ = ["format_text", "format_json", "format_rules", "JSON_SCHEMA_VERSION"]

#: Bumped only on breaking changes to the JSON layout.
JSON_SCHEMA_VERSION = 1


def format_text(result: LintResult) -> str:
    """Human-oriented report: one line per finding plus a summary."""
    lines = [
        f"{f.path}:{f.line}:{f.col + 1}: {f.rule} [{f.severity}] {f.message}"
        for f in result.findings
    ]
    noun = "finding" if len(result.findings) == 1 else "findings"
    if result.findings:
        lines.append("")
    lines.append(
        f"{len(result.findings)} {noun} in {result.files_checked} "
        f"file{'s' if result.files_checked != 1 else ''} checked"
    )
    return "\n".join(lines)


def format_json(result: LintResult) -> str:
    """Machine-oriented report (schema v1; see docs/api.md)."""
    by_rule: dict[str, int] = {}
    for finding in result.findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    document = {
        "version": JSON_SCHEMA_VERSION,
        "findings": [f.to_dict() for f in result.findings],
        "summary": {
            "files_checked": result.files_checked,
            "findings": len(result.findings),
            "by_rule": by_rule,
            "ok": result.ok,
        },
    }
    return json.dumps(document, indent=2, sort_keys=True)


def format_rules(rules: Sequence[Rule]) -> str:
    """Self-documentation for ``repro lint --rules``."""
    from repro.lint.sanitizer import RUNTIME_RULES

    blocks = []
    for rule in sorted(rules, key=lambda r: r.id):
        scope = (
            ", ".join(rule.path_markers) if rule.path_markers else "all files"
        )
        header = f"{rule.id} {rule.name} [{rule.severity}] (scope: {scope})"
        doc = "\n".join(f"    {line}" for line in rule.doc().splitlines())
        blocks.append(f"{header}\n{doc}")
    runtime = [
        "Runtime sanitizer rules (REPRO_SANITIZE=1 or --sanitize; "
        'findings carry phase="runtime"):'
    ]
    runtime.extend(
        f"    {rule_id}: {description}"
        for rule_id, description in sorted(RUNTIME_RULES.items())
    )
    blocks.append("\n".join(runtime))
    return "\n\n".join(blocks)
