"""Core machinery of the reproducibility linter.

The analyzer parses each Python file once into an :mod:`ast` tree wrapped
in a :class:`ParsedModule` (source, import map, ``noqa`` table), then runs
every enabled :class:`Rule` that applies to the file's path.  Findings are
plain frozen dataclasses collected, de-duplicated and sorted by
``(path, line, col, rule)`` so output is byte-stable across runs — the
linter holds itself to the determinism bar it enforces.

Suppression uses a dedicated pragma so it never collides with flake8/ruff::

    risky_call()  # repro: noqa[RPL001]
    risky_call()  # repro: noqa[RPL001,RPL004]
    risky_call()  # repro: noqa          (suppress every rule on the line)
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

from repro.lint.config import LintConfig

__all__ = [
    "Severity",
    "Finding",
    "ParsedModule",
    "Rule",
    "Analyzer",
    "LintResult",
    "PARSE_ERROR_ID",
]


class Severity:
    """Per-rule severity labels (metadata; any finding fails the run)."""

    ERROR = "error"
    WARNING = "warning"


#: Pseudo-rule id attached to findings for files that fail to parse.
PARSE_ERROR_ID = "RPL000"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[\w\s,]*)\])?", re.IGNORECASE
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    ``phase`` distinguishes how the finding was produced: ``"static"``
    (AST analysis — every RPL0xx/RPL10x rule) or ``"runtime"`` (the
    concurrency sanitizer, rules RPL151–RPL154, which observes real
    executions).  It is reporting metadata, excluded from ordering and
    de-duplication like severity/message.
    """

    path: str
    line: int
    col: int
    rule: str
    severity: str = field(compare=False)
    message: str = field(compare=False)
    phase: str = field(compare=False, default="static")

    def to_dict(self) -> dict:
        """JSON-ready representation (schema documented in docs/api.md)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "phase": self.phase,
        }


class ImportMap(ast.NodeVisitor):
    """Maps local names to the dotted import path they refer to.

    ``import numpy as np`` binds ``np -> numpy``; ``from numpy.random
    import default_rng`` binds ``default_rng -> numpy.random.default_rng``;
    ``from datetime import datetime`` binds ``datetime ->
    datetime.datetime``.  :meth:`resolve` then turns an attribute chain
    such as ``np.random.rand`` into ``numpy.random.rand``.  Only imported
    names resolve — a local variable that happens to be called ``random``
    stays opaque, which keeps the rules free of that false positive.
    """

    def __init__(self) -> None:
        self.aliases: dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname:
                self.aliases[alias.asname] = alias.name
            else:
                # ``import a.b`` binds the top-level name ``a`` only.
                top = alias.name.split(".")[0]
                self.aliases[top] = top

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level or not node.module:
            return  # relative imports never shadow stdlib/numpy modules
        for alias in node.names:
            local = alias.asname or alias.name
            self.aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted path of a Name/Attribute chain, or None if not imported."""
        parts: list[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        base = self.aliases.get(cur.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))


def parse_noqa(source: str) -> dict[int, Optional[frozenset[str]]]:
    """Per-line suppression table: line -> rule ids, or None for blanket."""
    table: dict[int, Optional[frozenset[str]]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            table[lineno] = None  # blanket: suppress everything
        else:
            ids = frozenset(
                part.strip().upper()
                for part in rules.split(",")
                if part.strip()
            )
            table[lineno] = ids if ids else None
    return table


@dataclass
class ParsedModule:
    """One parsed source file plus the context rules need."""

    path: str  # posix-style path relative to the lint root
    source: str
    tree: ast.Module
    imports: ImportMap
    noqa: dict[int, Optional[frozenset[str]]]

    @classmethod
    def parse(cls, path: str, source: str) -> "ParsedModule":
        tree = ast.parse(source, filename=path)
        imports = ImportMap()
        imports.visit(tree)
        return cls(
            path=path,
            source=source,
            tree=tree,
            imports=imports,
            noqa=parse_noqa(source),
        )

    def suppressed(self, rule_id: str, line: int) -> bool:
        """True if ``# repro: noqa`` on ``line`` covers ``rule_id``."""
        if line not in self.noqa:
            return False
        ids = self.noqa[line]
        return ids is None or rule_id in ids


class Rule:
    """Base class for one reproducibility rule.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding findings (the analyzer applies ``noqa`` filtering and
    sorting afterwards).  ``path_markers`` restricts a rule to files
    whose relative posix path contains one of the substrings; an empty
    tuple means the rule applies to every file.  ``path_excludes`` wins
    over ``path_markers``.
    """

    id: str = ""
    name: str = ""
    severity: str = Severity.ERROR
    #: Path substrings the rule is limited to ("" tuple = all files).
    path_markers: tuple[str, ...] = ()
    #: Path substrings the rule never applies to.
    path_excludes: tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        """Whether the rule runs on the file at relative posix ``path``."""
        if any(marker in path for marker in self.path_excludes):
            return False
        if not self.path_markers:
            return True
        return any(marker in path for marker in self.path_markers)

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        """Yield every violation in ``module``."""
        raise NotImplementedError

    def finding(
        self, module: ParsedModule, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            severity=self.severity,
            message=message,
        )

    @classmethod
    def doc(cls) -> str:
        """The rule's rationale (its class docstring, dedented)."""
        import inspect

        return inspect.cleandoc(cls.__doc__ or "")


@dataclass
class LintResult:
    """Findings plus bookkeeping from one analyzer run."""

    findings: list[Finding]
    files_checked: int

    @property
    def ok(self) -> bool:
        """True when the run produced no findings."""
        return not self.findings


class Analyzer:
    """Run a set of rules over files or directory trees."""

    def __init__(
        self,
        rules: Sequence[Rule],
        config: Optional[LintConfig] = None,
    ) -> None:
        self.config = config or LintConfig()
        self.rules = tuple(
            rule
            for rule in sorted(rules, key=lambda r: r.id)
            if self.config.rule_enabled(rule.id)
        )

    # ------------------------------------------------------------------
    def lint_source(self, source: str, path: str = "<string>") -> list[Finding]:
        """Lint one in-memory source blob (used by tests and fixtures)."""
        return self._lint_blob(path, source)

    def lint_paths(self, paths: Sequence[Path], root: Path) -> LintResult:
        """Lint files and directory trees, returning sorted findings.

        ``root`` anchors relative paths (for reports, ``noqa`` scoping,
        config excludes) and is normally the directory containing
        ``pyproject.toml``.
        """
        files = sorted(set(self._collect(paths)))
        findings: list[Finding] = []
        checked = 0
        for file in files:
            rel = self._relpath(file, root)
            if self.config.path_excluded(rel):
                continue
            checked += 1
            findings.extend(self._lint_blob(rel, file.read_text()))
        return LintResult(findings=sorted(set(findings)), files_checked=checked)

    # ------------------------------------------------------------------
    @staticmethod
    def _relpath(file: Path, root: Path) -> str:
        try:
            return file.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            return file.as_posix()

    @staticmethod
    def _collect(paths: Iterable[Path]) -> Iterator[Path]:
        for path in paths:
            if path.is_dir():
                yield from sorted(path.rglob("*.py"))
            else:
                yield path

    def _lint_blob(self, rel: str, source: str) -> list[Finding]:
        try:
            module = ParsedModule.parse(rel, source)
        except SyntaxError as exc:
            return [
                Finding(
                    path=rel,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule=PARSE_ERROR_ID,
                    severity=Severity.ERROR,
                    message=f"syntax error: {exc.msg}",
                )
            ]
        out: list[Finding] = []
        for rule in self.rules:
            if not rule.applies_to(rel):
                continue
            if self.config.rule_ignored_for_path(rule.id, rel):
                continue
            for finding in rule.check(module):
                if not module.suppressed(rule.id, finding.line):
                    out.append(finding)
        return sorted(set(out))
