"""Configuration layer: ``[tool.repro.lint]`` in ``pyproject.toml``.

Recognized keys::

    [tool.repro.lint]
    select = ["RPL001", "RPL003"]   # run only these rules (default: all)
    ignore = ["RPL004"]             # never run these rules
    # ids match by family prefix too: "RPL1" = every RPL1xx rule
    exclude = ["tests/lint_fixtures/*"]  # fnmatch globs, posix relpaths

    [tool.repro.lint.per-file-ignores]
    "src/repro/model/pools.py" = ["RPL004"]   # keys are fnmatch globs

Python 3.11+ parses the file with :mod:`tomllib`; on 3.10 (which the CI
matrix still tests) a minimal single-purpose parser handles the subset
above — string/int/bool scalars and single-line string arrays — so the
linter adds no third-party dependency either way.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Optional

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - exercised only on 3.10
    tomllib = None

__all__ = ["LintConfig", "load_config", "find_root"]

_SECTION = ("tool", "repro", "lint")


def _matches(rule_id: str, selectors: frozenset[str]) -> bool:
    """Whether ``rule_id`` matches any exact id or family prefix.

    Selectors are matched by prefix, so ``RPL1`` selects the whole
    RPL10x concurrency family and ``RPL107`` selects exactly one rule.
    (Every selector is an id prefix by construction — ``RPL107`` is its
    own prefix — so one rule covers both cases.)
    """
    return any(rule_id.startswith(selector) for selector in selectors)


@dataclass(frozen=True)
class LintConfig:
    """Effective rule/path selection for one analyzer run."""

    #: Rule ids to run; ``None`` means every registered rule.
    select: Optional[frozenset[str]] = None
    #: Rule ids to skip (applied after ``select``).
    ignore: frozenset[str] = frozenset()
    #: fnmatch globs (posix, relative to root) of files never linted.
    exclude: tuple[str, ...] = ()
    #: glob -> rule ids ignored for matching files.
    per_file_ignores: tuple[tuple[str, frozenset[str]], ...] = ()

    def rule_enabled(self, rule_id: str) -> bool:
        """Whether the rule participates in this run at all."""
        if _matches(rule_id, self.ignore):
            return False
        return self.select is None or _matches(rule_id, self.select)

    def path_excluded(self, path: str) -> bool:
        """Whether the file at posix relpath ``path`` is skipped entirely."""
        return any(fnmatch(path, pattern) for pattern in self.exclude)

    def rule_ignored_for_path(self, rule_id: str, path: str) -> bool:
        """Whether ``rule_id`` is switched off for this particular file."""
        return any(
            _matches(rule_id, ids)
            for pattern, ids in self.per_file_ignores
            if fnmatch(path, pattern)
        )

    def merged(
        self,
        select: Optional[frozenset[str]] = None,
        ignore: Optional[frozenset[str]] = None,
    ) -> "LintConfig":
        """A copy with CLI ``--select``/``--ignore`` layered on top."""
        return LintConfig(
            select=select if select is not None else self.select,
            ignore=self.ignore | (ignore or frozenset()),
            exclude=self.exclude,
            per_file_ignores=self.per_file_ignores,
        )


def find_root(start: Optional[Path] = None) -> Path:
    """Nearest ancestor of ``start`` (default: cwd) with a pyproject.toml."""
    here = (start or Path.cwd()).resolve()
    for candidate in (here, *here.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return here


def load_config(root: Path) -> LintConfig:
    """Read ``[tool.repro.lint]`` from ``root/pyproject.toml`` (if any)."""
    pyproject = root / "pyproject.toml"
    if not pyproject.is_file():
        return LintConfig()
    text = pyproject.read_text()
    if tomllib is not None:
        data = tomllib.loads(text)
    else:  # pragma: no cover - exercised only on 3.10
        data = _minimal_toml(text)
    section = data
    for key in _SECTION:
        section = section.get(key, {})
        if not isinstance(section, dict):
            return LintConfig()
    return _config_from_section(section)


def _config_from_section(section: dict) -> LintConfig:
    select = section.get("select")
    ignore = section.get("ignore", [])
    exclude = section.get("exclude", [])
    per_file = section.get("per-file-ignores", {})
    return LintConfig(
        select=(
            frozenset(str(s).upper() for s in select)
            if select  # an empty/missing select list means "all rules"
            else None
        ),
        ignore=frozenset(str(s).upper() for s in ignore),
        exclude=tuple(str(p) for p in exclude),
        per_file_ignores=tuple(
            sorted(
                (str(pattern), frozenset(str(r).upper() for r in ids))
                for pattern, ids in per_file.items()
            )
        ),
    )


# ----------------------------------------------------------------------
# Minimal TOML subset parser (Python 3.10 fallback).
# ----------------------------------------------------------------------
_TABLE_RE = re.compile(r"^\[(?P<name>[^\]]+)\]\s*$")
_KEY_RE = re.compile(
    r"""^(?:"(?P<qkey>[^"]*)"|(?P<key>[\w.-]+))\s*=\s*(?P<value>.+)$"""
)


def _minimal_toml(text: str) -> dict:
    """Parse the tiny TOML subset the lint section uses.

    Supports ``[dotted.tables]``, bare or quoted keys, and values that
    are strings, integers, booleans, or single-line arrays of those.
    Anything fancier (multi-line arrays, inline tables, dates) is out of
    scope; use Python >= 3.11 for full TOML.
    """
    root: dict = {}
    current = root
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        table = _TABLE_RE.match(line)
        if table:
            current = root
            for part in _split_table_name(table.group("name")):
                current = current.setdefault(part, {})
            continue
        entry = _KEY_RE.match(line)
        if entry:
            key = entry.group("qkey")
            if key is None:
                key = entry.group("key")
            current[key] = _parse_value(entry.group("value").strip())
    return root


def _split_table_name(name: str) -> list[str]:
    parts: list[str] = []
    for part in name.split("."):
        part = part.strip()
        if part.startswith('"') and part.endswith('"'):
            part = part[1:-1]
        parts.append(part)
    return parts


def _parse_value(value: str):
    # Strip a trailing comment from unquoted scalars/arrays.
    if value.startswith("["):
        inner = value[value.index("[") + 1 : value.rindex("]")]
        items = [item.strip() for item in _split_array(inner)]
        return [_parse_value(item) for item in items if item]
    if value.startswith('"'):
        return value[1 : value.index('"', 1)]
    value = value.split("#")[0].strip()
    if value in ("true", "false"):
        return value == "true"
    try:
        return int(value)
    except ValueError:
        return value


def _split_array(inner: str) -> list[str]:
    """Split an array body on commas outside quoted strings."""
    items: list[str] = []
    buf: list[str] = []
    quoted = False
    for char in inner:
        if char == '"':
            quoted = not quoted
        if char == "," and not quoted:
            items.append("".join(buf))
            buf = []
        else:
            buf.append(char)
    items.append("".join(buf))
    return items
