"""Runtime concurrency sanitizer for the shared execution engine.

The RPL10x rules catch what the AST shows; this module catches what only
an execution shows.  When enabled (``REPRO_SANITIZE=1`` in the
environment, ``--sanitize`` on the CLI, or a test's :func:`scope`), the
``repro.parallel`` hot objects construct their locks through
:func:`wrap_lock` and call the check hooks below, and the sanitizer
records *real* held-lock sets, access sites, and cache values to report
four dynamic hazards through the ordinary lint :class:`Finding` schema
(``phase="runtime"``):

* **RPL151 — lock-order inversion observed.**  Every acquisition while
  other tracked locks are held adds an edge to a global lock-order
  graph; the first acquisition that completes a cycle is reported with
  both conflicting sites.  Unlike static RPL103 this sees orders
  composed *across* modules and through callbacks.
* **RPL152 — unsynchronized concurrent mutation.**  A
  :func:`monitored_region` entered by two threads at once with no
  tracked lock in common (and at least one writer), or an
  :func:`expect_held` assertion failing, means the guarding discipline
  the code claims is not actually held on this path.
* **RPL153 — cache coherence divergence.**  :func:`check_coherent`
  compares the value being published against the value already cached
  under the same content-addressed key.  The whole shared-store design
  rests on "any writer writes the same bytes"; a divergence is a
  fingerprint bug upstream and would silently split results by cache
  topology.
* **RPL154 — fused-solve fingerprint mismatch.**  :func:`check_fused`
  re-solves each gang group solo and compares against its slice of the
  fused mega-batch, checking the lockstep bit-identity contract on the
  actual batches a run produced (roughly doubling solve cost — this is
  the expensive check, and the reason the sanitizer is opt-in).

The sanitizer is deliberately dependency-free and in-process: state is
module-global, guarded by one short-hold lock, and never crosses
``fork`` (fleet workers run their own sanitizer; their findings travel
home in the worker's return tuple and are absorbed via :func:`absorb`).
Zero overhead when inactive: :func:`wrap_lock` returns the raw lock and
every hook returns immediately.
"""

from __future__ import annotations

import os
import threading
import traceback
from contextlib import contextmanager
from pathlib import PurePosixPath
from typing import Any, Callable, Iterator, Optional, Sequence

from repro.lint.core import Finding, Severity

__all__ = [
    "RUNTIME_RULES",
    "active",
    "wrap_lock",
    "TrackedLock",
    "expect_held",
    "monitored_region",
    "check_coherent",
    "check_fused",
    "findings",
    "take_findings",
    "absorb",
    "reset",
    "scope",
]

#: Runtime rule ids and their one-line descriptions (docs + ``--rules``).
RUNTIME_RULES = {
    "RPL151": "lock-order inversion observed at runtime",
    "RPL152": "unsynchronized concurrent mutation of shared state",
    "RPL153": "cache coherence divergence (same key, different value)",
    "RPL154": "fused mega-batch solve diverged from solo re-solve",
}

_ENV_VAR = "REPRO_SANITIZE"

# Guards the module-global sanitizer state below.  Held only for short
# bookkeeping (never across user code, IPC, or fork), and fleet workers
# re-import this module fresh rather than inheriting parent state.
_STATE_LOCK = threading.Lock()  # repro: noqa[RPL106] — short-hold bookkeeping lock, never crosses fork
_FINDINGS: list[Finding] = []
_SEEN: set[tuple] = set()
#: Observed lock-order edges: (held_name, acquired_name) -> site string.
_EDGES: dict[tuple[str, str], str] = {}
#: Active monitored regions: name -> list of (thread_id, held, op, site).
_REGIONS: dict[str, list[tuple[int, frozenset[str], str, tuple[str, int]]]] = {}
#: Forced-activation depth (tests' :func:`scope`).
_FORCED = 0

_TLS = threading.local()


def active() -> bool:
    """Whether the sanitizer is currently recording."""
    if _FORCED:
        return True
    return os.environ.get(_ENV_VAR, "") not in ("", "0")


# ----------------------------------------------------------------------
# Finding collection
# ----------------------------------------------------------------------
def _site(skip_self: bool = True) -> tuple[str, int]:
    """(path, line) of the nearest caller outside this module/threading."""
    here = os.path.abspath(__file__)
    threading_file = os.path.abspath(threading.__file__)
    for frame in reversed(traceback.extract_stack()):
        filename = os.path.abspath(frame.filename)
        if skip_self and filename in (here, threading_file):
            continue
        return _relpath(frame.filename), frame.lineno or 1
    return "<unknown>", 1


def _relpath(filename: str) -> str:
    """A stable, root-relative posix path for report output."""
    posix = PurePosixPath(filename.replace(os.sep, "/"))
    parts = posix.parts
    for anchor in ("src", "tests"):
        if anchor in parts:
            return str(PurePosixPath(*parts[parts.index(anchor):]))
    return posix.name


def _record(rule: str, message: str, site: Optional[tuple[str, int]] = None) -> None:
    path, line = site if site is not None else _site()
    finding = Finding(
        path=path,
        line=line,
        col=0,
        rule=rule,
        severity=Severity.ERROR,
        message=message,
        phase="runtime",
    )
    dedup = (rule, path, line, message)
    with _STATE_LOCK:
        if dedup not in _SEEN:
            _SEEN.add(dedup)
            _FINDINGS.append(finding)


def findings() -> list[Finding]:
    """Everything recorded since the last :func:`reset` (sorted)."""
    with _STATE_LOCK:
        return sorted(_FINDINGS)


def take_findings() -> list[Finding]:
    """Drain and return recorded findings (fleet workers ship these home)."""
    with _STATE_LOCK:
        out, _FINDINGS[:] = sorted(_FINDINGS), []
        _SEEN.clear()
        return out


def absorb(shipped: Sequence[Finding]) -> None:
    """Merge findings a fleet worker shipped back with its results."""
    if not shipped:
        return
    with _STATE_LOCK:
        for finding in shipped:
            dedup = (finding.rule, finding.path, finding.line, finding.message)
            if dedup not in _SEEN:
                _SEEN.add(dedup)
                _FINDINGS.append(finding)


def reset() -> None:
    """Clear all sanitizer state (findings, lock graph, regions)."""
    with _STATE_LOCK:
        _FINDINGS.clear()
        _SEEN.clear()
        _EDGES.clear()
        _REGIONS.clear()


@contextmanager
def scope() -> Iterator[list[Finding]]:
    """Force-activate with isolated findings; yields the captured list.

    Tests use this to *deliberately* trigger violations (injected
    lock inversions, seeded thread storms) without contaminating the
    process-wide findings an env-enabled run would report at exit:
    outer state is snapshotted on entry and restored on exit, and the
    yielded list receives exactly the findings recorded inside.
    """
    global _FORCED
    with _STATE_LOCK:
        saved = (list(_FINDINGS), set(_SEEN), dict(_EDGES), dict(_REGIONS))
        _FINDINGS.clear()
        _SEEN.clear()
        _EDGES.clear()
        _REGIONS.clear()
        _FORCED += 1
    captured: list[Finding] = []
    try:
        yield captured
    finally:
        with _STATE_LOCK:
            captured.extend(sorted(_FINDINGS))
            _FINDINGS[:] = saved[0]
            _SEEN.clear()
            _SEEN.update(saved[1])
            _EDGES.clear()
            _EDGES.update(saved[2])
            _REGIONS.clear()
            _REGIONS.update(saved[3])
            _FORCED -= 1


# ----------------------------------------------------------------------
# Lock tracking (RPL151)
# ----------------------------------------------------------------------
def _held_stack() -> list[str]:
    stack = getattr(_TLS, "stack", None)
    if stack is None:
        stack = _TLS.stack = []
    return stack


def _held_depths() -> dict[str, int]:
    depths = getattr(_TLS, "depths", None)
    if depths is None:
        depths = _TLS.depths = {}
    return depths


def held_locks() -> frozenset[str]:
    """Names of tracked locks the calling thread currently holds."""
    return frozenset(_held_stack())


class TrackedLock:
    """A lock proxy that records acquisition order and held sets.

    Wraps any ``threading`` lock (Lock, RLock) transparently — including
    as the lock of a ``threading.Condition``, for which the
    ``_is_owned``/``_release_save``/``_acquire_restore`` protocol is
    forwarded (``Condition.wait`` fully releases the lock, so the held
    stack drops the lock for the duration of the wait, exactly matching
    the real semantics).
    """

    def __init__(self, name: str, inner: Any) -> None:
        self.name = name
        self._inner = inner

    # -- core protocol -------------------------------------------------
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._note_acquire()
        return acquired

    def release(self) -> None:
        self._inner.release()
        self._note_release()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    def locked(self) -> bool:
        return self._inner.locked()

    # -- Condition protocol --------------------------------------------
    def _is_owned(self) -> bool:
        if hasattr(self._inner, "_is_owned"):
            return self._inner._is_owned()
        return self.name in _held_depths()

    def _release_save(self) -> Any:
        if hasattr(self._inner, "_release_save"):
            state = self._inner._release_save()
        else:
            self._inner.release()
            state = None
        self._drop_all()
        return state

    def _acquire_restore(self, state: Any) -> None:
        if hasattr(self._inner, "_acquire_restore"):
            self._inner._acquire_restore(state)
        else:
            self._inner.acquire()
        self._note_acquire()

    # -- bookkeeping ---------------------------------------------------
    def _note_acquire(self) -> None:
        stack, depths = _held_stack(), _held_depths()
        depth = depths.get(self.name, 0)
        if depth == 0:
            if stack:
                self._check_order(tuple(stack))
            stack.append(self.name)
        depths[self.name] = depth + 1

    def _note_release(self) -> None:
        stack, depths = _held_stack(), _held_depths()
        depth = depths.get(self.name, 0)
        if depth <= 1:
            depths.pop(self.name, None)
            if self.name in stack:
                stack.remove(self.name)
        else:
            depths[self.name] = depth - 1

    def _drop_all(self) -> None:
        stack, depths = _held_stack(), _held_depths()
        depths.pop(self.name, None)
        if self.name in stack:
            stack.remove(self.name)

    def _check_order(self, held: tuple[str, ...]) -> None:
        site = _site()
        site_str = f"{site[0]}:{site[1]}"
        with _STATE_LOCK:
            inversions = []
            for prior in held:
                if prior == self.name:
                    continue
                _EDGES.setdefault((prior, self.name), site_str)
                reverse = _EDGES.get((self.name, prior))
                if reverse is not None:
                    inversions.append((prior, reverse))
        for prior, reverse in inversions:
            _record(
                "RPL151",
                f"lock-order inversion observed: acquired {self.name!r} "
                f"while holding {prior!r}, but the opposite order was "
                f"taken at {reverse}; two threads on these paths can "
                "deadlock",
                site,
            )


def wrap_lock(name: str, inner: Any) -> Any:
    """``inner`` wrapped in a :class:`TrackedLock` when active, else as-is.

    Callers keep the real lock construction visible at the call site
    (``wrap_lock("X._lock", threading.Lock())``) so the static RPL10x
    rules still recognize the attribute as a lock.
    """
    if not active():
        return inner
    return TrackedLock(name, inner)


def expect_held(lock: Any, what: str) -> None:
    """Assert the calling thread holds ``lock`` (no-op when inactive)."""
    if not active() or not isinstance(lock, TrackedLock):
        return
    if lock.name not in _held_depths():
        _record(
            "RPL152",
            f"{what} requires holding {lock.name!r}, but the calling "
            "thread does not hold it",
        )


# ----------------------------------------------------------------------
# Concurrent-mutation monitoring (RPL152)
# ----------------------------------------------------------------------
@contextmanager
def monitored_region(name: str, op: str = "write") -> Iterator[None]:
    """Mark a critical region on shared state named ``name``.

    While two threads are inside regions of the same name with no
    tracked lock in common — and at least one of them is a writer — the
    accesses can interleave arbitrarily, which is exactly an
    unsynchronized-mutation race; RPL152 is recorded at the second
    thread's entry site.  ``op`` is ``"read"`` or ``"write"``.
    """
    if not active():
        yield
        return
    thread_id = threading.get_ident()
    held = held_locks()
    site = _site()
    entry = (thread_id, held, op, site)
    conflicts = []
    with _STATE_LOCK:
        others = _REGIONS.setdefault(name, [])
        for other_id, other_held, other_op, other_site in others:
            if other_id == thread_id:
                continue
            if "write" not in (op, other_op):
                continue
            if held & other_held:
                continue  # a common lock serializes them
            conflicts.append(other_site)
        others.append(entry)
    for other_site in conflicts:
        _record(
            "RPL152",
            f"unsynchronized concurrent access to {name!r}: this thread "
            f"({op}, holding {sorted(held) or 'no locks'}) overlaps "
            f"another thread's access at {other_site[0]}:{other_site[1]} "
            "with no lock in common",
            site,
        )
    try:
        yield
    finally:
        with _STATE_LOCK:
            entries = _REGIONS.get(name, [])
            if entry in entries:
                entries.remove(entry)


# ----------------------------------------------------------------------
# Coherence and fused-solve fingerprint checks (RPL153, RPL154)
# ----------------------------------------------------------------------
def _divergent(old: Any, new: Any) -> bool:
    try:
        equal = bool(old == new)
    except Exception:
        equal = False
    if equal:
        return False
    # Fall back to repr: domain values (solutions, measurements) may not
    # define __eq__, but their reprs are deterministic dataclass dumps.
    return repr(old) != repr(new)


def check_coherent(kind: str, key: Any, old: Any, new: Any) -> None:
    """Record RPL153 when a cache key is re-published with a new value."""
    if not active() or old is None or new is None:
        return
    if _divergent(old, new):
        _record(
            "RPL153",
            f"cache coherence divergence in {kind!r} for key {key!r}: "
            "the value being published differs from the value already "
            "cached; content-addressed keys must determine their values",
        )


def check_fused(
    solve_fn: Callable[[list, Optional[Any]], list],
    groups: Sequence[tuple[list, Optional[list]]],
    outer_budget: Optional[Any],
) -> None:
    """Record RPL154 when a fused batch's slices differ from solo solves.

    ``groups`` holds ``(tasks, fused_results)`` per gang member; each is
    re-solved alone and compared by repr.  This doubles solve cost and
    only runs when the sanitizer is active.
    """
    if not active():
        return
    for index, (tasks, fused) in enumerate(groups):
        if fused is None:
            continue
        try:
            solo = solve_fn(list(tasks), outer_budget)
        except Exception as exc:
            _record(
                "RPL154",
                f"solo re-solve of fused group {index} raised {exc!r} "
                "while the fused mega-batch succeeded; batch and solo "
                "paths must agree",
            )
            continue
        if repr(list(solo)) != repr(list(fused)):
            _record(
                "RPL154",
                f"fused mega-batch results for group {index} "
                f"({len(tasks)} task(s)) differ from a solo re-solve; "
                "the lockstep bit-identity contract is broken",
            )
