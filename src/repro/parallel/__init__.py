"""Parallel experiment engine: independent runs fanned over workers.

Experiments in this repro decompose into independent *runs* — (scenario,
method, strategy, seed, iterations) tuples whose results are then
collated into figures and tables.  This package expresses that structure
explicitly: a :class:`~repro.parallel.plan.RunSpec` names one run and the
picklable function that performs it, and a
:class:`~repro.parallel.executor.ParallelExecutor` executes a batch of
specs under one of three engines (the ``--engine`` axis):

* ``inline`` — in-process, serial, ``jobs`` ignored;
* ``process`` — a per-run :class:`concurrent.futures.ProcessPoolExecutor`;
* ``shared`` — the persistent :class:`~repro.parallel.engine.SharedEngine`
  (a worker fleet reused across runs over a cross-process shared cache,
  with a gang-scheduled vectorized path at ``jobs=1``).

Every run carries its own seed (derived deterministically with
:func:`repro.util.rng.derive_seed`) and every cache is content-addressed
with deterministic values, so the same plan produces bit-identical
results at every ``--engine``/``--jobs`` setting; only wall-clock time
and cache hit rates change.
"""

from repro.parallel.engine import ENGINES, SharedEngine, resolve_engine
from repro.parallel.executor import (
    ParallelExecutor,
    plan_chunksize,
    resolve_jobs,
)
from repro.parallel.plan import RunSpec, run_specs
from repro.parallel.stats import (
    CacheStatsCapture,
    collect_cache_stats,
    merge_cache_stats,
    track_backend,
)
from repro.parallel.store import SharedStore

__all__ = [
    "RunSpec",
    "run_specs",
    "ParallelExecutor",
    "resolve_jobs",
    "plan_chunksize",
    "ENGINES",
    "resolve_engine",
    "SharedEngine",
    "SharedStore",
    "CacheStatsCapture",
    "collect_cache_stats",
    "merge_cache_stats",
    "track_backend",
]
