"""Parallel experiment engine: independent runs fanned over processes.

Experiments in this repro decompose into independent *runs* — (scenario,
method, strategy, seed, iterations) tuples whose results are then
collated into figures and tables.  This package expresses that structure
explicitly: a :class:`~repro.parallel.plan.RunSpec` names one run and the
picklable function that performs it, and a
:class:`~repro.parallel.executor.ParallelExecutor` fans a batch of specs
over a :class:`concurrent.futures.ProcessPoolExecutor`.

Every run carries its own seed (derived deterministically with
:func:`repro.util.rng.derive_seed`), so the same plan produces
bit-identical results at every ``--jobs`` setting; ``jobs=1`` runs the
specs in-process in submission order — exactly the legacy serial path.
"""

from repro.parallel.executor import ParallelExecutor, resolve_jobs
from repro.parallel.plan import RunSpec, run_specs

__all__ = ["RunSpec", "run_specs", "ParallelExecutor", "resolve_jobs"]
