"""The persistent shared-cache execution engine (``--engine shared``).

PR 1's process pool is born and dies inside every ``ParallelExecutor.run``
call: each run pays pool spawn, each worker starts cache-cold, and
whatever a worker learned is cremated with it.  This engine is the
opposite life cycle — one :class:`SharedEngine` per CLI invocation:

* **A worker fleet that outlives runs.**  The ``ProcessPoolExecutor`` is
  created on first pooled run and reused by every later run (grown, never
  shrunk, when a run asks for more workers).  Workers are initialized
  once with a handle to the shared store, so their persistent backends
  keep their L1 caches across runs.
* **A cross-process, cross-run cache.**  One
  :class:`~repro.parallel.store.SharedStore` (rebased onto a
  ``multiprocessing.Manager`` dict when the fleet starts) backs the
  solution and measurement memos of the parent *and* every worker: a
  configuration solved anywhere is a hit everywhere, including in later
  experiments of the same invocation.
* **A vectorized single-process path.**  ``jobs=1`` plans are
  gang-scheduled through :func:`~repro.parallel.vector.run_gang`, fusing
  the cold solves of all concurrently-running specs into cross-experiment
  ``solve_tasks_multi`` mega-batches — the 1-CPU/CI win the process pool
  can never deliver.

Everything cached is deterministic and content-addressed, so the engine
preserves the executor's bit-identity contract at every jobs setting.
"""

from __future__ import annotations

import atexit
import multiprocessing
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Hashable, Optional, Sequence

from repro.faults.engine import (
    EngineFaultInjector,
    FleetUnavailableError,
    active_injector,
)
from repro.lint import sanitizer as _san
from repro.model.analytic import AnalyticBackend
from repro.model.base import MemoizedBackend, PerformanceBackend
from repro.parallel.plan import RunSpec
from repro.parallel.stats import CacheStatsCapture, track_backend
from repro.parallel.store import (
    SharedAnalyticBackend,
    SharedMeasurementCache,
    SharedStore,
)
from repro.parallel.vector import SolveRendezvous, run_gang

__all__ = ["ENGINES", "FleetUnavailableError", "resolve_engine", "SharedEngine"]


class _SlowWorkerTimeout(Exception):
    """Injected virtual slow-worker deadline; the attempt is abandoned."""

#: The ``--engine`` axis.  ``inline`` = always in-process and serial
#: (jobs is ignored), ``process`` = PR 1's per-run process pool,
#: ``shared`` = this module's persistent fleet + shared cache.
ENGINES = ("inline", "process", "shared")


def resolve_engine(engine: Optional[str]) -> str:
    """Normalize an ``--engine`` value (None → the default, ``process``)."""
    if engine is None:
        return "process"
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {', '.join(ENGINES)}"
        )
    return engine


def _fleet_execute(spec: RunSpec) -> tuple[Hashable, Any, Optional[dict], list]:
    """Fleet worker entry point: one spec plus its cache-counter delta.

    The fourth element ships the worker-side sanitizer findings home (an
    empty list when the sanitizer is off): each worker process runs its
    own sanitizer, and findings that stay in a worker die with it.
    """
    with CacheStatsCapture() as capture:
        value = spec.execute()
    return spec.key, value, capture.delta(), _san.take_findings()


def _init_fleet_worker(remote: Any) -> None:
    """Fleet worker initializer: adopt the shared store, build the backend.

    Runs once per worker process (not per task).  The worker's engine
    singleton is marked as a worker so a spec that itself constructs a
    ``ParallelExecutor`` degrades to in-process execution instead of
    forking a fleet of its own.
    """
    engine = SharedEngine._instance = SharedEngine(worker=True)
    engine.store.attach(remote)
    engine.backend()  # warm eagerly: every spec shares this one


class SharedEngine:
    """Process-wide singleton owning the fleet, the store and the backends."""

    _instance: Optional["SharedEngine"] = None
    # Class-level by necessity: it guards singleton creation itself, is
    # held only for pointer swaps, and module import precedes any fork.
    _instance_lock = threading.Lock()  # repro: noqa[RPL106]
    #: Directory for durable store segments (``--store-path``); set via
    #: :meth:`configure` before the singleton is built.
    _store_path: Optional[str] = None

    @classmethod
    def instance(cls) -> "SharedEngine":
        """The invocation's engine (created on first use)."""
        with cls._instance_lock:
            if cls._instance is None:
                cls._instance = cls()
            return cls._instance

    @classmethod
    def configure(cls, store_path: Optional[str] = None) -> None:
        """Set invocation-wide engine options before first use.

        ``store_path`` points the shared store at a durable segment
        directory (:class:`~repro.durability.diskstore.StorePersistence`):
        persisted entries are adopted at bring-up, new entries are
        flushed after every run and at shutdown.  Must be called before
        the singleton exists; :meth:`reset` clears it.
        """
        with cls._instance_lock:
            if cls._instance is not None and cls._store_path != store_path:
                raise RuntimeError(
                    "SharedEngine.configure must run before the engine is "
                    "built (call SharedEngine.reset() first)"
                )
            cls._store_path = store_path

    @classmethod
    def reset(cls) -> None:
        """Tear down the singleton (tests; end of invocation)."""
        with cls._instance_lock:
            engine, cls._instance = cls._instance, None
            cls._store_path = None
        if engine is not None:
            engine.shutdown()

    def __init__(self, worker: bool = False) -> None:
        self.store = SharedStore()
        self._worker = worker
        # Durable store bring-up (parent only: workers reach the same
        # entries through the Manager dict; the parent does the flushing).
        self.persistence = None
        if not worker and SharedEngine._store_path is not None:
            from repro.durability.diskstore import StorePersistence

            self.persistence = StorePersistence(SharedEngine._store_path)
            entries = self.persistence.load()
            if entries:
                self.store.preload(entries)
            self.store.quarantined += self.persistence.quarantined
        # Reentrant: backend() may be reached from a path already holding
        # the lock (e.g. fleet bring-up warming the backend).
        self._lock = _san.wrap_lock("SharedEngine._lock", threading.RLock())
        self._backend: Optional[MemoizedBackend] = None
        self._manager = None
        self._remote = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_workers = 0
        #: Diagnostics: runs served, vectorized gang batches fused.
        self.runs = 0
        self.gang_batches = 0
        self.gang_rows = 0
        self.gang_max_width = 0

    # -- backends --------------------------------------------------------
    def backend(self) -> MemoizedBackend:
        """The persistent store-backed backend (built once, shared by all).

        Thread-safe and reused across experiments; drivers get it from
        :func:`repro.experiments.runner.make_backend` when the config's
        engine is ``shared``.  Double-checked: the unlocked fast path
        serves the common already-built case, the locked re-check makes
        first-build unique (two racing builders would otherwise register
        two backends with the stats tracker and split L1 caches).
        """
        if self._backend is None:
            with self._lock:
                if self._backend is None:
                    inner = SharedAnalyticBackend(self.store)
                    backend = MemoizedBackend(
                        inner, cache=SharedMeasurementCache(self.store)
                    )
                    track_backend(backend)
                    self._backend = backend
        return self._backend

    # -- execution -------------------------------------------------------
    def run(
        self,
        specs: Sequence[RunSpec],
        jobs: int,
        faults: Optional[EngineFaultInjector] = None,
    ) -> tuple[dict[Hashable, Any], list[Optional[dict]]]:
        """Execute a validated plan; returns (results, cache-stat deltas).

        ``jobs > 1`` (with a multi-spec plan, outside a worker) uses the
        persistent fleet; everything else takes the vectorized in-process
        path.  Results are collated by spec key in plan order either way.
        ``faults`` (default: the installed global plan) injects engine
        failures; an unbuildable fleet surfaces as
        :class:`FleetUnavailableError` for the executor's ladder.
        """
        with self._lock:
            self.runs += 1
        injector = faults if faults is not None else active_injector()
        try:
            if jobs > 1 and len(specs) > 1 and not self._worker:
                return self._run_fleet(specs, jobs, injector)
            return self._run_vectorized(specs)
        finally:
            self._flush_store(injector)

    def _run_vectorized(
        self, specs: Sequence[RunSpec]
    ) -> tuple[dict[Hashable, Any], list[Optional[dict]]]:
        backend = self.backend()
        inner = backend.backend
        assert isinstance(inner, SharedAnalyticBackend)

        def _base_solve(tasks: list, outer_budget: Optional[int]) -> list:
            # The un-intercepted cold solve: the gang leader must not
            # re-enter the rendezvous it is draining.
            return AnalyticBackend._solve_cold(
                inner, tasks, outer_budget=outer_budget
            )

        rendezvous = SolveRendezvous(_base_solve)
        with CacheStatsCapture() as capture:
            results = run_gang(specs, rendezvous, attach_to=inner)
        with self._lock:
            self.gang_batches += rendezvous.batches
            self.gang_rows += rendezvous.rows
            self.gang_max_width = max(self.gang_max_width, rendezvous.max_width)
        return results, [capture.delta()]

    def _run_fleet(
        self,
        specs: Sequence[RunSpec],
        jobs: int,
        injector: Optional[EngineFaultInjector] = None,
    ) -> tuple[dict[Hashable, Any], list[Optional[dict]]]:
        from repro.parallel.executor import plan_chunksize

        workers = min(jobs, len(specs))
        pool = self._ensure_fleet(workers, injector)
        chunksize = plan_chunksize(len(specs), workers)
        results: dict[Hashable, Any] = {}
        parts: list[Optional[dict]] = []
        verdict = injector.on_pool_run() if injector is not None else None
        try:
            if verdict == "kill":
                raise BrokenProcessPool("injected worker kill")
            if verdict == "slow":
                raise _SlowWorkerTimeout()
            mapped = list(pool.map(_fleet_execute, specs, chunksize=chunksize))
        except BrokenProcessPool:
            # A worker died (OOM, signal).  Specs are pure and idempotent,
            # so rebuild the fleet once and retry the whole plan.  If the
            # rebuild itself fails, FleetUnavailableError propagates and
            # the executor degrades to the process engine.
            self._teardown_pool(pool)
            if injector is not None:
                injector.record_rebuild()
            pool = self._ensure_fleet(workers, injector)
            mapped = list(pool.map(_fleet_execute, specs, chunksize=chunksize))
        except _SlowWorkerTimeout:
            # The attempt blew its virtual deadline: abandon it and retry
            # the plan on the same (healthy) fleet.
            mapped = list(pool.map(_fleet_execute, specs, chunksize=chunksize))
        for key, value, delta, shipped in mapped:
            results[key] = value
            parts.append(delta)
            _san.absorb(shipped)
        return {spec.key: results[spec.key] for spec in specs}, parts

    # -- fleet lifecycle -------------------------------------------------
    def _ensure_fleet(
        self, workers: int, injector: Optional[EngineFaultInjector] = None
    ) -> ProcessPoolExecutor:
        """The live pool, grown to at least ``workers`` (built under lock).

        Returns a snapshot rather than leaving callers to re-read
        ``self._pool``: a concurrent rebuild can swap the attribute, and
        mapping onto a snapshot either works or raises
        ``BrokenProcessPool``/``RuntimeError`` — never silently targets a
        half-built pool.  The outgoing pool (when growing) is shut down
        *outside* the lock; its drain can take arbitrarily long.
        """
        if self._worker:
            raise RuntimeError("fleet workers must not spawn nested fleets")
        if injector is not None and injector.on_build():
            raise FleetUnavailableError("injected fleet build failure")
        stale: Optional[ProcessPoolExecutor] = None
        try:
            with self._lock:
                if self._manager is None:
                    # One-time fleet bring-up: the fleet does not exist
                    # yet, so nothing can contend on these RPCs.
                    self._manager = multiprocessing.Manager()
                    self._remote = self._manager.dict()  # repro: noqa[RPL104]
                    self.store.attach(self._remote)  # repro: noqa[RPL104]
                if self._pool is None or self._pool_workers < workers:
                    stale, self._pool = self._pool, None
                    self._pool_workers = max(self._pool_workers, workers)
                    self._pool = ProcessPoolExecutor(
                        max_workers=self._pool_workers,
                        initializer=_init_fleet_worker,
                        initargs=(self._remote,),
                    )
                pool = self._pool
        except OSError as exc:
            # Real bring-up failure (fork refused, manager socket, fd
            # exhaustion): same ladder as an injected one.
            raise FleetUnavailableError(f"fleet bring-up failed: {exc}") from exc
        if stale is not None:
            stale.shutdown(wait=True)
        return pool

    def _teardown_pool(
        self, pool: Optional[ProcessPoolExecutor] = None
    ) -> None:
        """Retire ``pool`` (default: the current one); swap under the
        lock, drain outside it."""
        with self._lock:
            if pool is None:
                pool = self._pool
            if pool is self._pool:
                self._pool = None
        if pool is not None:
            pool.shutdown(wait=True)

    def _flush_store(
        self, injector: Optional[EngineFaultInjector] = None
    ) -> None:
        """Persist not-yet-durable store entries (no-op without a path).

        Called after every run and at shutdown, so a kill between runs
        loses at most the entries of the in-flight run — which a resumed
        run deterministically re-solves.
        """
        if self.persistence is None:
            return
        self.persistence.injector = (
            injector if injector is not None else active_injector()
        )
        self.persistence.flush(self.store.snapshot())

    def shutdown(self) -> None:
        """Stop the fleet and the manager (the store reverts to nothing)."""
        self._flush_store()
        self._teardown_pool()
        with self._lock:
            manager, self._manager = self._manager, None
            self._remote = None
            self._backend = None
            self._pool_workers = 0
        if manager is not None:
            manager.shutdown()

    def stats(self) -> dict[str, float]:
        """Engine-level diagnostics (for benchmarks and reports)."""
        out = {
            "runs": float(self.runs),
            "pool_workers": float(self._pool_workers),
            "gang_batches": float(self.gang_batches),
            "gang_rows": float(self.gang_rows),
            "gang_max_width": float(self.gang_max_width),
        }
        out.update({f"store_{k}": v for k, v in sorted(self.store.stats().items())})
        if self.persistence is not None:
            out.update(
                {
                    f"persist_{k}": float(v)
                    for k, v in sorted(self.persistence.stats().items())
                }
            )
        return out


atexit.register(SharedEngine.reset)
