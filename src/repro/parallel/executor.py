"""Fan independent runs over worker processes, deterministically.

:class:`ParallelExecutor` executes a list of :class:`RunSpec`s and
returns their results keyed by spec key.  Three engines share one
contract — the result map is identical at every ``engine``/``jobs``
setting, because every spec is self-contained (own seed, content-
addressed caches only) and results are collated by key in plan order:

* ``inline`` — always in-process and serial, ``jobs`` is ignored.  The
  debugging/CI baseline.
* ``process`` — in-process when ``jobs=1`` or the plan has one spec,
  otherwise a per-run :class:`concurrent.futures.ProcessPoolExecutor`
  (PR 1's engine, now with an explicit ``chunksize`` and, where the
  platform supports it, ``max_tasks_per_child``).
* ``shared`` — the persistent :class:`~repro.parallel.engine.SharedEngine`:
  a worker fleet reused across runs over a cross-process shared cache,
  and a gang-scheduled vectorized path at ``jobs=1``.

Whatever the engine, every spec runs inside a
:class:`~repro.parallel.stats.CacheStatsCapture`, and the merged counter
deltas are exposed as :attr:`ParallelExecutor.cache_stats` — so pooled
runs report the cache traffic that actually happened in the workers
instead of the parent's empty counters.
"""

from __future__ import annotations

import os
import sys
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Hashable, Optional, Sequence

from repro.lint import sanitizer as _san
from repro.parallel.plan import RunSpec, run_specs
from repro.parallel.stats import CacheStatsCapture, merge_cache_stats

__all__ = ["resolve_jobs", "plan_chunksize", "ParallelExecutor"]


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` → all cores, else as-is."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def plan_chunksize(num_specs: int, workers: int) -> int:
    """An explicit ``pool.map`` chunksize for a plan.

    The default (1) pays one pickle/dispatch round-trip per spec, which
    dominates for cheap specs.  Four chunks per worker keeps dispatch
    overhead amortized while still letting finish-order stragglers
    rebalance; the formula is the stdlib multiprocessing heuristic.
    """
    return max(1, num_specs // (workers * 4))


def _max_tasks_per_child_kwargs(limit: Optional[int]) -> dict[str, int]:
    """``max_tasks_per_child`` kwargs, where the platform supports them.

    The knob (recycle a worker after N tasks, bounding leak accumulation)
    exists from Python 3.11 and only with the spawn/forkserver start
    methods; on fork (the Linux default) the stdlib raises, so the knob
    is silently dropped there rather than made load-bearing.
    """
    if limit is None or sys.version_info < (3, 11):
        return {}
    import multiprocessing

    if multiprocessing.get_start_method(allow_none=True) == "fork":
        return {}
    return {"max_tasks_per_child": limit}


def _execute(spec: RunSpec) -> tuple[Hashable, Any, Optional[dict], list]:
    """Worker entry point: one spec plus its cache-counter delta.

    The fourth element ships worker-side sanitizer findings home (empty
    when the sanitizer is off) — see
    :func:`repro.parallel.engine._fleet_execute`.
    """
    with CacheStatsCapture() as capture:
        value = spec.execute()
    return spec.key, value, capture.delta(), _san.take_findings()


class ParallelExecutor:
    """Execute a plan of independent runs with a fixed worker count."""

    def __init__(
        self,
        jobs: Optional[int] = 1,
        engine: Optional[str] = None,
        max_tasks_per_child: Optional[int] = None,
    ) -> None:
        from repro.parallel.engine import resolve_engine

        self.jobs = resolve_jobs(jobs)
        self.engine = resolve_engine(engine)
        self.max_tasks_per_child = max_tasks_per_child
        self._stats_parts: list[Optional[dict]] = []

    def run(self, specs: Sequence[RunSpec]) -> dict[Hashable, Any]:
        """Execute every spec; results keyed by spec key.

        The returned dict's iteration order is submission order at every
        engine/jobs setting (workers may *finish* in any order; collation
        re-imposes the plan's order).
        """
        specs = list(specs)
        run_specs(specs)
        self._stats_parts = []
        if not specs:
            return {}
        if self.engine == "shared":
            from repro.parallel.engine import SharedEngine

            results, parts = SharedEngine.instance().run(specs, self.jobs)
            self._stats_parts = parts
            return results
        if self.engine == "inline" or self.jobs == 1 or len(specs) == 1:
            results = {}
            for spec in specs:
                with CacheStatsCapture() as capture:
                    results[spec.key] = spec.execute()
                self._stats_parts.append(capture.delta())
            return results
        results = {}
        workers = min(self.jobs, len(specs))
        with ProcessPoolExecutor(
            max_workers=workers,
            **_max_tasks_per_child_kwargs(self.max_tasks_per_child),
        ) as pool:
            for key, value, delta, shipped in pool.map(
                _execute, specs, chunksize=plan_chunksize(len(specs), workers)
            ):
                results[key] = value
                self._stats_parts.append(delta)
                _san.absorb(shipped)
        return {spec.key: results[spec.key] for spec in specs}

    @property
    def cache_stats(self) -> Optional[dict[str, float]]:
        """Merged per-spec cache-counter deltas of the most recent run.

        This is the executor-level fix for the pooled-run reporting hole:
        counters are captured where the specs execute (worker or parent),
        shipped back as deltas, and merged here with rates recomputed.
        ``None`` when the last run's specs touched no caches.
        """
        return merge_cache_stats(self._stats_parts)
