"""Fan independent runs over worker processes, deterministically.

:class:`ParallelExecutor` executes a list of :class:`RunSpec`s and
returns their results keyed by spec key.  With ``jobs=1`` the specs run
in-process, in submission order, with no pool involved — byte-for-byte
the legacy serial code path.  With ``jobs>1`` they are submitted to a
:class:`concurrent.futures.ProcessPoolExecutor`; because every spec is
self-contained (own seed, no shared mutable state) and results are
collated by key rather than completion order, the result map is
identical at every jobs setting.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Hashable, Optional, Sequence

from repro.parallel.plan import RunSpec, run_specs

__all__ = ["resolve_jobs", "ParallelExecutor"]


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` → all cores, else as-is."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _execute(spec: RunSpec) -> tuple[Hashable, Any]:
    """Worker entry point: perform one spec, tagged with its key."""
    return spec.key, spec.execute()


class ParallelExecutor:
    """Execute a plan of independent runs with a fixed worker count."""

    def __init__(self, jobs: Optional[int] = 1) -> None:
        self.jobs = resolve_jobs(jobs)

    def run(self, specs: Sequence[RunSpec]) -> dict[Hashable, Any]:
        """Execute every spec; results keyed by spec key.

        The returned dict's iteration order is submission order at every
        jobs setting (workers may *finish* in any order; collation
        re-imposes the plan's order).
        """
        specs = list(specs)
        run_specs(specs)
        if not specs:
            return {}
        if self.jobs == 1 or len(specs) == 1:
            return {spec.key: spec.execute() for spec in specs}
        results: dict[Hashable, Any] = {}
        workers = min(self.jobs, len(specs))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for key, value in pool.map(_execute, specs):
                results[key] = value
        return {spec.key: results[spec.key] for spec in specs}
