"""Fan independent runs over worker processes, deterministically.

:class:`ParallelExecutor` executes a list of :class:`RunSpec`s and
returns their results keyed by spec key.  Three engines share one
contract — the result map is identical at every ``engine``/``jobs``
setting, because every spec is self-contained (own seed, content-
addressed caches only) and results are collated by key in plan order:

* ``inline`` — always in-process and serial, ``jobs`` is ignored.  The
  debugging/CI baseline.
* ``process`` — in-process when ``jobs=1`` or the plan has one spec,
  otherwise a per-run :class:`concurrent.futures.ProcessPoolExecutor`
  (PR 1's engine, now with an explicit ``chunksize`` and, where the
  platform supports it, ``max_tasks_per_child``).
* ``shared`` — the persistent :class:`~repro.parallel.engine.SharedEngine`:
  a worker fleet reused across runs over a cross-process shared cache,
  and a gang-scheduled vectorized path at ``jobs=1``.

Whatever the engine, every spec runs inside a
:class:`~repro.parallel.stats.CacheStatsCapture`, and the merged counter
deltas are exposed as :attr:`ParallelExecutor.cache_stats` — so pooled
runs report the cache traffic that actually happened in the workers
instead of the parent's empty counters.
"""

from __future__ import annotations

import os
import sys
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Hashable, Optional, Sequence

from repro.faults.engine import (
    EngineFaultInjector,
    FleetUnavailableError,
    active_injector,
)
from repro.lint import sanitizer as _san
from repro.parallel.plan import RunSpec, run_specs
from repro.parallel.stats import CacheStatsCapture, merge_cache_stats

__all__ = ["resolve_jobs", "plan_chunksize", "ParallelExecutor"]


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` → all cores, else as-is."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def plan_chunksize(num_specs: int, workers: int) -> int:
    """An explicit ``pool.map`` chunksize for a plan.

    The default (1) pays one pickle/dispatch round-trip per spec, which
    dominates for cheap specs.  Four chunks per worker keeps dispatch
    overhead amortized while still letting finish-order stragglers
    rebalance; the formula is the stdlib multiprocessing heuristic.
    """
    return max(1, num_specs // (workers * 4))


def _max_tasks_per_child_kwargs(limit: Optional[int]) -> dict[str, int]:
    """``max_tasks_per_child`` kwargs, where the platform supports them.

    The knob (recycle a worker after N tasks, bounding leak accumulation)
    exists from Python 3.11 and only with the spawn/forkserver start
    methods; on fork (the Linux default) the stdlib raises, so the knob
    is silently dropped there rather than made load-bearing.
    """
    if limit is None or sys.version_info < (3, 11):
        return {}
    import multiprocessing

    if multiprocessing.get_start_method(allow_none=True) == "fork":
        return {}
    return {"max_tasks_per_child": limit}


def _execute(spec: RunSpec) -> tuple[Hashable, Any, Optional[dict], list]:
    """Worker entry point: one spec plus its cache-counter delta.

    The fourth element ships worker-side sanitizer findings home (empty
    when the sanitizer is off) — see
    :func:`repro.parallel.engine._fleet_execute`.
    """
    with CacheStatsCapture() as capture:
        value = spec.execute()
    return spec.key, value, capture.delta(), _san.take_findings()


class ParallelExecutor:
    """Execute a plan of independent runs with a fixed worker count."""

    def __init__(
        self,
        jobs: Optional[int] = 1,
        engine: Optional[str] = None,
        max_tasks_per_child: Optional[int] = None,
        journal=None,
        faults: Optional[EngineFaultInjector] = None,
    ) -> None:
        from repro.parallel.engine import resolve_engine

        self.jobs = resolve_jobs(jobs)
        self.engine = resolve_engine(engine)
        self.max_tasks_per_child = max_tasks_per_child
        #: Optional :class:`~repro.durability.journal.ExperimentJournal`:
        #: completed specs are served from it and fresh results are
        #: committed to it as they stream in.
        self.journal = journal
        #: Explicit engine-fault injector (default: the installed global).
        self.faults = faults
        #: Ladder steps taken during the most recent run, in order.
        self.degradations: list[str] = []
        self._stats_parts: list[Optional[dict]] = []

    def _injector(self) -> Optional[EngineFaultInjector]:
        return self.faults if self.faults is not None else active_injector()

    def run(self, specs: Sequence[RunSpec]) -> dict[Hashable, Any]:
        """Execute every spec; results keyed by spec key.

        The returned dict's iteration order is submission order at every
        engine/jobs setting (workers may *finish* in any order; collation
        re-imposes the plan's order).

        With a journal, specs already committed by a previous (killed)
        run are served from it — value and cache-stat delta alike — and
        only the remainder executes.  When the requested engine cannot
        deliver (fleet unbuildable, pool broken), the run *degrades*
        shared → process → inline instead of aborting: specs are pure, so
        a simpler engine produces identical results, just slower.
        """
        specs = list(specs)
        run_specs(specs)
        self._stats_parts = []
        self.degradations = []
        if not specs:
            return {}
        journal = self.journal
        collated: dict[Hashable, Any] = {}
        pending: list[RunSpec] = []
        if journal is not None:
            for spec in specs:
                hit = journal.get(spec.key)
                if hit is None:
                    pending.append(spec)
                else:
                    collated[spec.key] = hit[0]
                    self._stats_parts.append(hit[1])
        else:
            pending = specs

        def commit(key: Hashable, value: Any, delta: Optional[dict]) -> None:
            collated[key] = value
            self._stats_parts.append(delta)
            if journal is not None:
                journal.put(key, value, delta)

        if pending:
            engine = self.engine
            if engine == "shared":
                try:
                    self._run_shared(pending, commit)
                except FleetUnavailableError:
                    engine = self._degrade("shared->process")
            if engine == "process" and not (
                self.jobs == 1 or len(pending) == 1
            ):
                try:
                    self._run_pool(
                        [s for s in pending if s.key not in collated], commit
                    )
                except (FleetUnavailableError, BrokenProcessPool, OSError):
                    engine = self._degrade("process->inline")
            if engine in ("process", "inline"):
                self._run_inline(
                    [s for s in pending if s.key not in collated], commit
                )
        return {spec.key: collated[spec.key] for spec in specs}

    def _degrade(self, step: str) -> str:
        """Take one rung of the ladder; returns the new engine name."""
        self.degradations.append(step)
        injector = self._injector()
        if injector is not None:
            injector.record_degradation(step)
        return step.split("->", 1)[1]

    def _run_shared(
        self,
        pending: Sequence[RunSpec],
        commit: Callable[[Hashable, Any, Optional[dict]], None],
    ) -> None:
        from repro.parallel.engine import SharedEngine

        results, parts = SharedEngine.instance().run(
            pending, self.jobs, faults=self.faults
        )
        aligned = parts if len(parts) == len(pending) else None
        for i, spec in enumerate(pending):
            commit(spec.key, results[spec.key], aligned[i] if aligned else None)
        if aligned is None:
            # The vectorized gang path captures one aggregate delta for
            # the whole plan; keep it for cache_stats (journal records
            # carry None — replaying them cannot re-split the aggregate).
            self._stats_parts.extend(parts)

    def _run_pool(
        self,
        pending: Sequence[RunSpec],
        commit: Callable[[Hashable, Any, Optional[dict]], None],
    ) -> None:
        injector = self._injector()
        if injector is not None and injector.on_build():
            raise FleetUnavailableError("injected process-pool build failure")
        workers = min(self.jobs, len(pending))
        verdict = injector.on_pool_run() if injector is not None else None
        with ProcessPoolExecutor(
            max_workers=workers,
            **_max_tasks_per_child_kwargs(self.max_tasks_per_child),
        ) as pool:
            if verdict == "kill":
                # This engine has no rebuild (the pool is per-run); a
                # killed worker drops the run to the inline rung.
                raise BrokenProcessPool("injected worker kill")
            for key, value, delta, shipped in pool.map(
                _execute, pending, chunksize=plan_chunksize(len(pending), workers)
            ):
                commit(key, value, delta)
                _san.absorb(shipped)

    def _run_inline(
        self,
        pending: Sequence[RunSpec],
        commit: Callable[[Hashable, Any, Optional[dict]], None],
    ) -> None:
        for spec in pending:
            with CacheStatsCapture() as capture:
                value = spec.execute()
            commit(spec.key, value, capture.delta())

    def close(self) -> None:
        """Release the journal's file handle, if one is attached.

        Idempotent; drivers call it once their last plan has run so a
        follow-up ``--resume`` (or a test) can reopen the file.
        """
        if self.journal is not None:
            self.journal.close()

    @property
    def cache_stats(self) -> Optional[dict[str, float]]:
        """Merged per-spec cache-counter deltas of the most recent run.

        This is the executor-level fix for the pooled-run reporting hole:
        counters are captured where the specs execute (worker or parent),
        shipped back as deltas, and merged here with rates recomputed.
        ``None`` when the last run's specs touched no caches.
        """
        return merge_cache_stats(self._stats_parts)
