"""The single-process vectorized scheduler: mega-batch cold solves.

On a 1-CPU host (CI, laptops) a process pool buys nothing — but the
analytic backend's batched MVA kernel does: solving N configurations in
one :func:`repro.model.mva.solve_mva_batch` lockstep is far cheaper than
N scalar solves.  PR 1 exploited that *within* one ``measure_batch``
call; this module exploits it *across* RunSpecs.

:func:`run_gang` runs every spec of a plan as a thread over one shared
backend.  Threads are pure Python orchestration (the GIL serializes
them, costing nothing on one core); the win happens when a spec's
measurement misses every cache and reaches
:meth:`~repro.model.analytic.AnalyticBackend._solve_cold` — instead of
solving, the thread parks its tasks at a :class:`SolveRendezvous`.  When
*every* live spec thread is parked (the moment no more work can be added
to the batch), the last arrival solves all parked tasks in one
cross-experiment ``solve_tasks_multi`` mega-batch and wakes everyone.
Specs that finish (or block on something other than a solve — they
cannot: specs are CPU-pure) ``leave()`` the gang so stragglers never
wait on the departed.

Determinism: each pending group's slice of the mega-batch solution is
bit-identical to what its thread would have solved alone
(:meth:`~repro.model.analytic.AnalyticBackend.solve_tasks_multi`'s
lockstep contract), results are collated by spec key in plan order, and
each spec's own seed-derived noise draws are untouched — so the gang
changes wall-clock time only.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Hashable, Optional, Sequence

from repro.lint import sanitizer as _san
from repro.parallel.plan import RunSpec

__all__ = ["SolveRendezvous", "run_gang"]


class _Pending:
    """One thread's parked cold-solve request."""

    __slots__ = ("tasks", "outer_budget", "results", "error", "done")

    def __init__(self, tasks: list, outer_budget: Optional[int]) -> None:
        self.tasks = tasks
        self.outer_budget = outer_budget
        self.results: Optional[list] = None
        self.error: Optional[BaseException] = None
        self.done = False


class SolveRendezvous:
    """Barrier that fuses concurrent cold solves into one batch.

    Members are registered (by thread) before they start; a member either
    parks a solve via :meth:`solve` or departs via :meth:`leave`.  The
    batch fires exactly when every remaining member is parked — the
    no-more-work-can-arrive point — so batch width adapts to however many
    specs are still running.  Requests are grouped by ``outer_budget``
    (budgeted prefetch rows must not change unbudgeted measurement rows'
    round count is a non-issue — budgets are per task — but the solve
    signature takes one budget per call, so equal budgets batch together).

    If a fused batch raises, each pending group is re-solved alone so one
    spec's failure cannot poison its gang-mates, and the failing group's
    error propagates to (only) its own thread.
    """

    def __init__(
        self, solve_fn: Callable[[list, Optional[int]], list]
    ) -> None:
        self._solve = solve_fn
        # An explicit RLock (the Condition default) so _fire_if_complete
        # can re-enter lexically; wrap_lock makes the sanitizer track it.
        self._cond = threading.Condition(
            _san.wrap_lock("SolveRendezvous._cond", threading.RLock())
        )
        self._members: set[threading.Thread] = set()
        self._pending: list[_Pending] = []
        #: Diagnostics: fused batches, total rows, widest batch.
        self.batches = 0
        self.rows = 0
        self.max_width = 0

    def register(self, thread: threading.Thread) -> None:
        """Add a member; must happen before the thread starts."""
        with self._cond:
            self._members.add(thread)

    def leave(self) -> None:
        """Depart the gang (thread-exit); may trigger the pending batch."""
        with self._cond:
            self._members.discard(threading.current_thread())
            self._fire_if_complete()

    def participating(self) -> bool:
        """Whether the calling thread is a registered gang member."""
        return threading.current_thread() in self._members

    def solve(
        self, tasks: list, outer_budget: Optional[int] = None
    ) -> list:
        """Park a cold solve until the gang's batch fires; return its slice."""
        pending = _Pending(tasks, outer_budget)
        with self._cond:
            self._pending.append(pending)
            self._fire_if_complete()
            while not pending.done:
                self._cond.wait()
        if pending.error is not None:
            raise pending.error
        assert pending.results is not None
        return pending.results

    def _fire_if_complete(self) -> None:
        """Solve all parked requests once every member is parked.

        Callers already hold the condition; the reentrant ``with`` makes
        that invariant lexical (and visible to the lint rules) instead of
        a comment-only convention.  The solve itself runs on the calling
        thread while holding the lock — safe because every other member
        is waiting (that is the firing condition, and ``Condition.wait``
        releases the lock while parked), and new members cannot appear
        mid-run (registration precedes thread start).
        """
        with self._cond:
            if not self._pending or len(self._pending) < len(self._members):
                return
            batch, self._pending = self._pending, []
            groups: dict[Optional[int], list[_Pending]] = {}
            for pending in batch:
                groups.setdefault(pending.outer_budget, []).append(pending)
            # Group solve order is irrelevant: groups are disjoint and each
            # pending's result depends only on its own group's fused batch.
            for outer_budget, group in groups.items():  # repro: noqa[RPL003]
                fused = [task for pending in group for task in pending.tasks]
                self.batches += 1
                self.rows += len(fused)
                self.max_width = max(self.max_width, len(fused))
                try:
                    # Solving under the condition is safe (see docstring):
                    # every would-be contender is parked in wait().
                    solved = self._solve(fused, outer_budget)  # repro: noqa[RPL104]
                    offset = 0
                    for pending in group:
                        pending.results = solved[offset:offset + len(pending.tasks)]
                        offset += len(pending.tasks)
                except Exception:  # repro: noqa[RPL008] — re-solved per group below
                    for pending in group:
                        try:
                            pending.results = self._solve(  # repro: noqa[RPL104]
                                pending.tasks, outer_budget
                            )
                        except Exception as exc:
                            pending.error = exc
                if _san.active():
                    # Fingerprint the fused batch against solo re-solves
                    # (RPL154) — the lockstep bit-identity contract,
                    # checked on the batches this run actually produced.
                    _san.check_fused(
                        self._solve,
                        [(p.tasks, p.results) for p in group],
                        outer_budget,
                    )
                for pending in group:
                    pending.done = True
            self._cond.notify_all()


def run_gang(
    specs: Sequence[RunSpec],
    rendezvous: Optional[SolveRendezvous] = None,
    attach_to: Optional[Any] = None,
) -> dict[Hashable, Any]:
    """Run a plan's specs as gang-scheduled threads over shared caches.

    ``rendezvous`` fuses the gang's cold solves (the caller builds it
    around the backend's un-intercepted ``solve_tasks_multi`` and can
    read its batch diagnostics afterwards); ``attach_to`` is the backend
    whose ``_rendezvous`` hook routes cold solves there for the duration.
    With no rendezvous the specs simply run serially (nothing to fuse
    through — e.g. a ``--no-cache`` plan).

    Results are keyed by spec key in plan order; the first failing spec's
    exception (in plan order) is re-raised, matching the serial path.
    """
    if rendezvous is None or len(specs) == 1:
        return {spec.key: spec.execute() for spec in specs}
    results: dict[Hashable, Any] = {}
    errors: dict[Hashable, BaseException] = {}

    def _drive(spec: RunSpec) -> None:
        try:
            value = spec.execute()
        except BaseException as exc:
            errors[spec.key] = exc
        else:
            results[spec.key] = value
        finally:
            rendezvous.leave()

    threads = [
        threading.Thread(
            target=_drive, args=(spec,), name=f"gang-{i}", daemon=True
        )
        for i, spec in enumerate(specs)
    ]
    # Register everyone *before* anyone starts: an early-finishing spec
    # must not fire a batch that a not-yet-started gang-mate would have
    # joined (narrower batches are correct but slower; empty membership
    # views are a liveness hazard).
    for thread in threads:
        rendezvous.register(thread)
    # Save/restore rather than set/clear: a spec may itself run a nested
    # gang over the same persistent backend (replication drives fig4
    # in-process).  The ``participating()`` check keeps attachment safe
    # under nesting — a thread that is not a member of the currently
    # attached rendezvous simply solves directly, which is always correct.
    previous = getattr(attach_to, "_rendezvous", None)
    if attach_to is not None:
        attach_to._rendezvous = rendezvous
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        if attach_to is not None:
            attach_to._rendezvous = previous
    for spec in specs:
        if spec.key in errors:
            raise errors[spec.key]
    return {spec.key: results[spec.key] for spec in specs}
