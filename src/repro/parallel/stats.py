"""Cache accounting that survives worker processes and engine restarts.

The original drivers read cache counters straight off the backend object
they happened to hold.  That breaks twice over under the execution
engines: a pooled run's backends live (and die) inside worker processes,
so their counters never reach the parent — BENCH_parallel's infamous
``measurement_hits: 0`` — and a *persistent* shared-engine backend
accumulates counters across experiments, so absolute values double-count
whatever ran before.

Both problems have one fix: measure *deltas over a scope*, close to where
the work runs, and ship the deltas home with the results.

* Backends built through :func:`repro.experiments.runner.make_backend`
  (and the engine's persistent backends) self-register in a process-local
  weak registry via :func:`track_backend`.
* :class:`CacheStatsCapture` snapshots every tracked backend's counters on
  entry and exposes the non-negative counter delta accumulated inside the
  scope.  Backends created *during* the scope are pinned on registration,
  so a spec-local backend that would be garbage-collected before the
  after-snapshot is still accounted for.
* :class:`~repro.parallel.executor.ParallelExecutor` wraps every spec in a
  capture (in-process or inside the worker), returns the delta alongside
  the result, and merges the parts — one mechanism for every engine.

:func:`collect_cache_stats` / :func:`merge_cache_stats` moved here from
``repro.experiments.runner`` (which still re-exports them) because the
executor now depends on them and the experiments layer already depends on
the executor.
"""

from __future__ import annotations

import threading
import weakref
from typing import Optional

from repro.model.analytic import AnalyticBackend
from repro.model.base import MemoizedBackend, PerformanceBackend

__all__ = [
    "track_backend",
    "collect_cache_stats",
    "merge_cache_stats",
    "CacheStatsCapture",
]

# Module-level by necessity (the registry it guards is module-level and
# process-local); held only for short registry ops, never across fork,
# and each worker process re-creates it fresh at import.
_REGISTRY_LOCK = threading.Lock()  # repro: noqa[RPL106]
_TRACKED: "weakref.WeakSet[PerformanceBackend]" = weakref.WeakSet()
_SCOPES: list["CacheStatsCapture"] = []

#: Derived ratios are dropped before summing and recomputed after — the
#: sum of two rates is not the rate of the union.
_RATE_KEYS = ("hit_rate", "config_hit_rate")


def track_backend(backend: PerformanceBackend) -> PerformanceBackend:
    """Register a backend whose cache counters captures should observe.

    Returns the backend, so construction sites can wrap in place.  The
    registry holds weak references only; tracking never extends a
    backend's lifetime beyond any capture scope that pinned it.
    """
    with _REGISTRY_LOCK:
        _TRACKED.add(backend)
        for scope in _SCOPES:
            scope._pin(backend)
    return backend


def collect_cache_stats(backend: PerformanceBackend) -> Optional[dict[str, float]]:
    """The backend's cache counters, if it keeps any.

    Combines the measurement-cache counters of a
    :class:`~repro.model.base.MemoizedBackend` with the inner analytic
    backend's seed-independent solution-cache counters.  Returns None for
    backends with no caches (e.g. ``--no-cache`` runs).
    """
    stats: dict[str, float] = {}
    inner = backend
    if isinstance(backend, MemoizedBackend):
        if backend.enabled:
            for k, v in sorted(backend.stats.as_dict().items()):
                stats[f"measurement_{k}"] = v
        inner = backend.backend
    if isinstance(inner, AnalyticBackend):
        solution = inner.solution_cache_stats
        if solution.lookups or solution.size:
            for k, v in sorted(solution.as_dict().items()):
                stats[f"solution_{k}"] = v
    return stats or None


def merge_cache_stats(
    parts: list[Optional[dict[str, float]]],
) -> Optional[dict[str, float]]:
    """Sum counters collected from several backends (one per worker).

    Rates are recomputed from the summed hit/miss counts (summing rates
    would be meaningless).
    """
    merged: dict[str, float] = {}
    for part in parts:
        for key, value in sorted((part or {}).items()):
            merged[key] = merged.get(key, 0.0) + value
    if not merged:
        return None
    for prefix in ("measurement", "solution"):
        hits = merged.get(f"{prefix}_hits")
        misses = merged.get(f"{prefix}_misses")
        if hits is not None or misses is not None:
            total = (hits or 0.0) + (misses or 0.0)
            merged[f"{prefix}_hit_rate"] = (hits or 0.0) / total if total else 0.0
        config_cold = merged.get(f"{prefix}_config_cold_misses")
        if hits is not None and config_cold is not None:
            servable = hits + config_cold
            merged[f"{prefix}_config_hit_rate"] = (
                hits / servable if servable else 0.0
            )
    return merged


class CacheStatsCapture:
    """Counter deltas of every tracked backend across a ``with`` block.

    Entry snapshots the summed counters of all live tracked backends and
    pins them (strong references) for the scope, so a backend cannot be
    collected between snapshot and delta.  Backends registered *inside*
    the scope are pinned with an implicit all-zero before-snapshot — their
    full counters count as delta, which is exact for freshly-constructed
    backends (the only kind created mid-spec).

    ``delta()`` (valid during or after the scope) returns the merged
    non-negative counter increase, or ``None`` if nothing ticked —
    matching :func:`collect_cache_stats`'s "no caches" convention.
    """

    def __init__(self) -> None:
        self._pinned: list[PerformanceBackend] = []
        self._pinned_ids: set[int] = set()
        self._before: dict[str, float] = {}

    def _pin(self, backend: PerformanceBackend) -> None:
        if id(backend) not in self._pinned_ids:
            self._pinned_ids.add(id(backend))
            self._pinned.append(backend)

    def _counters(self) -> dict[str, float]:
        total: dict[str, float] = {}
        for backend in self._pinned:
            for key, value in sorted((collect_cache_stats(backend) or {}).items()):
                if key.endswith(_RATE_KEYS):
                    continue
                total[key] = total.get(key, 0.0) + value
        return total

    def __enter__(self) -> "CacheStatsCapture":
        with _REGISTRY_LOCK:
            for backend in list(_TRACKED):
                self._pin(backend)
            _SCOPES.append(self)
        self._before = self._counters()
        return self

    def __exit__(self, *exc_info: object) -> None:
        with _REGISTRY_LOCK:
            _SCOPES.remove(self)

    def delta(self) -> Optional[dict[str, float]]:
        """The counter increase observed inside the scope (None if zero).

        ``size`` is a gauge, not a counter: its delta can go negative
        under LRU eviction, so it is floored at 0 like everything else —
        the merged value then reads "entries added", which is the useful
        cross-worker number.
        """
        after = self._counters()
        out: dict[str, float] = {}
        ticked = False
        for key, value in sorted(after.items()):
            d = max(value - self._before.get(key, 0.0), 0.0)
            out[key] = d
            if d:
                ticked = True
        if not ticked:
            return None
        return merge_cache_stats([out])
