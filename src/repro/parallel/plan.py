"""Run specifications: the unit of work the parallel engine schedules.

A :class:`RunSpec` is one self-contained experiment run — a picklable
function plus its keyword arguments, labelled by a hashable key the
driver uses to collate results.  Specs never share mutable state: any
randomness enters through an explicit seed argument derived with
:func:`repro.util.rng.derive_seed`, which is what makes a plan's results
independent of execution order and therefore of the ``--jobs`` setting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Mapping

__all__ = ["RunSpec", "run_specs"]


@dataclass(frozen=True)
class RunSpec:
    """One independent run: ``fn(**kwargs)``, collated under ``key``.

    ``fn`` must be picklable (a module-level function, not a lambda or
    closure) so the spec can cross a process boundary, and ``kwargs``
    must contain everything the run needs — including its seed.
    """

    #: Hashable label the driver collates results by (unique per plan).
    key: Hashable
    #: Module-level function performing the run.
    fn: Callable[..., Any]
    #: Complete keyword arguments, seed included.
    kwargs: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if isinstance(self.kwargs, dict):
            object.__setattr__(self, "kwargs", dict(self.kwargs))
        name = getattr(self.fn, "__qualname__", "")
        if "<lambda>" in name or "<locals>" in name:
            raise ValueError(
                f"RunSpec fn must be a module-level function (picklable); "
                f"got {name!r}"
            )

    def execute(self) -> Any:
        """Perform the run in the current process."""
        return self.fn(**self.kwargs)


def run_specs(specs: list[RunSpec]) -> None:
    """Validate a plan: every spec's key must be unique.

    Raises ``ValueError`` on duplicates — two specs with one key would
    silently overwrite each other in the collated result map.
    """
    seen: set[Hashable] = set()
    for spec in specs:
        if spec.key in seen:
            raise ValueError(f"duplicate RunSpec key {spec.key!r}")
        seen.add(spec.key)
