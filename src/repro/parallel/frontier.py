"""Frontier scheduling: warm a speculative batch across worker processes.

:func:`prefetch_frontier` is the bridge between the speculative evaluator
(:mod:`repro.harmony.speculate`) and the parallel engine.  With ``jobs=1``
(or a backend with nothing to warm) it is exactly
``backend.prefetch_configs`` — the in-process batched solve.  With
``jobs>1`` the frontier is split round-robin into per-worker chunks; each
worker solves its chunk on a *fresh* analytic backend built from the
parent's solver settings and ships the resulting deterministic solutions
back, which the parent absorbs into its own solution memo.

Solutions are deterministic functions of (scenario, configuration, solver
settings) — no seeds, no shared state — so the absorbed entries are
bit-identical to what the parent would have solved itself, and results
are independent of the ``jobs`` setting, chunk assignment, and completion
order.  Prefetching only ever changes *when* a solution is computed, never
what any later measurement observes.

Under the shared execution engine (``--engine shared``) the chunks run on
the persistent worker fleet instead of a throwaway pool, and a shared-
store-backed parent backend re-publishes absorbed solutions to the
cross-process cache — a speculatively warmed configuration is then a hit
for every worker and every later experiment, not just for this parent.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cluster.memory import MemoryModel
from repro.harmony.parameter import Configuration
from repro.model.analytic import AnalyticBackend
from repro.model.base import MemoizedBackend, PerformanceBackend, Scenario
from repro.parallel.executor import ParallelExecutor
from repro.parallel.plan import RunSpec

__all__ = ["prefetch_frontier"]


def _prefetch_chunk(
    scenario: Scenario,
    configurations: Sequence[Configuration],
    memory: MemoryModel,
    max_outer: int,
    damping: float,
    tol: float,
    cache_size: int,
    outer_budget: Optional[int],
):
    """Worker entry point: solve one frontier chunk on a fresh backend.

    The fresh backend starts cold, so its exported memo is exactly the
    chunk's solutions (the noise model is irrelevant — prefetching never
    draws noise).
    """
    backend = AnalyticBackend(
        memory=memory,
        max_outer=max_outer,
        damping=damping,
        tol=tol,
        solution_cache_size=cache_size,
        prefetch_outer_budget=outer_budget,
    )
    try:
        backend.prefetch_configs(scenario, configurations)
    except Exception:  # repro: noqa[RPL008] - advisory warm-up only
        # A chunk that fails mid-warm still ships whatever it solved; the
        # unprefetched remainder just solves cold on the commit path.
        pass
    return backend.export_solutions()


def prefetch_frontier(
    backend: PerformanceBackend,
    scenario: Scenario,
    configurations: Sequence[Configuration],
    jobs: int = 1,
    executor: Optional[ParallelExecutor] = None,
) -> int:
    """Warm ``backend``'s deterministic caches for a candidate frontier.

    Returns the number of cold solutions added.  Fans the frontier over
    ``jobs`` worker processes when the backend is analytic (directly or
    under a :class:`MemoizedBackend` wrapper) and the frontier is worth
    splitting; otherwise delegates to the backend's own batched prefetch,
    which is a no-op for backends with no deterministic cache (DES).
    """
    inner = backend.backend if isinstance(backend, MemoizedBackend) else backend
    if (
        jobs <= 1
        or not isinstance(inner, AnalyticBackend)
        or inner.solution_cache_size == 0
        or len(configurations) < 2
    ):
        return backend.prefetch_configs(scenario, configurations)
    chunks = [list(configurations[i::jobs]) for i in range(jobs)]
    chunks = [c for c in chunks if c]
    specs = [
        RunSpec(
            key=i,
            fn=_prefetch_chunk,
            kwargs=dict(
                scenario=scenario,
                configurations=chunk,
                memory=inner.memory,
                max_outer=inner.max_outer,
                damping=inner.damping,
                tol=inner.tol,
                cache_size=inner.solution_cache_size,
                outer_budget=inner.prefetch_outer_budget,
            ),
        )
        for i, chunk in enumerate(chunks)
    ]
    runner = executor if executor is not None else ParallelExecutor(jobs)
    results = runner.run(specs)
    added = 0
    for key in sorted(results):
        added += inner.absorb_solutions(results[key])
    return added
