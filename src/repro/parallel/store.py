"""The cross-worker, cross-run shared cache store.

One :class:`SharedStore` backs both deterministic caches of the shared
execution engine:

* the analytic backend's solution memo (``("sol", key)`` entries), and
* the measurement memo (``("meas", key)`` entries).

It starts as a plain in-process dict (the ``jobs=1`` vectorized engine
needs no IPC) and is :meth:`attach`-ed to a ``multiprocessing.Manager``
dict proxy the moment a worker fleet spins up — existing entries migrate,
so warm-up work done serially seeds the fleet.  Every key is one of the
existing content-addressed fingerprint keys and every value is a
deterministic function of its key, which is what makes sharing safe:

* replication is idempotent — any writer writes the same bytes, so
  last-writer-wins races are invisible;
* the manager process serializes individual dict operations, so readers
  never observe a torn value;
* a hit is bit-identical to a recompute, so cache topology can never
  change results, only wall-clock time.

:class:`SharedMeasurementCache` and :class:`SharedAnalyticBackend` are the
store-aware drop-ins for :class:`~repro.model.base.MeasurementCache` and
:class:`~repro.model.analytic.AnalyticBackend`.  Both keep their inherited
in-process structures as an L1 (no IPC on repeat lookups) and fall back to
the store as an L2, absorbing L2 hits into L1.  Both are additionally
thread-safe, because the vectorized engine path runs many specs as
threads over *one* backend.
"""

from __future__ import annotations

import threading
from typing import Mapping, MutableMapping, Optional, Sequence

from repro.cluster.context import WorkloadContext
from repro.cluster.topology import ClusterSpec
from repro.harmony.parameter import Configuration
from repro.lint import sanitizer as _san
from repro.model.analytic import AnalyticBackend, AnalyticSolution
from repro.model.base import Measurement, MeasurementCache, Scenario

__all__ = ["SharedStore", "SharedMeasurementCache", "SharedAnalyticBackend"]


class SharedStore:
    """A content-addressed key/value store shared across workers and runs.

    Starts process-local; :meth:`attach` rebases it onto a cross-process
    mapping (a Manager dict proxy), migrating current contents.  Values
    must be deterministic per key — see the module docstring for why that
    makes every race benign.
    """

    def __init__(self, max_entries: int = 500_000) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self._data: MutableMapping = {}
        self._lock = _san.wrap_lock("SharedStore._lock", threading.Lock())
        self._attached = False
        self.max_entries = max_entries
        self._puts = 0
        self.hits = 0
        self.misses = 0
        #: Corrupt persisted entries dropped on load (never served).
        self.quarantined = 0

    @property
    def attached(self) -> bool:
        """Whether the store is backed by a cross-process mapping."""
        return self._attached

    def attach(self, remote: MutableMapping) -> None:
        """Rebase onto a cross-process mapping, migrating local entries.

        Idempotent for the same mapping; attaching twice to different
        mappings is a caller bug (two fleets over one store) and raises.
        """
        with self._lock:
            if self._attached:
                if remote is self._data:
                    return
                raise RuntimeError("store is already attached to another mapping")
            if self._data:
                # One-time bootstrap migration under the lock: the fleet
                # is not running yet (attach precedes the first pooled
                # run), so nothing can contend on this RPC.
                remote.update(self._data)  # repro: noqa[RPL104]
            self._data = remote
            self._attached = True

    def preload(self, entries: Mapping) -> int:
        """Seed the store from a persisted snapshot (before any fleet).

        Used by :class:`~repro.durability.diskstore.StorePersistence` at
        engine bring-up; runs before :meth:`attach`, so this is a plain
        local-dict bulk insert.  Returns the number of entries adopted.
        """
        with self._lock:
            self._data.update(entries)
        return len(entries)

    def snapshot(self) -> dict:
        """A point-in-time copy of the backing mapping (for persistence).

        One bulk IPC round-trip when attached; entries are deterministic
        per key, so a copy racing writers is merely missing the newest
        entries, never torn.
        """
        return dict(self._mapping())

    def _mapping(self) -> MutableMapping:
        """A stable snapshot of the backing mapping for one operation.

        Reads/writes go through a snapshot taken under the lock, so an
        operation never sees ``self._data`` swap mid-flight; the IPC
        round-trip itself happens with the lock released.
        """
        with self._lock:
            return self._data

    def get(self, key: tuple) -> Optional[object]:
        """The stored value, or None.  One IPC round-trip when attached."""
        value = self._mapping().get(key)
        with self._lock:
            if value is None:
                self.misses += 1
            else:
                self.hits += 1
        return value

    def peek(self, key: tuple) -> Optional[object]:
        """Like :meth:`get` but without touching the hit/miss counters."""
        return self._mapping().get(key)

    def put(self, key: tuple, value: object) -> None:
        """Publish one entry (idempotent: values are deterministic per key).

        The write happens outside the lock (it may be an IPC round-trip),
        then the backing-mapping identity is re-checked: if :meth:`attach`
        rebased the store mid-write, the entry landed in the abandoned
        local dict *after* its contents migrated, so the write is
        replayed into the new mapping.  ``attach`` runs at most once, so
        the loop runs at most twice.

        The size guard is amortized: every 512 puts the store checks its
        length (an IPC round-trip when attached) and, past ``max_entries``,
        clears wholesale.  Dropping entries can never change results —
        only re-solve cost — and wholesale clearing avoids per-put LRU
        bookkeeping traffic through the manager.
        """
        while True:
            data = self._mapping()
            if _san.active():
                _san.check_coherent("SharedStore", key, data.get(key), value)
            data[key] = value
            with self._lock:
                self._puts += 1
                check = self._puts % 512 == 0
                rebased = self._data is not data
            if not rebased:
                break
        data = self._mapping()
        if check and len(data) > self.max_entries:
            data.clear()

    def stats(self) -> dict[str, float]:
        """Store-level counters (diagnostics for benchmarks and reports)."""
        with self._lock:
            return {
                "entries": float(len(self._data)),
                "hits": float(self.hits),
                "misses": float(self.misses),
                "attached": float(self._attached),
                "quarantined": float(self.quarantined),
            }

    def __len__(self) -> int:
        return len(self._data)


class SharedMeasurementCache(MeasurementCache):
    """A measurement memo with the shared store as its second level.

    L1 is the inherited in-process LRU; an L1 miss consults the store and
    absorbs any hit locally (counted as a hit *and* a ``shared_hit``).
    Stores publish to both levels.  Thread-safe: the vectorized engine
    drives one instance from many spec threads.
    """

    def __init__(
        self, store: SharedStore, max_entries: Optional[int] = 100_000
    ) -> None:
        super().__init__(max_entries)
        self._shared = store
        self._lock = _san.wrap_lock(
            "SharedMeasurementCache._lock", threading.RLock()
        )

    def _insert(self, key: tuple, measurement: Measurement) -> None:
        # L1 writes must be serialized by the cache lock; the sanitizer
        # verifies the discipline holds on every path that reaches here.
        _san.expect_held(self._lock, "SharedMeasurementCache L1 insert")
        super()._insert(key, measurement)

    def lookup(
        self,
        scenario: Scenario,
        configuration: Configuration,
        seed: int,
        token: tuple = (),
    ) -> Optional[Measurement]:
        key = self.key(scenario, configuration, seed, token)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._hits += 1
                self._entries.move_to_end(key)
                return entry
        # Store probe outside the lock: it may be an IPC round-trip, and
        # a racing thread publishing the same key writes identical bytes.
        entry = self._shared.get(("meas", key))
        with self._lock:
            if entry is not None:
                if _san.active():
                    _san.check_coherent(
                        "measurement L1/L2", key, self._entries.get(key), entry
                    )
                self._hits += 1
                self._shared_hits += 1
                self._insert(key, entry)
                return entry
            self._misses += 1
            if key[:2] in self._config_seeds:
                self._seed_cold_misses += 1
            else:
                self._config_cold_misses += 1
        return None

    def store(
        self,
        scenario: Scenario,
        configuration: Configuration,
        seed: int,
        measurement: Measurement,
        token: tuple = (),
    ) -> None:
        key = self.key(scenario, configuration, seed, token)
        with self._lock:
            self._insert(key, measurement)
        self._shared.put(("meas", key), measurement)

    def clear(self) -> None:
        with self._lock:
            super().clear()


class SharedAnalyticBackend(AnalyticBackend):
    """An analytic backend whose solution memo spans workers and runs.

    The inherited per-process LRU stays as L1; misses consult the shared
    store and absorb hits (counted as solution ``shared_hits``).  Puts
    publish to both levels.  All memo accesses are lock-protected so the
    vectorized engine can run spec threads over one instance, and
    :meth:`_solve_cold` defers to an attached
    :class:`~repro.parallel.vector.SolveRendezvous` so cold solves from
    concurrent specs fuse into one mega-batch.
    """

    def __init__(self, store: SharedStore, **kwargs: object) -> None:
        super().__init__(**kwargs)  # type: ignore[arg-type]
        self._shared = store
        self._memo_lock = _san.wrap_lock(
            "SharedAnalyticBackend._memo_lock", threading.RLock()
        )
        #: Set (and cleared) by the vectorized engine around a gang run.
        self._rendezvous = None

    # -- memo: L1 (inherited, locked) over L2 (store) -------------------
    def _solution_get(self, key: tuple) -> Optional[AnalyticSolution]:
        if self.solution_cache_size == 0:
            return None
        with self._memo_lock:
            sol = self._solution_cache.get(key)
            if sol is not None:
                self._solution_hits += 1
                self._solution_cache.move_to_end(key)
                return sol
        sol = self._shared.get(("sol", key))
        with self._memo_lock:
            if sol is None:
                self._solution_misses += 1
            else:
                if _san.active():
                    _san.check_coherent(
                        "solution L1/L2", key, self._solution_cache.get(key), sol
                    )
                self._solution_hits += 1
                self._solution_shared_hits += 1
                super()._solution_put(key, sol)
        return sol

    def _solution_peek(self, key: tuple) -> Optional[AnalyticSolution]:
        if self.solution_cache_size == 0:
            return None
        with self._memo_lock:
            sol = self._solution_cache.get(key)
        if sol is None:
            sol = self._shared.peek(("sol", key))
        return sol

    def _solution_put(self, key: tuple, solution: AnalyticSolution) -> None:
        if self.solution_cache_size == 0:
            return
        with self._memo_lock:
            super()._solution_put(key, solution)
        self._shared.put(("sol", key), solution)

    def export_solutions(self) -> list[tuple[tuple, AnalyticSolution]]:
        with self._memo_lock:
            return super().export_solutions()

    def absorb_solutions(
        self, items: Sequence[tuple[tuple, AnalyticSolution]]
    ) -> int:
        # Absorbed solutions go through _solution_put, so they are also
        # published to the store — a speculative worker's chunk becomes
        # visible to the whole fleet, not just this process.
        with self._memo_lock:
            return super().absorb_solutions(items)

    # -- cold solves: fuse across concurrent specs ----------------------
    def _solve_cold(
        self,
        tasks: Sequence[
            tuple[ClusterSpec, Mapping[str, int], int, WorkloadContext, float]
        ],
        outer_budget: Optional[int] = None,
    ) -> list[Optional[AnalyticSolution]]:
        rendezvous = self._rendezvous
        if rendezvous is not None and rendezvous.participating():
            return rendezvous.solve(list(tasks), outer_budget)
        return super()._solve_cold(tasks, outer_budget=outer_budget)
