"""FaultyBackend: apply a fault plan to *any* performance backend.

The wrapper advances one virtual tick per :meth:`measure` call (the
tuning loop runs one measurement per iteration, so ticks line up with
iterations) and consults the :class:`~repro.faults.injector.FaultInjector`:

* ``fail``/``timeout`` ticks raise :class:`TransientMeasurementError` /
  :class:`MeasurementTimeout` without touching the inner backend — a
  *retry* is a new measure() call on a later tick, which may succeed.
* Crashed nodes are **removed from the measured cluster** (their
  parameters are dropped from the configuration), so the measurement's
  utilizations genuinely lack the node and the surviving tier peers absorb
  its load — exactly the signal §IV's reconfiguration algorithm watches.
* Degraded nodes keep serving with their service rates (CPU speed, disk,
  NIC) scaled down by the plan's factor.

A crash that would empty a tier raises :class:`ClusterOutageError` (the
site is down; no measurement is possible).  Everything is deterministic:
the wrapper holds no RNG of its own and the injector's verdicts are pure
functions of (plan, tick).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.cluster.node import NodeSpec
from repro.cluster.topology import ClusterSpec, NodePlacement
from repro.faults.injector import FaultInjector, FaultState
from repro.faults.plan import FaultPlan
from repro.harmony.parameter import Configuration
from repro.model.base import Measurement, PerformanceBackend, Scenario

__all__ = [
    "MeasurementFault",
    "TransientMeasurementError",
    "MeasurementTimeout",
    "ClusterOutageError",
    "FaultStats",
    "FaultyBackend",
    "degrade_spec",
]


class MeasurementFault(RuntimeError):
    """Base class for injected measurement failures."""


class TransientMeasurementError(MeasurementFault):
    """The measurement harness wedged; retrying later may succeed."""


class MeasurementTimeout(MeasurementFault):
    """The measurement did not complete within its window."""


class ClusterOutageError(MeasurementFault):
    """Crashes emptied a whole tier; the service is down."""


@dataclass
class FaultStats:
    """Counters of what the wrapper actually injected."""

    #: measure() calls served (ticks consumed).
    measurements: int = 0
    #: Ticks that raised a transient failure.
    transient_failures: int = 0
    #: Ticks that raised a timeout.
    timeouts: int = 0
    #: Ticks that raised a whole-tier outage.
    outages: int = 0
    #: Ticks measured on a cluster with at least one node missing/degraded.
    degraded_measurements: int = 0

    def as_dict(self) -> dict[str, int]:
        """Counters as a flat mapping (for reports and JSON)."""
        return {
            "measurements": self.measurements,
            "transient_failures": self.transient_failures,
            "timeouts": self.timeouts,
            "outages": self.outages,
            "degraded_measurements": self.degraded_measurements,
        }


def degrade_spec(spec: NodeSpec, factor: float) -> NodeSpec:
    """A node spec with every service rate scaled by ``factor``.

    Access latency scales inversely (a slow disk takes *longer* per seek);
    core count and memory are unchanged — a slow node, not a smaller one.
    """
    if not 0.0 < factor <= 1.0:
        raise ValueError(f"factor must be in (0, 1], got {factor}")
    return replace(
        spec,
        cpu_speed=spec.cpu_speed * factor,
        disk_access_time=spec.disk_access_time / factor,
        disk_transfer_rate=spec.disk_transfer_rate * factor,
        nic_rate=spec.nic_rate * factor,
    )


class FaultyBackend(PerformanceBackend):
    """Apply a :class:`FaultPlan` to measurements of any inner backend."""

    def __init__(
        self,
        backend: PerformanceBackend,
        plan: FaultPlan | FaultInjector,
    ) -> None:
        self.backend = backend
        self.injector = plan if isinstance(plan, FaultInjector) else FaultInjector(plan)
        self.stats = FaultStats()
        self._tick = 0
        # (cluster fingerprint, down, degraded) → degraded ClusterSpec.
        self._cluster_memo: dict[tuple, ClusterSpec] = {}

    @property
    def plan(self) -> FaultPlan:
        """The fault plan being applied."""
        return self.injector.plan

    @property
    def tick(self) -> int:
        """Virtual time: measure() calls served so far."""
        return self._tick

    def advance(self, ticks: int) -> None:
        """Let ``ticks`` of virtual time pass without measuring.

        This is what a resilience policy's backoff *is*: waiting on the
        fault timeline so a transient window can clear before the retry.
        """
        if ticks < 0:
            raise ValueError(f"ticks must be >= 0, got {ticks}")
        self._tick += ticks

    # ------------------------------------------------------------------
    def degraded_cluster(
        self, cluster: ClusterSpec, state: FaultState
    ) -> ClusterSpec:
        """``cluster`` with the state's crashes and slowdowns applied."""
        key = (cluster.fingerprint(), state.down, state.degraded)
        memo = self._cluster_memo.get(key)
        if memo is not None:
            return memo
        factors = dict(state.degraded)
        placements = []
        for p in cluster.placements:
            if p.node_id in state.down:
                continue
            factor = factors.get(p.node_id)
            if factor is not None:
                p = NodePlacement(p.node_id, p.role, degrade_spec(p.spec, factor))
            placements.append(p)
        try:
            degraded = ClusterSpec(placements, name=cluster.name)
        except ValueError as err:
            # A tier lost its last node: total outage, not a layout.
            raise ClusterOutageError(str(err)) from None
        self._cluster_memo[key] = degraded
        return degraded

    def apply_state(
        self,
        scenario: Scenario,
        configuration: Configuration,
        state: FaultState,
    ) -> tuple[Scenario, Configuration]:
        """The (scenario, configuration) actually measured under ``state``.

        Crashed nodes' parameters are dropped from the configuration;
        work-line partitions are dropped too (lines are tied to the full
        layout — the per-line WIPS signal degrades to the global one while
        nodes are missing).  Degradation-only states keep the partition.
        """
        if not state.degrades_cluster:
            return scenario, configuration
        cluster = self.degraded_cluster(scenario.cluster, state)
        if state.down:
            surviving = set(cluster.node_ids)
            configuration = Configuration(
                {
                    name: value
                    for name, value in configuration.items()
                    if name.split(".", 1)[0] in surviving
                }
            )
            return scenario.with_cluster(cluster), configuration
        # Degradations keep every node (and any partition) in place.
        return (
            Scenario(
                cluster=cluster,
                mix=scenario.mix,
                population=scenario.population,
                catalog=scenario.catalog,
                behavior=scenario.behavior,
                work_lines=scenario.work_lines,
            ),
            configuration,
        )

    # ------------------------------------------------------------------
    def measure(
        self,
        scenario: Scenario,
        configuration: Configuration,
        seed: int = 0,
    ) -> Measurement:
        """Measure one point under the fault state of the current tick."""
        tick = self._tick
        self._tick += 1
        self.stats.measurements += 1
        state = self.injector.state_at(tick)
        if state.timeout:
            self.stats.timeouts += 1
            raise MeasurementTimeout(f"measurement timed out (tick {tick})")
        if state.fail:
            self.stats.transient_failures += 1
            raise TransientMeasurementError(
                f"transient measurement failure (tick {tick})"
            )
        if not state.degrades_cluster:
            return self.backend.measure(scenario, configuration, seed=seed)
        self.stats.degraded_measurements += 1
        try:
            faulted_scenario, faulted_config = self.apply_state(
                scenario, configuration, state
            )
        except ClusterOutageError:
            self.stats.outages += 1
            raise
        return self.backend.measure(faulted_scenario, faulted_config, seed=seed)

    def measure_batch(
        self,
        scenario: Scenario,
        requests: Sequence[tuple[Configuration, int]],
    ) -> list[Measurement]:
        """Measure a batch point by point — each point is one tick.

        Batching across a fault boundary could hide a mid-batch crash, so
        the wrapper deliberately forgoes the inner backend's amortized
        path; chaos runs trade that speed for fault fidelity.
        """
        return [self.measure(scenario, cfg, seed=seed) for cfg, seed in requests]

    def prefetch_configs(
        self,
        scenario: Scenario,
        configurations: Sequence[Configuration],
    ) -> int:
        """Forward the advisory prefetch; prefetches consume no ticks.

        Speculative warmth is computed for the *nominal* cluster — while
        nodes are down the warmed solutions simply go unused (the degraded
        scenario has a different fingerprint), which costs latency, never
        correctness.
        """
        return self.backend.prefetch_configs(scenario, configurations)

    def measurement_cache_token(self) -> tuple:
        """Delegate: faults perturb points, not the backend's key space."""
        return self.backend.measurement_cache_token()
