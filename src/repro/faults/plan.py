"""Fault plans: the declarative, seedable schedule of injected failures.

A :class:`FaultPlan` is a list of :class:`FaultEvent`\\ s on a *virtual*
timeline — ticks, one per measurement iteration — plus an optional seeded
rate of random transient failures.  Plans are plain data: JSON round-trip
(:meth:`FaultPlan.to_json` / :meth:`FaultPlan.from_json`), validated on
construction, and hashable into a :meth:`fingerprint` so runs under a plan
are content-addressable like everything else in the repo.

Event kinds (the fault model of docs/robustness.md):

``crash`` / ``recover``
    Node leaves / rejoins its tier.  A crashed node's capacity is removed
    from the measured cluster, which is what the §IV reconfiguration
    algorithm reacts to.
``degrade`` / ``restore``
    Slow-node fault: the node's service rates (CPU speed, disk, NIC) are
    scaled by ``factor`` ∈ (0, 1] until restored.
``fail``
    ``count`` consecutive measurements starting at ``at`` fail transiently
    (the harness wedged; a retry later can succeed).
``timeout``
    ``count`` consecutive measurements starting at ``at`` time out (same
    handling as ``fail`` but distinguishable in reports).
``flap``
    The node alternates crash/recover every ``period`` ticks for
    ``cycles`` down/up cycles.

No wall clock anywhere: ticks are measurement indexes, so the same plan
and seed reproduce the same fault trajectory bit for bit.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Optional

__all__ = ["FaultEvent", "FaultPlan", "EVENT_KINDS"]

#: Every recognised event kind.
EVENT_KINDS = (
    "crash",
    "recover",
    "degrade",
    "restore",
    "fail",
    "timeout",
    "flap",
)

#: Kinds that target a node.
_NODE_KINDS = frozenset({"crash", "recover", "degrade", "restore", "flap"})
#: Kinds that fail measurements outright.
_MEASUREMENT_KINDS = frozenset({"fail", "timeout"})


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault on the virtual (tick) timeline."""

    kind: str
    #: Tick (measurement index) the event takes effect at.
    at: int
    #: Target node for node-scoped kinds; None for measurement kinds.
    node: Optional[str] = None
    #: Service-rate multiplier for ``degrade`` (0 < factor <= 1).
    factor: Optional[float] = None
    #: Consecutive ticks affected (``fail``/``timeout``), default 1.
    count: int = 1
    #: Half-cycle length in ticks (``flap``).
    period: Optional[int] = None
    #: Number of down/up cycles (``flap``).
    cycles: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {EVENT_KINDS}"
            )
        if self.at < 0:
            raise ValueError(f"event tick must be >= 0, got {self.at}")
        if self.kind in _NODE_KINDS and not self.node:
            raise ValueError(f"{self.kind!r} events need a target node")
        if self.kind in _MEASUREMENT_KINDS and self.node is not None:
            raise ValueError(f"{self.kind!r} events take no node")
        if self.kind == "degrade":
            if self.factor is None or not 0.0 < self.factor <= 1.0:
                raise ValueError(
                    f"degrade needs a factor in (0, 1], got {self.factor}"
                )
        elif self.factor is not None:
            raise ValueError(f"{self.kind!r} events take no factor")
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if self.kind == "flap":
            if self.period is None or self.period < 1:
                raise ValueError(f"flap needs a period >= 1, got {self.period}")
            if self.cycles is None or self.cycles < 1:
                raise ValueError(f"flap needs cycles >= 1, got {self.cycles}")
        elif self.period is not None or self.cycles is not None:
            raise ValueError(f"{self.kind!r} events take no period/cycles")

    def to_dict(self) -> dict:
        """JSON-ready mapping (omits unset optionals)."""
        out: dict = {"kind": self.kind, "at": self.at}
        if self.node is not None:
            out["node"] = self.node
        if self.factor is not None:
            out["factor"] = self.factor
        if self.count != 1:
            out["count"] = self.count
        if self.period is not None:
            out["period"] = self.period
        if self.cycles is not None:
            out["cycles"] = self.cycles
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        """Parse one event object (strict: unknown keys are errors)."""
        if not isinstance(data, dict):
            raise ValueError(f"fault event must be an object, got {data!r}")
        known = {"kind", "at", "node", "factor", "count", "period", "cycles"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault event keys: {sorted(unknown)}")
        try:
            return cls(
                kind=str(data["kind"]),
                at=int(data["at"]),
                node=data.get("node"),
                factor=(
                    float(data["factor"]) if data.get("factor") is not None else None
                ),
                count=int(data.get("count", 1)),
                period=(
                    int(data["period"]) if data.get("period") is not None else None
                ),
                cycles=(
                    int(data["cycles"]) if data.get("cycles") is not None else None
                ),
            )
        except KeyError as err:
            raise ValueError(f"fault event missing field {err.args[0]!r}") from None


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injected faults.

    ``seed`` drives the random transient-failure stream (one independent
    draw per tick, so the stream does not depend on retry history);
    ``transient_rate`` is the per-tick probability of a spurious
    measurement failure on top of the scheduled events.
    """

    events: tuple[FaultEvent, ...] = ()
    seed: int = 0
    transient_rate: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        if self.seed < 0:
            raise ValueError(f"seed must be non-negative, got {self.seed}")
        if not 0.0 <= self.transient_rate < 1.0:
            raise ValueError(
                f"transient_rate must be in [0, 1), got {self.transient_rate}"
            )

    # -- identity -------------------------------------------------------
    def fingerprint(self) -> str:
        """Content hash of the plan (events + seed + transient rate)."""
        h = hashlib.sha256()
        h.update(
            repr(
                (
                    tuple(sorted(
                        tuple(sorted(e.to_dict().items())) for e in self.events
                    )),
                    self.seed,
                    self.transient_rate,
                )
            ).encode()
        )
        return h.hexdigest()

    @property
    def horizon(self) -> int:
        """First tick after which no *scheduled* event changes state."""
        last = 0
        for e in self.events:
            if e.kind == "flap":
                assert e.period is not None and e.cycles is not None
                last = max(last, e.at + 2 * e.period * e.cycles)
            else:
                last = max(last, e.at + e.count)
        return last

    def nodes(self) -> tuple[str, ...]:
        """Every node the plan touches, sorted."""
        return tuple(sorted({e.node for e in self.events if e.node is not None}))

    # -- JSON -----------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready mapping."""
        return {
            "seed": self.seed,
            "transient_rate": self.transient_rate,
            "events": [e.to_dict() for e in self.events],
        }

    def to_json(self, indent: int = 2) -> str:
        """Serialize the plan as JSON text."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Parse a plan mapping (strict: unknown keys are errors)."""
        if not isinstance(data, dict):
            raise ValueError(f"fault plan must be an object, got {data!r}")
        unknown = set(data) - {"seed", "transient_rate", "events"}
        if unknown:
            raise ValueError(f"unknown fault plan keys: {sorted(unknown)}")
        events = data.get("events", [])
        if not isinstance(events, list):
            raise ValueError("events must be a list")
        return cls(
            events=tuple(FaultEvent.from_dict(e) for e in events),
            seed=int(data.get("seed", 0)),
            transient_rate=float(data.get("transient_rate", 0.0)),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan from JSON text."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as err:
            raise ValueError(f"invalid fault plan JSON: {err}") from None
        return cls.from_dict(data)

    @classmethod
    def load(cls, path) -> "FaultPlan":
        """Read a plan from a JSON file."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def save(self, path) -> None:
        """Write the plan to a JSON file (atomically)."""
        from repro.util.serialization import atomic_write_text

        atomic_write_text(path, self.to_json() + "\n")

    # -- convenience constructors --------------------------------------
    @classmethod
    def node_crash(
        cls,
        node: str,
        at: int,
        recover_at: Optional[int] = None,
        seed: int = 0,
        transient_rate: float = 0.0,
    ) -> "FaultPlan":
        """The canonical chaos scenario: one node crash, optional recovery."""
        events: list[FaultEvent] = [FaultEvent("crash", at, node=node)]
        if recover_at is not None:
            if recover_at <= at:
                raise ValueError("recover_at must come after the crash tick")
            events.append(FaultEvent("recover", recover_at, node=node))
        return cls(
            events=tuple(events), seed=seed, transient_rate=transient_rate
        )
