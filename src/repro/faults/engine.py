"""Engine-layer fault injection: failures of the *harness*, not the cluster.

PR 4's :class:`~repro.faults.plan.FaultPlan` models the system under test
misbehaving; an :class:`EngineFaultPlan` models the measurement machinery
itself breaking — a pool worker SIGKILLed mid-plan, the fleet refusing to
(re)build, a worker stalling past its (virtual) deadline, a store segment
torn mid-write by a crash.  Like everything else in the repo the schedule
is deterministic and clock-free: faults fire by *ordinal* (the Nth pooled
run, the Nth fleet build, the Nth segment write), so the same plan
reproduces the same failure trajectory bit for bit.

The responses under test form the degradation ladder:

* a killed worker ⇒ the shared fleet tears down, rebuilds, and retries
  the plan once (specs are idempotent, so a re-run is safe);
* a fleet that cannot be (re)built ⇒ :class:`FleetUnavailableError`, and
  :class:`~repro.parallel.executor.ParallelExecutor` degrades
  shared → process → inline rather than aborting the run;
* a slow worker ⇒ the attempt is abandoned on the virtual timeline and
  the plan retried on the same fleet;
* a torn segment write ⇒ the next load quarantines the damaged entries
  (counted, never served) and keeps the rest.

Every response increments a counter on :class:`EngineResilienceStats`, so
chaos reports can show what the engine survived next to what the modeled
cluster survived.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "EngineFaultInjector",
    "EngineFaultPlan",
    "EngineResilienceStats",
    "FleetUnavailableError",
    "active_injector",
    "install_engine_faults",
]


class FleetUnavailableError(RuntimeError):
    """A worker fleet (or process pool) could not be built or rebuilt.

    The signal that drives the degradation ladder: callers catch this and
    fall back to the next-simpler engine instead of failing the run.
    """


@dataclass(frozen=True)
class EngineFaultPlan:
    """A deterministic schedule of execution-engine failures.

    All indexes are 1-based ordinals of the corresponding operation
    since the injector was installed.
    """

    #: Pooled runs whose first attempt dies as if a worker was killed
    #: (surfaces as BrokenProcessPool; the fleet rebuilds and retries).
    kill_worker_runs: tuple[int, ...] = ()
    #: Number of initial fleet/pool build attempts that fail outright.
    build_failures: int = 0
    #: Pooled runs whose first attempt stalls past the virtual deadline
    #: (abandoned and retried on the same fleet).
    slow_runs: tuple[int, ...] = ()
    #: Store segment writes that land torn (crash mid-write): the file
    #: appears, but its last frame is truncated.
    torn_store_writes: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "kill_worker_runs", tuple(sorted(self.kill_worker_runs))
        )
        object.__setattr__(self, "slow_runs", tuple(sorted(self.slow_runs)))
        object.__setattr__(
            self, "torn_store_writes", tuple(sorted(self.torn_store_writes))
        )
        for name in ("kill_worker_runs", "slow_runs", "torn_store_writes"):
            ordinals = getattr(self, name)
            if any(i < 1 for i in ordinals):
                raise ValueError(f"{name} ordinals are 1-based, got {ordinals}")
        if self.build_failures < 0:
            raise ValueError(
                f"build_failures must be >= 0, got {self.build_failures}"
            )
        overlap = set(self.kill_worker_runs) & set(self.slow_runs)
        if overlap:
            raise ValueError(
                f"runs {sorted(overlap)} scheduled as both killed and slow"
            )

    # -- identity -------------------------------------------------------
    def fingerprint(self) -> str:
        """Content hash of the plan."""
        h = hashlib.sha256()
        h.update(
            repr(
                (
                    self.kill_worker_runs,
                    self.build_failures,
                    self.slow_runs,
                    self.torn_store_writes,
                )
            ).encode()
        )
        return h.hexdigest()

    # -- JSON -----------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready mapping."""
        return {
            "kill_worker_runs": list(self.kill_worker_runs),
            "build_failures": self.build_failures,
            "slow_runs": list(self.slow_runs),
            "torn_store_writes": list(self.torn_store_writes),
        }

    def to_json(self, indent: int = 2) -> str:
        """Serialize the plan as JSON text."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "EngineFaultPlan":
        """Parse a plan mapping (strict: unknown keys are errors)."""
        if not isinstance(data, dict):
            raise ValueError(f"engine fault plan must be an object, got {data!r}")
        known = {
            "kill_worker_runs",
            "build_failures",
            "slow_runs",
            "torn_store_writes",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown engine fault plan keys: {sorted(unknown)}")
        return cls(
            kill_worker_runs=tuple(
                int(i) for i in data.get("kill_worker_runs", [])
            ),
            build_failures=int(data.get("build_failures", 0)),
            slow_runs=tuple(int(i) for i in data.get("slow_runs", [])),
            torn_store_writes=tuple(
                int(i) for i in data.get("torn_store_writes", [])
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "EngineFaultPlan":
        """Parse a plan from JSON text."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as err:
            raise ValueError(f"invalid engine fault plan JSON: {err}") from None
        return cls.from_dict(data)

    @classmethod
    def load(cls, path) -> "EngineFaultPlan":
        """Read a plan from a JSON file."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def save(self, path) -> None:
        """Write the plan to a JSON file (atomically)."""
        from repro.util.serialization import atomic_write_text

        atomic_write_text(path, self.to_json() + "\n")


@dataclass
class EngineResilienceStats:
    """What the engine survived (and how) under injected faults."""

    #: Pooled-run attempts lost to a killed worker.
    worker_kills: int = 0
    #: Fleet teardown+rebuild cycles after a kill.
    fleet_rebuilds: int = 0
    #: Pooled-run attempts abandoned to a slow-worker virtual timeout.
    slow_timeouts: int = 0
    #: Fleet/pool build attempts that failed.
    build_failures: int = 0
    #: Degradations taken, in order (e.g. "shared->process").
    degradations: list = field(default_factory=list)
    #: Store segments written torn by an injected crash.
    torn_writes: int = 0

    def as_dict(self) -> dict:
        """Counters as a flat mapping (for reports and JSON)."""
        return {
            "worker_kills": self.worker_kills,
            "fleet_rebuilds": self.fleet_rebuilds,
            "slow_timeouts": self.slow_timeouts,
            "build_failures": self.build_failures,
            "degradations": list(self.degradations),
            "torn_writes": self.torn_writes,
        }


class EngineFaultInjector:
    """Runtime state of an :class:`EngineFaultPlan`.

    The engine and executor consult the injector at each decision point;
    the injector counts the operation and answers whether the plan says
    it fails.  Ordinal counters are monotone, so a retried operation is a
    *new* ordinal — exactly like a real flaky environment, a retry can
    hit the next scheduled fault.
    """

    def __init__(self, plan: EngineFaultPlan) -> None:
        self.plan = plan
        self.stats = EngineResilienceStats()
        self._pool_runs = 0
        self._builds = 0
        self._segment_writes = 0

    # -- decision points -------------------------------------------------
    def on_build(self) -> bool:
        """Count a fleet/pool build attempt; True means it fails."""
        self._builds += 1
        if self._builds <= self.plan.build_failures:
            self.stats.build_failures += 1
            return True
        return False

    def on_pool_run(self) -> Optional[str]:
        """Count a pooled-run attempt; returns ``"kill"``/``"slow"``/None."""
        self._pool_runs += 1
        if self._pool_runs in self.plan.kill_worker_runs:
            self.stats.worker_kills += 1
            return "kill"
        if self._pool_runs in self.plan.slow_runs:
            self.stats.slow_timeouts += 1
            return "slow"
        return None

    def on_segment_write(self) -> bool:
        """Count a store segment write; True means it lands torn."""
        self._segment_writes += 1
        if self._segment_writes in self.plan.torn_store_writes:
            self.stats.torn_writes += 1
            return True
        return False

    # -- responses (for the ladder's bookkeeping) -------------------------
    def record_rebuild(self) -> None:
        """A fleet teardown+rebuild cycle completed."""
        self.stats.fleet_rebuilds += 1

    def record_degradation(self, step: str) -> None:
        """One rung of the ladder was taken (e.g. ``"shared->process"``)."""
        self.stats.degradations.append(step)


#: Process-global injector (installed via :func:`install_engine_faults`);
#: None means no engine faults are active.
_ACTIVE: Optional[EngineFaultInjector] = None


def install_engine_faults(
    plan: Optional[EngineFaultPlan],
) -> Optional[EngineFaultInjector]:
    """Install (or clear, with None) the process-global engine-fault plan.

    Returns the installed injector so callers can read its stats after
    the run.  Explicit injectors passed to the engine/executor take
    precedence; the global is the CLI's hook.
    """
    global _ACTIVE
    _ACTIVE = EngineFaultInjector(plan) if plan is not None else None
    return _ACTIVE


def active_injector() -> Optional[EngineFaultInjector]:
    """The process-global injector, if one is installed."""
    return _ACTIVE
