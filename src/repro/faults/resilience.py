"""Resilience policies: how the tuning session treats failed measurements.

A :class:`ResiliencePolicy` replaces the old report-as-zero path: a failed
measurement is retried a bounded number of times with a deterministic
*virtual-time* backoff (ticks on the fault timeline, never the wall
clock), and only when retries are exhausted does one of the terminal
responses apply:

``penalty``
    Report the worst performance observed so far (BestConfig's rule: a
    failed trial must not look *better* than any real one, but reporting
    an artificial 0.0 would let one transient failure steer the simplex
    permanently).
``skip``
    Report nothing.  Strategy ``ask()`` is idempotent until ``tell()``,
    so the next step re-asks the same configuration — the failure is
    attributed to the environment, not the configuration.
``substitute``
    Report the last successfully measured performance, leaving the
    search neutral about the configuration.

Independently of the terminal response, configurations whose retries
exhaust repeatedly are *quarantined* (auto-penalized without wasting
measurements), and after enough consecutive failed steps the session
*rolls back*: it measures and deploys the best-known configuration while
the failing candidate is penalized.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ON_EXHAUSTED", "ResiliencePolicy", "ResilienceStats", "backoff_delay"]

#: Terminal responses once retries are exhausted.
ON_EXHAUSTED = ("penalty", "skip", "substitute")


def backoff_delay(attempt: int, base: int = 1, cap: int = 8) -> int:
    """Virtual ticks to wait before retry ``attempt`` (1-based).

    Capped exponential: ``min(cap, base * 2**(attempt-1))``.  Purely a
    function of the attempt number — no jitter, no clock — so retry
    timelines are reproducible.
    """
    if attempt < 1:
        raise ValueError(f"attempt must be >= 1, got {attempt}")
    if base < 0 or cap < 0:
        raise ValueError("base and cap must be non-negative")
    return min(cap, base * 2 ** (attempt - 1))


@dataclass(frozen=True)
class ResiliencePolicy:
    """How a tuning session responds to measurement failures."""

    #: Retries per step before the terminal response applies.
    max_retries: int = 2
    #: Backoff schedule: wait min(cap, base * 2**(attempt-1)) virtual ticks.
    backoff_base: int = 1
    backoff_cap: int = 8
    #: Terminal response once retries are exhausted (see module docs).
    on_exhausted: str = "penalty"
    #: Quarantine a configuration after this many exhausted steps on it
    #: (0 disables quarantine).
    quarantine_after: int = 2
    #: Roll back to the best-known configuration after this many
    #: *consecutive* exhausted steps (0 disables rollback).
    rollback_after: int = 3

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff_base and backoff_cap must be >= 0")
        if self.on_exhausted not in ON_EXHAUSTED:
            raise ValueError(
                f"on_exhausted must be one of {ON_EXHAUSTED}, "
                f"got {self.on_exhausted!r}"
            )
        if self.quarantine_after < 0:
            raise ValueError(
                f"quarantine_after must be >= 0, got {self.quarantine_after}"
            )
        if self.rollback_after < 0:
            raise ValueError(
                f"rollback_after must be >= 0, got {self.rollback_after}"
            )

    def delay(self, attempt: int) -> int:
        """The backoff before retry ``attempt`` under this policy."""
        return backoff_delay(attempt, self.backoff_base, self.backoff_cap)


@dataclass
class ResilienceStats:
    """What the policy actually did during a session."""

    #: Individual failed measurement attempts (including retries).
    failures: int = 0
    #: Retry attempts issued.
    retries: int = 0
    #: Virtual ticks spent waiting in backoff.
    backoff_ticks: int = 0
    #: Steps whose retries were exhausted.
    exhausted_steps: int = 0
    #: Steps resolved by each terminal response.
    penalties: int = 0
    skips: int = 0
    substitutions: int = 0
    #: Steps answered from quarantine without measuring.
    quarantine_hits: int = 0
    #: Configurations currently quarantined.
    quarantined: int = 0
    #: Rollback measurements of the best-known configuration.
    rollbacks: int = 0
    #: Engine-layer counters absorbed from an
    #: :class:`~repro.faults.engine.EngineResilienceStats` (None until a
    #: run under engine faults calls :meth:`absorb_engine`).  Cluster
    #: faults break *measurements*; engine faults break the machinery
    #: that runs them — reports show both layers side by side.
    engine: dict = None  # type: ignore[assignment]

    def absorb_engine(self, engine_stats) -> None:
        """Surface engine-layer resilience counters alongside the
        session-layer ones (merging if absorbed more than once)."""
        counters = engine_stats.as_dict()
        if self.engine is None:
            self.engine = counters
            return
        for key, value in counters.items():
            if isinstance(value, list):
                self.engine[key] = list(self.engine.get(key, [])) + value
            else:
                self.engine[key] = self.engine.get(key, 0) + value

    def as_dict(self) -> dict:
        """Counters as a flat mapping (for reports and JSON)."""
        out: dict = {
            "failures": self.failures,
            "retries": self.retries,
            "backoff_ticks": self.backoff_ticks,
            "exhausted_steps": self.exhausted_steps,
            "penalties": self.penalties,
            "skips": self.skips,
            "substitutions": self.substitutions,
            "quarantine_hits": self.quarantine_hits,
            "quarantined": self.quarantined,
            "rollbacks": self.rollbacks,
        }
        if self.engine is not None:
            out["engine"] = dict(self.engine)
        return out
