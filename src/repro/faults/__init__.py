"""Deterministic fault injection and resilience policies.

Everything here lives on a *virtual* timeline — ticks, one per
measurement — and every random choice is seeded, so a fault plan plus a
seed reproduces the same failure trajectory bit for bit.  See
``docs/robustness.md`` for the fault model and policy semantics.
"""

from repro.faults.engine import (
    EngineFaultInjector,
    EngineFaultPlan,
    EngineResilienceStats,
    FleetUnavailableError,
    active_injector,
    install_engine_faults,
)
from repro.faults.injector import FaultInjector, FaultState
from repro.faults.plan import EVENT_KINDS, FaultEvent, FaultPlan
from repro.faults.resilience import (
    ON_EXHAUSTED,
    ResiliencePolicy,
    ResilienceStats,
    backoff_delay,
)

#: Exports of :mod:`repro.faults.backend`, loaded lazily (PEP 562): that
#: module pulls in the whole model/cluster stack, and eager-importing it
#: here would close an import cycle with :mod:`repro.harmony` (whose net
#: layer uses :func:`backoff_delay` from the dependency-free resilience
#: module).
_BACKEND_EXPORTS = (
    "ClusterOutageError",
    "FaultStats",
    "FaultyBackend",
    "MeasurementFault",
    "MeasurementTimeout",
    "TransientMeasurementError",
    "degrade_spec",
)

__all__ = [
    "EVENT_KINDS",
    "EngineFaultInjector",
    "EngineFaultPlan",
    "EngineResilienceStats",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "FaultState",
    "FleetUnavailableError",
    "active_injector",
    "install_engine_faults",
    "ON_EXHAUSTED",
    "ResiliencePolicy",
    "ResilienceStats",
    "backoff_delay",
    *_BACKEND_EXPORTS,
]


def __getattr__(name):
    if name in _BACKEND_EXPORTS:
        from repro.faults import backend

        return getattr(backend, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
