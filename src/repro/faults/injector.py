"""The fault injector: plan → per-tick cluster/measurement state.

:meth:`FaultInjector.state_at` is a *pure function* of (plan, tick): it
folds every scheduled event up to the tick into a :class:`FaultState`
(which nodes are down, which are degraded and by how much, whether the
measurement at this tick fails or times out).  Random transient failures
draw one independent stream per tick — ``spawn_rng(seed, "faults",
"transient", tick)`` — so the verdict at tick *t* never depends on how
many retries happened before it, which is what makes resilience
trajectories golden-testable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.plan import FaultEvent, FaultPlan
from repro.util.rng import spawn_rng

__all__ = ["FaultState", "FaultInjector"]

#: A clean tick: nothing down, nothing degraded, measurement succeeds.
_CLEAN_KEY = (frozenset(), (), False, False)


@dataclass(frozen=True)
class FaultState:
    """Everything injected at one tick."""

    #: Nodes currently crashed (their capacity is gone).
    down: frozenset[str] = frozenset()
    #: (node, service-rate factor) pairs, sorted by node, factor in (0, 1).
    degraded: tuple[tuple[str, float], ...] = ()
    #: The measurement at this tick fails transiently.
    fail: bool = False
    #: The measurement at this tick times out.
    timeout: bool = False

    @property
    def clean(self) -> bool:
        """True when the tick is fault-free."""
        return (
            not self.down and not self.degraded
            and not self.fail and not self.timeout
        )

    @property
    def degrades_cluster(self) -> bool:
        """True when the measured cluster differs from the nominal one."""
        return bool(self.down or self.degraded)


def _expand(events: tuple[FaultEvent, ...]) -> list[FaultEvent]:
    """Rewrite flap events into their crash/recover pairs.

    Expansion order is (tick, original index), so two events landing on
    the same tick apply in plan order — deterministic by construction.
    """
    expanded: list[tuple[int, int, FaultEvent]] = []
    for idx, event in enumerate(events):
        if event.kind != "flap":
            expanded.append((event.at, idx, event))
            continue
        assert event.period is not None and event.cycles is not None
        for cycle in range(event.cycles):
            down_at = event.at + 2 * cycle * event.period
            up_at = down_at + event.period
            expanded.append(
                (down_at, idx, FaultEvent("crash", down_at, node=event.node))
            )
            expanded.append(
                (up_at, idx, FaultEvent("recover", up_at, node=event.node))
            )
    expanded.sort(key=lambda entry: (entry[0], entry[1]))
    return [event for _, _, event in expanded]


class FaultInjector:
    """Evaluate a :class:`FaultPlan` on the virtual (tick) timeline."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._events = _expand(plan.events)
        # FaultState values are shared across ticks with identical content
        # so FaultyBackend can key its degraded-cluster memo on them.
        self._state_cache: dict[tuple, FaultState] = {}
        self._scheduled_cache: dict[int, tuple] = {}

    # ------------------------------------------------------------------
    def _transient(self, tick: int) -> bool:
        """The seeded random transient-failure verdict for one tick."""
        if self.plan.transient_rate <= 0.0:
            return False
        rng = spawn_rng(self.plan.seed, "faults", "transient", tick)
        return bool(rng.random() < self.plan.transient_rate)

    def _scheduled(self, tick: int) -> tuple:
        """(down, degraded, fail, timeout) from the scheduled events."""
        cached = self._scheduled_cache.get(tick)
        if cached is not None:
            return cached
        down: set[str] = set()
        degraded: dict[str, float] = {}
        fail = False
        timeout = False
        for event in self._events:
            if event.at > tick:
                break
            if event.kind == "crash":
                down.add(event.node)  # type: ignore[arg-type]
            elif event.kind == "recover":
                down.discard(event.node)  # type: ignore[arg-type]
            elif event.kind == "degrade":
                assert event.node is not None and event.factor is not None
                if event.factor < 1.0:
                    degraded[event.node] = event.factor
                else:
                    degraded.pop(event.node, None)
            elif event.kind == "restore":
                degraded.pop(event.node, None)
            elif event.kind == "fail":
                fail = fail or event.at <= tick < event.at + event.count
            elif event.kind == "timeout":
                timeout = timeout or event.at <= tick < event.at + event.count
        result = (
            frozenset(down),
            tuple(sorted(degraded.items())),
            fail,
            timeout,
        )
        self._scheduled_cache[tick] = result
        return result

    def state_at(self, tick: int) -> FaultState:
        """The injected fault state at one tick (pure, deterministic)."""
        if tick < 0:
            raise ValueError(f"tick must be >= 0, got {tick}")
        down, degraded, fail, timeout = self._scheduled(tick)
        fail = fail or self._transient(tick)
        key = (down, degraded, fail, timeout)
        state = self._state_cache.get(key)
        if state is None:
            state = FaultState(
                down=down, degraded=degraded, fail=fail, timeout=timeout
            )
            self._state_cache[key] = state
        return state

    def schedule(self, ticks: int) -> list[FaultState]:
        """The first ``ticks`` states, in order (for golden tests/reports)."""
        if ticks < 0:
            raise ValueError("ticks must be non-negative")
        return [self.state_at(t) for t in range(ticks)]
