"""The minimal client API applications use to become tunable.

The paper stresses that Active Harmony requires "very minimal changes to the
application": declare the tunable parameters, then alternate fetch/report.
:class:`HarmonyClient` is that surface.  It talks to the server through the
message protocol (:mod:`repro.harmony.protocol`), like the instrumented
Squid/Tomcat/MySQL processes in the paper talked to the Tcl server.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.harmony.parameter import Configuration, IntParameter
from repro.harmony.protocol import (
    ErrorReply,
    FetchReply,
    FetchRequest,
    RegisterReply,
    RegisterRequest,
    ReportReply,
    ReportRequest,
    UnregisterReply,
    UnregisterRequest,
)
from repro.harmony.server import HarmonyServer

__all__ = ["HarmonyClient"]


class HarmonyClient:
    """A tunable application's handle on a :class:`HarmonyServer`."""

    def __init__(self, server: HarmonyServer, client_id: str) -> None:
        self._server = server
        self.client_id = client_id
        self._registered = False
        self._iterations = 0

    @property
    def iterations(self) -> int:
        """Completed fetch/report cycles as acknowledged by the server."""
        return self._iterations

    @property
    def registered(self) -> bool:
        """True between successful register() and unregister()."""
        return self._registered

    def register(
        self,
        parameters: Sequence[IntParameter],
        strategy: str = "simplex",
        start: Optional[Mapping[str, int]] = None,
    ) -> int:
        """Declare tunable parameters; returns the space dimension."""
        reply = self._server.handle(
            RegisterRequest(self.client_id, tuple(parameters), strategy, start)
        )
        if isinstance(reply, ErrorReply):
            raise RuntimeError(f"register failed: {reply.error}")
        assert isinstance(reply, RegisterReply)
        self._registered = True
        return reply.dimension

    def fetch(self) -> Configuration:
        """Fetch the configuration to apply for the next iteration."""
        reply = self._server.handle(FetchRequest(self.client_id))
        if isinstance(reply, ErrorReply):
            raise RuntimeError(f"fetch failed: {reply.error}")
        assert isinstance(reply, FetchReply)
        return reply.configuration

    def report(self, performance: float) -> int:
        """Report measured performance; returns iterations completed."""
        reply = self._server.handle(ReportRequest(self.client_id, performance))
        if isinstance(reply, ErrorReply):
            raise RuntimeError(f"report failed: {reply.error}")
        assert isinstance(reply, ReportReply)
        self._iterations = reply.iterations
        return reply.iterations

    def unregister(self) -> Optional[Configuration]:
        """Detach from the server; returns the best configuration found."""
        reply = self._server.handle(UnregisterRequest(self.client_id))
        if isinstance(reply, ErrorReply):
            raise RuntimeError(f"unregister failed: {reply.error}")
        assert isinstance(reply, UnregisterReply)
        self._registered = False
        return reply.best
