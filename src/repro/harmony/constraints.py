"""Parameter constraints and their repair projection.

Several of the paper's Table 3 parameters are only meaningful jointly:
Squid's eviction watermarks need ``cache_swap_low < cache_swap_high`` and
Tomcat's pools need ``minProcessors <= maxProcessors``.  An unconstrained
searcher will happily propose the inverted orders (the real Squid/Tomcat
would refuse to start or behave pathologically), so the search kernels
project every candidate configuration back into the feasible region before
it is measured.

The projection (:meth:`ConstraintSet.repair`) is deterministic and minimal
in the ordering sense: it first raises the upper variable toward
feasibility, then lowers the lower one — never touching satisfied pairs —
and lands on each parameter's legal grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.harmony.parameter import Configuration, ParameterSpace

__all__ = ["OrderingConstraint", "ConstraintSet"]


@dataclass(frozen=True)
class OrderingConstraint:
    """Require ``config[lesser] + min_gap <= config[greater]``."""

    lesser: str
    greater: str
    min_gap: int = 0

    def __post_init__(self) -> None:
        if self.lesser == self.greater:
            raise ValueError(f"constraint relates {self.lesser!r} to itself")
        if self.min_gap < 0:
            raise ValueError("min_gap must be non-negative")

    @property
    def names(self) -> tuple[str, str]:
        """Both parameter names."""
        return (self.lesser, self.greater)

    def satisfied(self, config: Mapping[str, int]) -> bool:
        """True when the configuration honours the ordering."""
        return config[self.lesser] + self.min_gap <= config[self.greater]

    def describe(self, config: Mapping[str, int]) -> str:
        """A human-readable violation message."""
        gap = f" + {self.min_gap}" if self.min_gap else ""
        return (
            f"{self.lesser}={config[self.lesser]}{gap} must not exceed "
            f"{self.greater}={config[self.greater]}"
        )

    def prefixed(self, prefix: str) -> "OrderingConstraint":
        """The same constraint over namespaced parameter names."""
        return OrderingConstraint(
            f"{prefix}{self.lesser}", f"{prefix}{self.greater}", self.min_gap
        )

    def repair(self, space: ParameterSpace, values: dict[str, int]) -> None:
        """Mutate ``values`` minimally so the constraint holds (if possible).

        Prefers raising ``greater``; lowers ``lesser`` only when the upper
        bound blocks the first move.  A constraint that cannot be satisfied
        within the bounds (disjoint ranges) is left violated — the caller's
        :meth:`ConstraintSet.repair` raises in that case.
        """
        lo_param = space[self.lesser]
        hi_param = space[self.greater]
        lo, hi = values[self.lesser], values[self.greater]
        if lo + self.min_gap <= hi:
            return
        raised = hi_param.clamp_up(lo + self.min_gap)
        if lo + self.min_gap <= raised:
            values[self.greater] = raised
            return
        values[self.greater] = raised
        lowered = lo_param.clamp_down(raised - self.min_gap)
        if lowered + self.min_gap <= raised:
            values[self.lesser] = lowered


class ConstraintSet:
    """An ordered collection of constraints with validation and repair."""

    def __init__(self, constraints: Iterable[OrderingConstraint] = ()) -> None:
        self._constraints: tuple[OrderingConstraint, ...] = tuple(constraints)

    def __len__(self) -> int:
        return len(self._constraints)

    def __iter__(self) -> Iterator[OrderingConstraint]:
        return iter(self._constraints)

    def __bool__(self) -> bool:
        return bool(self._constraints)

    @property
    def constraints(self) -> tuple[OrderingConstraint, ...]:
        """The constraints, in application order."""
        return self._constraints

    def names(self) -> set[str]:
        """Every parameter name referenced by some constraint."""
        return {name for c in self._constraints for name in c.names}

    def prefixed(self, prefix: str) -> "ConstraintSet":
        """The same constraints over namespaced parameter names."""
        return ConstraintSet(c.prefixed(prefix) for c in self._constraints)

    def merge(self, other: "ConstraintSet") -> "ConstraintSet":
        """Concatenate two constraint sets."""
        return ConstraintSet(tuple(self._constraints) + tuple(other.constraints))

    def restrict_to(self, names: Sequence[str] | set[str]) -> "ConstraintSet":
        """Only the constraints fully expressible over ``names``."""
        wanted = set(names)
        return ConstraintSet(
            c for c in self._constraints
            if c.lesser in wanted and c.greater in wanted
        )

    def satisfied(self, config: Mapping[str, int]) -> bool:
        """True when every constraint holds."""
        return all(c.satisfied(config) for c in self._constraints)

    def violations(self, config: Mapping[str, int]) -> list[str]:
        """Messages for every violated constraint (empty when feasible)."""
        return [
            c.describe(config) for c in self._constraints if not c.satisfied(config)
        ]

    def repair(self, space: ParameterSpace, config: Mapping[str, int]) -> Configuration:
        """Project ``config`` into the feasible region.

        Raises ``ValueError`` if some constraint cannot be satisfied within
        the parameter bounds at all (a modelling error, not a search error).
        """
        missing = self.names() - set(space.names)
        if missing:
            raise KeyError(
                f"constraints reference parameters outside the space: "
                f"{sorted(missing)}"
            )
        values = {name: int(config[name]) for name in space.names}
        for constraint in self._constraints:
            constraint.repair(space, values)
        repaired = Configuration(values)
        still = self.violations(repaired)
        if still:
            raise ValueError(
                "constraints unsatisfiable within parameter bounds: "
                + "; ".join(still)
            )
        return repaired
