"""Speculative lookahead batching for the tuning loop.

The Adaptation Controller drives the system one measurement at a time
(paper §II.B), so a tuning session is a serial chain of ``ask → measure →
tell`` steps that, on its own, can never use the batched solver.  But the
serial algorithm's *next* asks are enumerable before the pending
measurement's value is known: the Nelder–Mead state machine can only move
to its reflection, expansion, contraction or shrink candidates (all
computable from the current simplex — see
:meth:`~repro.harmony.simplex.NelderMeadSimplex.speculative_frontier`),
coordinate descent's probe list is fixed per dimension, and random
search's next draw is reproducible from a cloned generator.

The :class:`SpeculativeEvaluator` exploits that: once per ``step()`` it
collects every tuning group's frontier via
:meth:`~repro.harmony.search.SearchStrategy.speculate`, fuses the
per-group candidate fragments into full cluster configurations (candidate
for one group, the currently-asked fragment for every other), and warms
the backend's deterministic solution cache for the whole batch in one
vectorized solve (:func:`repro.parallel.frontier.prefetch_frontier`,
fanned over workers under ``--jobs``).  The serial ask/tell sequence then
commits exactly the candidate it always would — speculated solves it
never asks for stay in the cache as wasted warmth, never observable.

Bit-identity is structural, not aspirational: speculation only ever calls
``prefetch_configs``, which by contract changes *when* deterministic
solutions are computed and nothing else.  Strategy state, RNG streams,
trajectories and reported :class:`~repro.model.base.Measurement`s are
untouched at every setting; misprediction costs one cache miss, exactly
the serial price.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.harmony.parameter import Configuration
from repro.harmony.scaling import PartitionScheme, TuningScheme
from repro.harmony.search import SearchStrategy
from repro.model.base import PerformanceBackend, Scenario, SpeculationStats
from repro.parallel.executor import ParallelExecutor
from repro.parallel.frontier import prefetch_frontier

__all__ = ["SpeculativeEvaluator"]


class SpeculativeEvaluator:
    """Per-session speculation driver: plan, prefetch, account.

    One evaluator serves one :class:`~repro.tuning.session.
    ClusterTuningSession`: it sees the same scheme and the same per-group
    strategies, is invoked once per step with the fragments just fetched,
    and keeps the hit/waste counters (:class:`SpeculationStats`) the
    benchmarks report.
    """

    def __init__(
        self,
        backend: PerformanceBackend,
        scheme: TuningScheme,
        strategies: Mapping[str, SearchStrategy],
        jobs: int = 1,
        alternatives: bool = False,
        engine: Optional[str] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.backend = backend
        self.scheme = scheme
        self.strategies = dict(strategies)
        self.jobs = jobs
        # Also prefetch branch *alternatives* (the value-conditional
        # next-ask candidates).  Off by default: alternatives form small
        # batches with ~50% waste, and on the analytic backend a small
        # batch solves barely cheaper per row than the serial price the
        # miss would have cost — measured net-negative on the Table 4
        # partitioned benchmark.  The knob exists for backends/models
        # where a cold evaluation is expensive enough that any prefetch
        # wins (hit-rate rises to ≈0.99 with it on).
        self.alternatives = alternatives
        self.stats = SpeculationStats()
        # Previous step's per-group plans, scored against the fragments
        # actually committed on the next step.
        self._planned: Optional[dict[str, set[Configuration]]] = None
        # Every fragment ever speculated per group (cleared on reset):
        # deduplicates the planned/batched accounting across steps — a
        # queue entry re-announced while it waits its turn is one plan,
        # not one per step.
        self._ever: dict[str, set[Configuration]] = {}
        # Prefetch chunks fan over this executor; under the shared
        # engine they reach the persistent fleet (and its shared cache)
        # instead of a throwaway pool.
        self._executor = (
            ParallelExecutor(jobs, engine=engine) if jobs > 1 else None
        )

    def reset(self) -> None:
        """Drop the current plan (after a scenario/cluster change).

        Counters are kept; the next step plans afresh instead of scoring
        fragments against predictions made for a different scenario.
        """
        self._planned = None
        self._ever = {}

    def prefetch(
        self, scenario: Scenario, fragments: Mapping[str, Configuration]
    ) -> None:
        """One step's speculation: score the last plan, warm the next.

        ``fragments`` are the per-group configurations the session just
        fetched (the asks about to be measured).  The submitted batch
        always includes the fused *current* configuration, so this step's
        own solve rides the same vectorized batch as the lookahead.

        The session asks every group once per step, so each group's
        :meth:`~repro.harmony.search.SearchStrategy.speculate` forecast is
        ordered and the future *full* configurations are the positional
        zip of the per-group forecasts: depth-``k`` batch entry = every
        group's ``k``-th candidate.  Under partitioning the backend caches
        per-line solutions, so a group's forecast warms its own line
        regardless of what the other groups do and a group whose forecast
        ran out is padded with its current fragment; under the fused
        (default/duplication) schemes the whole-cluster solution is only
        predictable while *every* group's next ask is, so the zip stops at
        the shortest forecast.

        Each group's branch *alternatives*
        (:meth:`~repro.harmony.search.SearchStrategy.speculate_alternatives`)
        are fused one at a time against the current fragments — useful
        exactly when one fragment's warmth stands on its own, i.e. under
        per-line caching or with a single group; fused multi-group schemes
        skip them (a full solve of current-elsewhere would be wasted).
        """
        if self._planned is not None:
            for gid, frag in fragments.items():
                if frag in self._planned.get(gid, ()):
                    self.stats.hits += 1
                else:
                    self.stats.misses += 1

        plans: dict[str, list[Configuration]] = {}
        alts: dict[str, list[Configuration]] = {}
        fragment_warmth = self.alternatives and (
            isinstance(self.scheme, PartitionScheme) or len(fragments) == 1
        )
        for gid, strategy in self.strategies.items():
            plans[gid] = strategy.speculate()
            alts[gid] = strategy.speculate_alternatives() if fragment_warmth else []
        planned = 0
        fresh: dict[str, set[Configuration]] = {}
        for gid in sorted(plans):
            ever = self._ever.setdefault(gid, set())
            fresh[gid] = {
                c for c in plans[gid] + alts[gid] if c not in ever
            }
            planned += len(fresh[gid])
            ever |= fresh[gid]

        if isinstance(self.scheme, PartitionScheme):
            depth = max((len(p) for p in plans.values()), default=0)
        else:
            depth = min((len(p) for p in plans.values()), default=0)
        fragments = dict(fragments)
        batch = [self.scheme.combine(fragments)]
        for k in range(depth):
            frags_k = {
                gid: plans[gid][k] if k < len(plans[gid]) else fragments[gid]
                for gid in fragments
            }
            # Only submit depths that warm something: a column whose every
            # fragment was already speculated is warm from a prior step.
            if any(frags_k[gid] in fresh[gid] for gid in fresh):
                batch.append(self.scheme.combine(frags_k))
        for gid in sorted(alts):
            for cand in alts[gid]:
                if cand in fresh[gid]:
                    batch.append(self.scheme.combine({**fragments, gid: cand}))
        self.stats.planned += planned
        self.stats.batched += len(batch)
        try:
            self.stats.solves += prefetch_frontier(
                self.backend,
                scenario,
                batch,
                jobs=self.jobs,
                executor=self._executor,
            )
        except Exception:  # repro: noqa[RPL008] - advisory warm-up only
            # A failed prefetch (a worker dying, a backend fault mid-warm)
            # costs cache warmth, never correctness: the committed measure
            # path solves cold exactly what the prefetch would have.
            self.stats.prefetch_failures += 1
        self._planned = {
            gid: set(plans[gid]) | set(alts[gid]) for gid in plans
        }
