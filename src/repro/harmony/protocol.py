"""Message types for the Harmony server/client protocol.

The real Active Harmony system is a network server (the Adaptation
Controller, written in Tcl) that applications talk to through a small API:
register tunable parameters, fetch the configuration to use next, and report
observed performance.  We reproduce that as an in-process message protocol —
typed request/reply dataclasses dispatched by :class:`repro.harmony.server.
HarmonyServer.handle` — so the server can be driven either through the
convenience methods or through explicit messages (as the paper's clients do).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.harmony.parameter import Configuration, IntParameter

__all__ = [
    "Message",
    "Reply",
    "RegisterRequest",
    "RegisterReply",
    "FetchRequest",
    "FetchReply",
    "ReportRequest",
    "ReportReply",
    "UnregisterRequest",
    "UnregisterReply",
    "ErrorReply",
]


@dataclass(frozen=True)
class Message:
    """Base class for all protocol messages (carries the client id)."""

    client_id: str


@dataclass(frozen=True)
class Reply:
    """Base class for all protocol replies."""

    client_id: str


@dataclass(frozen=True)
class RegisterRequest(Message):
    """Register a client and its tunable parameters with the server."""

    parameters: Sequence[IntParameter] = field(default_factory=tuple)
    strategy: str = "simplex"
    #: Optional starting configuration (defaults to parameter defaults).
    start: Optional[Mapping[str, int]] = None


@dataclass(frozen=True)
class RegisterReply(Reply):
    """Registration succeeded; ``dimension`` echoes the space size."""

    dimension: int = 0


@dataclass(frozen=True)
class FetchRequest(Message):
    """Ask for the configuration the client should apply next."""


@dataclass(frozen=True)
class FetchReply(Reply):
    """The configuration to apply for the next iteration."""

    configuration: Configuration = None  # type: ignore[assignment]


@dataclass(frozen=True)
class ReportRequest(Message):
    """Report the performance observed under the fetched configuration.

    ``seq`` makes the report idempotent over unreliable transport: a
    client that resends after a lost acknowledgement carries the same
    sequence number, and the server answers from its cache instead of
    telling the strategy twice.
    """

    performance: float = 0.0
    seq: Optional[int] = None


@dataclass(frozen=True)
class ReportReply(Reply):
    """Acknowledgement; ``iterations`` counts completed reports."""

    iterations: int = 0


@dataclass(frozen=True)
class UnregisterRequest(Message):
    """Detach a client from the server."""


@dataclass(frozen=True)
class UnregisterReply(Reply):
    """Client detached; the final best configuration is returned."""

    best: Optional[Configuration] = None


@dataclass(frozen=True)
class ErrorReply(Reply):
    """The request could not be served."""

    error: str = ""
