"""Search strategies for the Harmony server.

The paper's Adaptation Controller kernel is the simplex method
(:class:`SimplexStrategy`).  Two additional strategies — random search and
coordinate descent — serve as ablation baselines: they answer "does the
simplex kernel matter, or would any search do?" in the ablation benchmarks.

All strategies **maximize** the reported performance metric (WIPS); the
simplex kernel internally minimizes, so :class:`SimplexStrategy` negates.
"""

from __future__ import annotations

import abc
import copy
from typing import Optional

import numpy as np

from repro.harmony.constraints import ConstraintSet
from repro.harmony.parameter import Configuration, ParameterSpace
from repro.harmony.simplex import NelderMeadSimplex, SimplexOptions
from repro.util.rng import spawn_rng

__all__ = [
    "SearchStrategy",
    "SimplexStrategy",
    "RandomSearch",
    "CoordinateDescent",
]


class SearchStrategy(abc.ABC):
    """Ask/tell interface shared by all tuning kernels (maximizing)."""

    def __init__(
        self,
        space: ParameterSpace,
        constraints: Optional[ConstraintSet] = None,
    ) -> None:
        self.space = space
        self.constraints = constraints
        self._best: Optional[tuple[Configuration, float]] = None
        self._evaluations = 0

    def _feasible(self, config: Configuration) -> Configuration:
        """Project a candidate into the feasible region (no-op if none)."""
        if self.constraints is None or self.constraints.satisfied(config):
            return config
        return self.constraints.repair(self.space, config)

    @property
    def evaluations(self) -> int:
        """Completed tell() calls."""
        return self._evaluations

    @property
    def best(self) -> Optional[tuple[Configuration, float]]:
        """Best (configuration, performance) observed so far."""
        return self._best

    @abc.abstractmethod
    def ask(self) -> Configuration:
        """Next configuration to measure (stable until tell())."""

    def speculate(self) -> list[Configuration]:
        """Ordered forecast of the strategy's certain next asks.

        Entry *k* is the configuration this strategy will ask *k* steps
        ahead, as far as that is determined regardless of pending
        measurement values (e.g. the tail of a fixed probe or vertex
        queue).  The speculative layer (:mod:`repro.harmony.speculate`)
        zips the per-group forecasts positionally into future full
        configurations and warms the backend's deterministic caches for
        them in one batch per step.  The contract is advisory only: the
        strategy state must not change and no randomness may be consumed;
        a wrong or unused entry is wasted warmth, never observable.  The
        default speculates nothing, which is always correct.
        """
        return []

    def speculate_alternatives(self) -> list[Configuration]:
        """Unordered alternatives for the next ask beyond the forecast.

        Where :meth:`speculate` ends because the next ask depends on a
        pending value, the strategy may still know the *finite set* of
        configurations that ask could be (e.g. a simplex's reflection vs.
        contraction candidates).  At most one of them will be committed —
        they are alternatives, not a sequence — so the speculative layer
        only uses them where a single fragment's warmth is useful on its
        own (per-line caching under partitioning, or single-group
        schemes).  Same advisory contract as :meth:`speculate`; the
        default knows no alternatives.
        """
        return []

    def tell(self, config: Configuration, performance: float) -> None:
        """Report measured performance (higher is better)."""
        self._evaluations += 1
        if self._best is None or performance > self._best[1]:
            self._best = (config, performance)
        self._tell(config, performance)

    @abc.abstractmethod
    def _tell(self, config: Configuration, performance: float) -> None:
        """Strategy-specific bookkeeping for one observation."""


class SimplexStrategy(SearchStrategy):
    """The paper's kernel: integer-adapted Nelder–Mead (maximizing)."""

    def __init__(
        self,
        space: ParameterSpace,
        start: Optional[Configuration] = None,
        options: Optional[SimplexOptions] = None,
        rng: Optional[np.random.Generator] = None,
        constraints: Optional[ConstraintSet] = None,
    ) -> None:
        super().__init__(space, constraints)
        self._simplex = NelderMeadSimplex(
            space, start=start, options=options, rng=rng, constraints=constraints
        )

    @property
    def in_initial_exploration(self) -> bool:
        """True during the first k+1 evaluations (see paper §III.B)."""
        return self._simplex.in_initial_exploration

    @property
    def simplex(self) -> NelderMeadSimplex:
        """The underlying minimizing kernel (objective = -performance)."""
        return self._simplex

    def ask(self) -> Configuration:
        """Next configuration from the simplex kernel."""
        return self._simplex.ask()

    def speculate(self) -> list[Configuration]:
        """The certain part of the simplex's candidate tree, in ask order.

        During the value-independent stretches — the initial k+1 vertex
        sweep and the k-vertex shrink queues, the bulk of a tuning run's
        asks — every remaining queue entry is guaranteed to be asked, so
        the whole queue is returned and prefetched as one deep batch.
        """
        return self._simplex.speculative_frontier(certain_only=True)

    def speculate_alternatives(self) -> list[Configuration]:
        """The benign value-conditional candidates for the next ask.

        Rank-variant reflections, contraction points, the first shrink
        vertex and post-queue reflections — everything
        :meth:`~repro.harmony.simplex.NelderMeadSimplex.speculative_branch_candidates`
        deems worth prefetching (the expansion overshoot is excluded
        there: rarely taken, slow to solve).
        """
        return self._simplex.speculative_branch_candidates()

    def _tell(self, config: Configuration, performance: float) -> None:
        objective = -performance if np.isfinite(performance) else float("inf")
        self._simplex.tell(config, objective)


class RandomSearch(SearchStrategy):
    """Uniform random sampling baseline; first point is the default config."""

    def __init__(
        self,
        space: ParameterSpace,
        rng: Optional[np.random.Generator] = None,
        start: Optional[Configuration] = None,
        constraints: Optional[ConstraintSet] = None,
    ) -> None:
        super().__init__(space, constraints)
        self._rng = rng if rng is not None else spawn_rng(0, "harmony.random")
        self._pending: Optional[Configuration] = self._feasible(
            start or space.default_configuration()
        )

    def ask(self) -> Configuration:
        """A fresh uniform sample (stable until tell())."""
        if self._pending is None:
            self._pending = self._feasible(
                self.space.random_configuration(self._rng)
            )
        return self._pending

    def speculate(self) -> list[Configuration]:
        """The exact next sample, drawn from a cloned generator.

        ``_rng`` has already advanced past any pending draw, so cloning it
        and sampling once reproduces the next ask bit-for-bit without
        consuming the real stream.
        """
        rng = copy.deepcopy(self._rng)
        return [self._feasible(self.space.random_configuration(rng))]

    def _tell(self, config: Configuration, performance: float) -> None:
        self._pending = None


class CoordinateDescent(SearchStrategy):
    """Greedy one-parameter-at-a-time hill climbing baseline.

    Cycles through the dimensions; for the current dimension it probes the
    up/down neighbours of the incumbent and moves if an improvement is
    measured.  This is the "tune each knob separately" approach the paper
    argues is insufficient for coupled systems.
    """

    def __init__(
        self,
        space: ParameterSpace,
        start: Optional[Configuration] = None,
        step_multiplier: int = 4,
        constraints: Optional[ConstraintSet] = None,
    ) -> None:
        super().__init__(space, constraints)
        if step_multiplier < 1:
            raise ValueError("step_multiplier must be >= 1")
        self._incumbent = self._feasible(start or space.default_configuration())
        self._incumbent_perf: Optional[float] = None
        self._dim = 0
        self._step_multiplier = step_multiplier
        self._probes: list[Configuration] = []
        self._probe_results: list[tuple[Configuration, float]] = []
        self._pending: Optional[Configuration] = self._incumbent

    def _make_probes(self) -> None:
        param = self.space.parameters[self._dim]
        value = self._incumbent[param.name]
        delta = param.step * self._step_multiplier
        probes = []
        for candidate in (value + delta, value - delta):
            clamped = param.clamp(candidate)
            if clamped != value:
                probe = self._feasible(
                    self._incumbent.replace(**{param.name: clamped})
                )
                if probe != self._incumbent and probe not in probes:
                    probes.append(probe)
        self._probes = probes
        self._probe_results = []

    def _probes_for(
        self, incumbent: Configuration, dim: int
    ) -> list[Configuration]:
        """The probe list ask() would build for ``incumbent`` at ``dim``.

        Pure replica of :meth:`_make_probes` plus ask()'s degenerate-
        dimension skip loop — used by :meth:`speculate` so prediction and
        execution cannot drift apart.
        """
        for _ in range(self.space.dimension):
            param = self.space.parameters[dim]
            value = incumbent[param.name]
            delta = param.step * self._step_multiplier
            probes: list[Configuration] = []
            for candidate in (value + delta, value - delta):
                clamped = param.clamp(candidate)
                if clamped != value:
                    probe = self._feasible(
                        incumbent.replace(**{param.name: clamped})
                    )
                    if probe != incumbent and probe not in probes:
                        probes.append(probe)
            if probes:
                return probes
            dim = (dim + 1) % self.space.dimension
        return []

    def ask(self) -> Configuration:
        """The incumbent first, then its per-dimension probes."""
        if self._pending is not None:
            return self._pending
        if not self._probes:
            self._make_probes()
            while not self._probes:  # degenerate dimension; skip it
                self._dim = (self._dim + 1) % self.space.dimension
                self._make_probes()
        self._pending = self._probes[len(self._probe_results)]
        return self._pending

    def speculate(self) -> list[Configuration]:
        """The unmeasured tail of this dimension's probe list, in order.

        Every probe of a dimension is asked regardless of measured values
        (the move decision happens only once all are in), so the remaining
        probes are a certain forecast of the next asks.
        """
        if not self._probes:
            # Between dimensions (or before the incumbent measurement):
            # the next asks are the current dimension's full probe list.
            return self._probes_for(self._incumbent, self._dim)
        ahead = len(self._probe_results) + (1 if self._pending is not None else 0)
        return list(self._probes[ahead:])

    def speculate_alternatives(self) -> list[Configuration]:
        """The next dimension's probes, for each possible incumbent.

        Only non-empty while the current dimension's last probe is in
        flight: the move decision then branches on who the incumbent will
        be — it stays, moves to the best probe measured so far, or moves
        to the pending probe — and each hypothesis implies a probe list
        for the next dimension.
        """
        ahead = len(self._probe_results) + (1 if self._pending is not None else 0)
        if not self._probes or ahead < len(self._probes):
            return []
        next_dim = (self._dim + 1) % self.space.dimension
        candidates = [self._incumbent]
        if self._probe_results and self._incumbent_perf is not None:
            best_cfg, best_perf = max(self._probe_results, key=lambda cv: cv[1])
            if best_perf > self._incumbent_perf and best_cfg not in candidates:
                candidates.append(best_cfg)
        if self._pending is not None and self._pending not in candidates:
            candidates.append(self._pending)
        out: list[Configuration] = []
        for cand in candidates:
            out.extend(self._probes_for(cand, next_dim))
        return out

    def _tell(self, config: Configuration, performance: float) -> None:
        self._pending = None
        if self._incumbent_perf is None and config == self._incumbent:
            self._incumbent_perf = performance
            return
        self._probe_results.append((config, performance))
        if len(self._probe_results) < len(self._probes):
            return
        # All probes for this dimension measured: move if any improved.
        best_cfg, best_perf = max(self._probe_results, key=lambda cv: cv[1])
        assert self._incumbent_perf is not None
        if best_perf > self._incumbent_perf:
            self._incumbent = best_cfg
            self._incumbent_perf = best_perf
        self._probes = []
        self._probe_results = []
        self._dim = (self._dim + 1) % self.space.dimension
