"""Integer-adapted Nelder–Mead simplex — the Adaptation Controller kernel.

The paper (§II.B) uses the Nelder–Mead simplex method [Nelder & Mead 1965]
over the k-dimensional parameter space, adapted in two ways:

* the objective is only defined at integer grid points, so every candidate
  vertex is projected to "the nearest integer point in the space" before
  evaluation;
* the objective is a *measured* performance number, so evaluations are noisy
  and the algorithm must be driven one evaluation at a time.

This implementation therefore exposes an **ask/tell** interface: call
:meth:`ask` for the next configuration to measure, run the system, then call
:meth:`tell` with the measured objective.  The tuner *minimizes*; callers
maximizing a performance metric (e.g. WIPS) negate it (see
:class:`repro.harmony.search.SimplexStrategy`).

The optional *extreme-value damping* implements the improvement the paper
proposes as future work in §III.A: instead of letting a reflection or
expansion jump straight to a parameter's limit, the step toward a bound is
capped to a fraction of the remaining distance, so extreme values are only
approached gradually "when performance gains warrant it".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.harmony.parameter import Configuration, ParameterSpace
from repro.util.rng import spawn_rng

if TYPE_CHECKING:  # pragma: no cover
    from repro.harmony.constraints import ConstraintSet

__all__ = ["SimplexOptions", "NelderMeadSimplex"]


@dataclass(frozen=True)
class SimplexOptions:
    """Coefficients and behaviour switches for the simplex.

    The coefficient defaults are the classical Nelder–Mead choices.
    ``initial_scale`` sets the initial simplex size as a fraction of each
    parameter's span.  With ``damp_extremes`` enabled, a proposed step may
    cover at most ``damping_fraction`` of the remaining distance from the
    centroid to a bound in any dimension.
    """

    alpha: float = 1.0  # reflection
    gamma: float = 2.0  # expansion
    rho: float = 0.5  # contraction
    sigma: float = 0.5  # shrink
    initial_scale: float = 0.15
    damp_extremes: bool = False
    damping_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        if self.gamma <= 1:
            raise ValueError("gamma must exceed 1")
        if not 0 < self.rho < 1:
            raise ValueError("rho must be in (0, 1)")
        if not 0 < self.sigma < 1:
            raise ValueError("sigma must be in (0, 1)")
        if not 0 < self.initial_scale <= 1:
            raise ValueError("initial_scale must be in (0, 1]")
        if not 0 < self.damping_fraction <= 1:
            raise ValueError("damping_fraction must be in (0, 1]")


class _Phase(enum.Enum):
    INIT = "init"  # evaluating the k+1 initial vertices
    REFLECT = "reflect"
    EXPAND = "expand"
    CONTRACT_OUT = "contract_out"
    CONTRACT_IN = "contract_in"
    SHRINK = "shrink"


class NelderMeadSimplex:
    """Ask/tell Nelder–Mead over an integer :class:`ParameterSpace`.

    Parameters
    ----------
    space:
        The search space (k dimensions).
    start:
        First vertex of the initial simplex; defaults to the space's default
        configuration — exactly how the paper starts each tuning run.
    options:
        Algorithm coefficients, see :class:`SimplexOptions`.
    rng:
        Only used to orient the initial simplex (sign of each offset), so
        restarts explore differently; pass a seeded generator for
        reproducibility.
    constraints:
        Optional feasibility constraints; every asked configuration is
        projected into the feasible region after integer rounding (the
        simplex geometry itself stays in the continuous space).
    """

    def __init__(
        self,
        space: ParameterSpace,
        start: Optional[Configuration] = None,
        options: Optional[SimplexOptions] = None,
        rng: Optional[np.random.Generator] = None,
        constraints: Optional["ConstraintSet"] = None,
    ) -> None:
        if space.dimension == 0:
            raise ValueError("cannot tune an empty parameter space")
        self.space = space
        self.options = options or SimplexOptions()
        self.constraints = constraints
        self._rng = rng if rng is not None else spawn_rng(0, "harmony.simplex")
        start_cfg = start or space.default_configuration()
        space.validate(start_cfg)
        if constraints is not None and not constraints.satisfied(start_cfg):
            start_cfg = constraints.repair(space, start_cfg)

        self._vertices: list[np.ndarray] = []  # continuous coordinates
        self._values: list[float] = []
        self._pending: Optional[np.ndarray] = None
        self._pending_cfg: Optional[Configuration] = None
        self._phase = _Phase.INIT
        self._init_queue = self._initial_vertices(start_cfg)
        self._reflected: Optional[tuple[np.ndarray, float]] = None
        self._shrink_queue: list[np.ndarray] = []
        self._shrink_collected: list[tuple[np.ndarray, float]] = []
        self._best: Optional[tuple[Configuration, float]] = None
        self._evaluations = 0

    # ------------------------------------------------------------------
    # public interface
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        """Number of tuned dimensions (k)."""
        return self.space.dimension

    @property
    def evaluations(self) -> int:
        """Number of completed tell() calls."""
        return self._evaluations

    @property
    def in_initial_exploration(self) -> bool:
        """True while the first k+1 vertices are still being evaluated.

        The paper notes tuning n parameters "requires exploring n+1
        configurations before improvements to the system will take effect".
        """
        return self._phase is _Phase.INIT

    @property
    def best(self) -> Optional[tuple[Configuration, float]]:
        """Best (configuration, objective) seen so far, if any."""
        return self._best

    def ask(self) -> Configuration:
        """Return the next configuration to evaluate.

        Repeated calls without an intervening :meth:`tell` return the same
        configuration.
        """
        if self._pending_cfg is not None:
            return self._pending_cfg
        vector = self._next_vector()
        self._pending = vector
        self._pending_cfg = self._to_configuration(vector)
        return self._pending_cfg

    def _to_configuration(self, vector: np.ndarray) -> Configuration:
        """Project a continuous vertex to the asked integer configuration."""
        cfg = self.space.from_vector(vector)
        if self.constraints is not None and not self.constraints.satisfied(cfg):
            cfg = self.constraints.repair(self.space, cfg)
        return cfg

    def speculative_frontier(self, certain_only: bool = False) -> list[Configuration]:
        """Every configuration the *next* ask() calls could request.

        The returned list is a superset of the asks the state machine can
        issue before (and immediately after) the pending measurement's
        value becomes known: the remaining INIT/SHRINK queue entries are
        value-independent and enumerated in full, and at a branching phase
        each branch's candidate is computed from the current simplex —
        reflection targets for every achievable rank of the pending vertex,
        the expansion point, both contraction points, and the first shrink
        vertex.  Reading only; the simplex state is not touched, so
        speculation cannot perturb the serial trajectory.  Callers use the
        frontier purely as a prefetch hint (a miss costs one cache miss, an
        unused candidate only wasted warmth).

        With ``certain_only=True`` the frontier is restricted to asks that
        are *guaranteed* to be issued regardless of the pending value — the
        unfinished tail of an INIT or SHRINK queue (plus the single
        deterministic next ask when nothing is pending) — and the result is
        an ordered forecast: entry *k* is exactly the ask *k* steps ahead.
        """
        return self._dedupe(
            self._frontier_vectors("certain" if certain_only else "full")
        )

    def speculative_branch_candidates(self) -> list[Configuration]:
        """The value-conditional next-ask alternatives worth prefetching.

        The complement of the certain forecast within the frontier, minus
        the expansion overshoot: rank-variant reflections, both
        contraction points, the first shrink vertex, and the post-queue
        reflection hypotheses once an INIT/SHRINK queue's last entry is
        pending.  All of these stay near or inside the current simplex, so
        their model solves converge like ordinary points.  The expansion
        point is excluded deliberately — it is taken rarely (the pending
        value must beat the best vertex) yet its ``γ``-overshoot clips to
        the bounds, where the analytic solve converges far slower, making
        it a net loss to prefetch (measured on the Table 4 partitioned
        benchmark).  Exactly one of these alternatives (or the expansion)
        is the next ask; a skipped alternative just solves at the ordinary
        serial price when committed.
        """
        return self._dedupe(self._frontier_vectors("branch"))

    def _dedupe(self, vectors: Sequence[np.ndarray]) -> list[Configuration]:
        """Map candidate vectors to unique integer configurations."""
        seen: set[Configuration] = set()
        out: list[Configuration] = []
        for vector in vectors:
            cfg = self._to_configuration(vector)
            if cfg not in seen:
                seen.add(cfg)
                out.append(cfg)
        return out

    # -- frontier enumeration (read-only views of the state machine) -----
    def _reflect_rows(self, rows: Sequence[np.ndarray]) -> np.ndarray:
        """The reflection ask for a hypothetical sorted simplex ``rows``.

        Replicates ``_next_vector``'s REFLECT arithmetic exactly — same
        centroid summation order over ``rows[:-1]``, same damping and
        clipping — so a correctly guessed ordering yields the bit-identical
        candidate vector.
        """
        opt = self.options
        centroid = np.mean(np.asarray(rows[:-1]), axis=0)
        target = centroid + opt.alpha * (centroid - rows[-1])
        return self._clip(self._damp(centroid, target))

    def _insert_reflections(
        self,
        kept_sorted: Sequence[np.ndarray],
        new_vertex: np.ndarray,
        worst: np.ndarray,
    ) -> list[np.ndarray]:
        """Reflections for every rank ``new_vertex`` could sort into.

        The centroid's floating-point sum depends on row order, and the
        pending value decides where the new vertex ranks — so enumerate all
        insertion points (duplicate integer configurations collapse later).
        ``worst`` is the vertex known to rank last regardless.
        """
        out = []
        kept = list(kept_sorted)
        for rank in range(len(kept) + 1):
            rows = kept[:rank] + [new_vertex] + kept[rank:] + [worst]
            out.append(self._reflect_rows(rows))
        return out

    def _post_insert_reflections(
        self,
        known: Sequence[tuple[np.ndarray, float]],
        pending: np.ndarray,
    ) -> list[np.ndarray]:
        """First-reflection candidates once ``pending``'s value arrives.

        Used when the pending tell completes an INIT or SHRINK queue: the
        next simplex is ``known ∪ {pending}`` sorted by value.  The worst
        vertex is either ``pending`` (it ranks last) or the known argmax;
        both hypotheses are expanded over every achievable rank.
        """
        values = [v for _, v in known]
        idx = np.argsort(values, kind="stable")
        sorted_known = [known[i][0] for i in idx]
        # Hypothesis A: pending ranks worst (ties sort it last — it is the
        # most recently absorbed vertex, and the sort is stable).
        out = [self._reflect_rows(sorted_known + [pending])]
        # Hypothesis B: the known argmax stays worst; pending ranks anywhere
        # among the rest.
        out += self._insert_reflections(
            sorted_known[:-1], pending, sorted_known[-1]
        )
        return out

    def _frontier_vectors(self, mode: str = "full") -> list[np.ndarray]:
        """Candidate vectors for the next asks.

        ``mode`` selects the slice of the candidate tree: ``"certain"`` —
        only asks guaranteed regardless of the pending value (queue tails,
        in ask order); ``"branch"`` — only value-conditional alternatives,
        minus the expansion (see :meth:`speculative_branch_candidates`);
        ``"full"`` — everything.
        """
        opt = self.options
        if self._pending is None:
            # Nothing in flight: the next ask is fully determined.
            return [] if mode == "branch" else [self._next_vector()]
        pending = self._pending

        if self._phase is _Phase.INIT:
            done = len(self._vertices)
            vectors = [] if mode == "branch" else list(self._init_queue[done + 1 :])
            if mode != "certain" and done + 1 == len(self._init_queue):
                known = list(zip(self._vertices, self._values))
                vectors += self._post_insert_reflections(known, pending)
            return vectors

        if self._phase is _Phase.SHRINK:
            j = len(self._shrink_collected)
            vectors = [] if mode == "branch" else list(self._shrink_queue[j + 1 :])
            if mode != "certain" and j + 1 == len(self._shrink_queue):
                known = [(self._vertices[0], self._values[0])]
                known += list(self._shrink_collected)
                vectors += self._post_insert_reflections(known, pending)
            return vectors

        if mode == "certain":
            # Branch phases: every candidate is conditional on the pending
            # value, so nothing is certain.
            return []

        centroid = self._centroid()
        worst = self._vertices[-1]
        first_shrink = self._vertices[0] + opt.sigma * (
            self._vertices[1] - self._vertices[0]
        )

        if self._phase is _Phase.REFLECT:
            vectors = []
            if mode == "full":
                # value < best → expand (the reflected point is pending).
                target = centroid + opt.gamma * (pending - centroid)
                vectors.append(self._clip(self._damp(centroid, target)))
            # best <= value < second-worst → replace worst, reflect again:
            # the old second-worst becomes the excluded worst.
            vectors += self._insert_reflections(
                self._vertices[:-2], pending, self._vertices[-2]
            )
            # second-worst <= value < worst → outside contraction.
            vectors.append(self._clip(centroid + opt.rho * (pending - centroid)))
            # value >= worst → inside contraction.
            vectors.append(self._clip(centroid - opt.rho * (centroid - worst)))
            return vectors

        if self._phase is _Phase.EXPAND:
            assert self._reflected is not None
            # Whichever of {expanded, reflected} wins ranks best; the old
            # second-worst becomes the excluded worst either way.
            vectors = []
            for winner in (pending, self._reflected[0]):
                rows = [winner] + self._vertices[:-2] + [self._vertices[-2]]
                vectors.append(self._reflect_rows(rows))
            return vectors

        if self._phase in (_Phase.CONTRACT_OUT, _Phase.CONTRACT_IN):
            # Accepted contraction → replace worst, reflect again.  The new
            # worst is the contraction point itself or the old second-worst.
            vectors = [self._reflect_rows(self._vertices[:-1] + [pending])]
            vectors += self._insert_reflections(
                self._vertices[:-2], pending, self._vertices[-2]
            )
            # Rejected contraction → shrink; its first vertex is known now.
            vectors.append(first_shrink)
            return vectors

        raise AssertionError(f"unhandled phase {self._phase}")

    def tell(self, config: Configuration, value: float) -> None:
        """Report the measured objective for the configuration from ask()."""
        if self._pending_cfg is None:
            raise RuntimeError("tell() without a pending ask()")
        if config != self._pending_cfg:
            raise ValueError(
                f"tell() for {config!r}, but pending is {self._pending_cfg!r}"
            )
        if not np.isfinite(value):
            # A failed measurement (crash, rejection storm) is treated as the
            # worst possible point so the simplex moves away from it.
            value = float("inf")
        vector = self._pending
        assert vector is not None
        self._pending = None
        self._pending_cfg = None
        self._evaluations += 1
        if self._best is None or value < self._best[1]:
            self._best = (config, value)
        self._absorb(vector, float(value))

    # ------------------------------------------------------------------
    # geometry helpers
    # ------------------------------------------------------------------
    def _initial_vertices(self, start: Configuration) -> list[np.ndarray]:
        """Start vertex plus one offset vertex per dimension."""
        x0 = self.space.to_vector(start)
        lo = self.space.lower_bounds()
        hi = self.space.upper_bounds()
        queue = [x0]
        for i, param in enumerate(self.space.parameters):
            offset = max(param.step, self.options.initial_scale * param.span)
            direction = 1.0 if self._rng.random() < 0.5 else -1.0
            x = x0.copy()
            x[i] = x0[i] + direction * offset
            if not lo[i] <= x[i] <= hi[i]:
                x[i] = x0[i] - direction * offset
            x[i] = min(max(x[i], lo[i]), hi[i])
            if x[i] == x0[i] and param.span > 0:
                # degenerate (offset collapsed onto x0): nudge one step
                x[i] = x0[i] + param.step if x0[i] + param.step <= hi[i] else x0[i] - param.step
            queue.append(x)
        return queue

    def _clip(self, x: np.ndarray) -> np.ndarray:
        return np.minimum(np.maximum(x, self.space.lower_bounds()),
                          self.space.upper_bounds())

    def _damp(self, origin: np.ndarray, target: np.ndarray) -> np.ndarray:
        """Cap movement toward bounds (paper's proposed future-work fix)."""
        if not self.options.damp_extremes:
            return target
        lo = self.space.lower_bounds()
        hi = self.space.upper_bounds()
        frac = self.options.damping_fraction
        out = target.copy()
        for i in range(len(out)):
            if target[i] > origin[i]:
                limit = origin[i] + frac * (hi[i] - origin[i])
                out[i] = min(target[i], limit)
            elif target[i] < origin[i]:
                limit = origin[i] - frac * (origin[i] - lo[i])
                out[i] = max(target[i], limit)
        return out

    def _order(self) -> None:
        idx = np.argsort(self._values, kind="stable")
        self._vertices = [self._vertices[i] for i in idx]
        self._values = [self._values[i] for i in idx]

    def _centroid(self) -> np.ndarray:
        """Centroid of all vertices except the worst."""
        return np.mean(np.asarray(self._vertices[:-1]), axis=0)

    # ------------------------------------------------------------------
    # state machine
    # ------------------------------------------------------------------
    def _next_vector(self) -> np.ndarray:
        opt = self.options
        if self._phase is _Phase.INIT:
            return self._init_queue[len(self._vertices)]
        if self._phase is _Phase.SHRINK:
            return self._shrink_queue[len(self._shrink_collected)]

        centroid = self._centroid()
        worst = self._vertices[-1]
        if self._phase is _Phase.REFLECT:
            target = centroid + opt.alpha * (centroid - worst)
            return self._clip(self._damp(centroid, target))
        if self._phase is _Phase.EXPAND:
            assert self._reflected is not None
            target = centroid + opt.gamma * (self._reflected[0] - centroid)
            return self._clip(self._damp(centroid, target))
        if self._phase is _Phase.CONTRACT_OUT:
            assert self._reflected is not None
            return self._clip(centroid + opt.rho * (self._reflected[0] - centroid))
        if self._phase is _Phase.CONTRACT_IN:
            return self._clip(centroid - opt.rho * (centroid - worst))
        raise AssertionError(f"unhandled phase {self._phase}")

    def _absorb(self, vector: np.ndarray, value: float) -> None:
        if self._phase is _Phase.INIT:
            self._vertices.append(vector)
            self._values.append(value)
            if len(self._vertices) == self.dimension + 1:
                self._order()
                self._phase = _Phase.REFLECT
            return

        if self._phase is _Phase.SHRINK:
            self._shrink_collected.append((vector, value))
            if len(self._shrink_collected) == len(self._shrink_queue):
                for i, (v, f) in enumerate(self._shrink_collected, start=1):
                    self._vertices[i] = v
                    self._values[i] = f
                self._shrink_queue = []
                self._shrink_collected = []
                self._order()
                self._phase = _Phase.REFLECT
            return

        best_val = self._values[0]
        second_worst = self._values[-2]
        worst_val = self._values[-1]

        if self._phase is _Phase.REFLECT:
            if value < best_val:
                self._reflected = (vector, value)
                self._phase = _Phase.EXPAND
            elif value < second_worst:
                self._replace_worst(vector, value)
                self._phase = _Phase.REFLECT
            else:
                self._reflected = (vector, value)
                self._phase = (
                    _Phase.CONTRACT_OUT if value < worst_val else _Phase.CONTRACT_IN
                )
            return

        if self._phase is _Phase.EXPAND:
            assert self._reflected is not None
            if value < self._reflected[1]:
                self._replace_worst(vector, value)
            else:
                self._replace_worst(*self._reflected)
            self._reflected = None
            self._phase = _Phase.REFLECT
            return

        if self._phase is _Phase.CONTRACT_OUT:
            assert self._reflected is not None
            if value <= self._reflected[1]:
                self._replace_worst(vector, value)
                self._reflected = None
                self._phase = _Phase.REFLECT
            else:
                self._reflected = None
                self._start_shrink()
            return

        if self._phase is _Phase.CONTRACT_IN:
            if value < worst_val:
                self._replace_worst(vector, value)
                self._reflected = None
                self._phase = _Phase.REFLECT
            else:
                self._reflected = None
                self._start_shrink()
            return

        raise AssertionError(f"unhandled phase {self._phase}")

    def _replace_worst(self, vector: np.ndarray, value: float) -> None:
        self._vertices[-1] = vector
        self._values[-1] = value
        self._order()

    def _start_shrink(self) -> None:
        best = self._vertices[0]
        sigma = self.options.sigma
        self._shrink_queue = [
            best + sigma * (v - best) for v in self._vertices[1:]
        ]
        self._shrink_collected = []
        self._phase = _Phase.SHRINK

    # ------------------------------------------------------------------
    def simplex_diameter(self) -> float:
        """Largest inter-vertex distance, normalized per-dimension.

        Useful as a convergence indicator: the simplex collapses around an
        optimum as tuning progresses.
        """
        if len(self._vertices) < 2:
            return float("inf")
        spans = np.array(
            [max(p.span, 1) for p in self.space.parameters], dtype=float
        )
        pts = np.asarray(self._vertices) / spans
        diam = 0.0
        for i in range(len(pts)):
            for j in range(i + 1, len(pts)):
                diam = max(diam, float(np.linalg.norm(pts[i] - pts[j])))
        return diam
