"""The Harmony server (Adaptation Controller).

One :class:`HarmonyServer` manages any number of independent tuning
sessions, one per registered client.  Each session owns a search strategy
(simplex by default — the paper's kernel) and a :class:`TuningHistory`.

The *parameter partitioning* method of §III.B is expressed by simply running
one server (or one session) per work-line group: "we use a different Active
Harmony tuning server to tune the parameters for each work line".
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional, Sequence

import numpy as np

from repro.harmony.constraints import ConstraintSet
from repro.harmony.history import TuningHistory
from repro.harmony.parameter import Configuration, IntParameter, ParameterSpace
from repro.harmony.protocol import (
    ErrorReply,
    FetchReply,
    FetchRequest,
    Message,
    RegisterReply,
    RegisterRequest,
    Reply,
    ReportReply,
    ReportRequest,
    UnregisterReply,
    UnregisterRequest,
)
from repro.harmony.search import (
    CoordinateDescent,
    RandomSearch,
    SearchStrategy,
    SimplexStrategy,
)
from repro.harmony.simplex import SimplexOptions
from repro.util.rng import RngFactory

__all__ = ["HarmonyServer", "TuningSession"]

StrategyFactory = Callable[[ParameterSpace, Optional[Configuration]], SearchStrategy]


class TuningSession:
    """The server-side state for one registered client."""

    def __init__(
        self,
        client_id: str,
        space: ParameterSpace,
        strategy: SearchStrategy,
    ) -> None:
        self.client_id = client_id
        self.space = space
        self.strategy = strategy
        self.history = TuningHistory()
        self._outstanding: Optional[Configuration] = None
        # Idempotent reports: the last acknowledged sequence number and
        # the reply it produced, so a resent report is answered from
        # cache instead of being told to the strategy twice.
        self.last_report_seq: Optional[int] = None
        self.last_report_iterations: int = 0

    @property
    def iterations(self) -> int:
        """Number of completed fetch/report cycles."""
        return len(self.history)

    def fetch(self) -> Configuration:
        """Configuration for the client's next iteration."""
        self._outstanding = self.strategy.ask()
        return self._outstanding

    def report(self, performance: float) -> None:
        """Record the performance observed under the fetched configuration."""
        if self._outstanding is None:
            raise RuntimeError(
                f"client {self.client_id!r} reported without fetching"
            )
        config = self._outstanding
        self._outstanding = None
        self.strategy.tell(config, performance)
        self.history.append(config, performance)

    def best_configuration(self) -> Optional[Configuration]:
        """Best configuration observed so far (None before any report)."""
        best = self.strategy.best
        return best[0] if best is not None else None


class HarmonyServer:
    """Adaptation Controller managing tuning sessions for many clients."""

    #: Names accepted in :class:`RegisterRequest.strategy`.
    STRATEGIES = ("simplex", "simplex-damped", "random", "coordinate")

    def __init__(
        self,
        seed: int = 0,
        simplex_options: Optional[SimplexOptions] = None,
    ) -> None:
        self._rng_factory = RngFactory(seed)
        self._simplex_options = simplex_options
        self._sessions: dict[str, TuningSession] = {}

    # -- direct API ------------------------------------------------------
    @property
    def sessions(self) -> Mapping[str, TuningSession]:
        """Live sessions keyed by client id."""
        return dict(self._sessions)

    def register(
        self,
        client_id: str,
        parameters: Sequence[IntParameter] | ParameterSpace,
        strategy: str = "simplex",
        start: Optional[Mapping[str, int]] = None,
        constraints: Optional[ConstraintSet] = None,
    ) -> TuningSession:
        """Create a tuning session for ``client_id``."""
        if client_id in self._sessions:
            raise ValueError(f"client {client_id!r} already registered")
        space = (
            parameters
            if isinstance(parameters, ParameterSpace)
            else ParameterSpace(list(parameters))
        )
        start_cfg = Configuration(dict(start)) if start is not None else None
        built = self._build_strategy(
            strategy, space, start_cfg, client_id, constraints
        )
        session = TuningSession(client_id, space, built)
        self._sessions[client_id] = session
        return session

    def _build_strategy(
        self,
        name: str,
        space: ParameterSpace,
        start: Optional[Configuration],
        client_id: str,
        constraints: Optional[ConstraintSet] = None,
    ) -> SearchStrategy:
        rng = self._rng_factory.get("strategy", client_id)
        if name == "simplex":
            return SimplexStrategy(
                space, start=start, options=self._simplex_options, rng=rng,
                constraints=constraints,
            )
        if name == "simplex-damped":
            base = self._simplex_options or SimplexOptions()
            opts = SimplexOptions(
                alpha=base.alpha,
                gamma=base.gamma,
                rho=base.rho,
                sigma=base.sigma,
                initial_scale=base.initial_scale,
                damp_extremes=True,
                damping_fraction=base.damping_fraction,
            )
            return SimplexStrategy(
                space, start=start, options=opts, rng=rng,
                constraints=constraints,
            )
        if name == "random":
            return RandomSearch(space, rng=rng, start=start, constraints=constraints)
        if name == "coordinate":
            return CoordinateDescent(space, start=start, constraints=constraints)
        raise ValueError(
            f"unknown strategy {name!r}; expected one of {self.STRATEGIES}"
        )

    def fetch(self, client_id: str) -> Configuration:
        """Next configuration for ``client_id``."""
        return self._session(client_id).fetch()

    def report(self, client_id: str, performance: float) -> None:
        """Record a measurement for ``client_id``'s outstanding fetch."""
        self._session(client_id).report(performance)

    def unregister(self, client_id: str) -> Optional[Configuration]:
        """Remove the session; returns its best configuration."""
        session = self._session(client_id)
        del self._sessions[client_id]
        return session.best_configuration()

    def history(self, client_id: str) -> TuningHistory:
        """The tuning history for ``client_id``."""
        return self._session(client_id).history

    def _session(self, client_id: str) -> TuningSession:
        try:
            return self._sessions[client_id]
        except KeyError:
            raise KeyError(f"unknown client {client_id!r}") from None

    # -- message interface --------------------------------------------------
    def handle(self, message: Message) -> Reply:
        """Dispatch one protocol message, never raising to the caller."""
        try:
            if isinstance(message, RegisterRequest):
                session = self.register(
                    message.client_id,
                    list(message.parameters),
                    strategy=message.strategy,
                    start=message.start,
                )
                return RegisterReply(message.client_id, session.space.dimension)
            if isinstance(message, FetchRequest):
                return FetchReply(message.client_id, self.fetch(message.client_id))
            if isinstance(message, ReportRequest):
                if not np.isfinite(message.performance):
                    raise ValueError(
                        f"non-finite performance {message.performance!r}"
                    )
                session = self._session(message.client_id)
                if (
                    message.seq is not None
                    and message.seq == session.last_report_seq
                    and session._outstanding is None
                ):
                    # Duplicate delivery (a client retry after a lost
                    # acknowledgement): the original already consumed the
                    # outstanding fetch, so answer from cache and do not
                    # tell the strategy twice.  A *new* client reusing the
                    # session (and its seq numbering) has fetched again,
                    # which is what distinguishes it from a resend.
                    return ReportReply(
                        message.client_id, session.last_report_iterations
                    )
                self.report(message.client_id, message.performance)
                if message.seq is not None:
                    session.last_report_seq = message.seq
                    session.last_report_iterations = session.iterations
                return ReportReply(message.client_id, session.iterations)
            if isinstance(message, UnregisterRequest):
                best = self.unregister(message.client_id)
                return UnregisterReply(message.client_id, best)
            raise TypeError(f"unhandled message type {type(message).__name__}")
        except Exception as err:  # protocol boundary: surface as ErrorReply
            return ErrorReply(message.client_id, f"{type(err).__name__}: {err}")
