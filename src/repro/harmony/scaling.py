"""Scalable cluster tuning: parameter duplication and partitioning (§III.B).

Tuning *n* parameters with one simplex needs *n+1* initial configurations,
so tuning every parameter of every node in one space ("the default method")
scales poorly.  The paper proposes two remedies:

* **Parameter duplication** — tune one representative server per tier and
  copy ("duplicate") its values to every other server in the tier.  Valid
  when tier members are homogeneous and evenly loaded.
* **Parameter partitioning** — split the cluster into *work lines*, each
  containing at least one server from every tier, route each request through
  exactly one work line, and give each work line its own Harmony server fed
  by its own performance measurement.

Both are expressed here as :class:`TuningScheme` objects: a list of
:class:`TuningGroup`, each exposing the (smaller) space one tuning session
sees and an ``expand`` mapping back to full per-node parameter names.  Full
names follow the ``"<node>.<param>"`` convention of
:mod:`repro.cluster.topology`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.harmony.constraints import ConstraintSet, OrderingConstraint
from repro.harmony.parameter import Configuration, IntParameter, ParameterSpace

__all__ = [
    "TuningGroup",
    "TuningScheme",
    "identity_scheme",
    "DuplicationScheme",
    "PartitionScheme",
]


def split_name(full_name: str) -> tuple[str, str]:
    """Split ``"node.param"`` into ``(node, param)``."""
    node, sep, param = full_name.partition(".")
    if not sep or not node or not param:
        raise ValueError(f"expected '<node>.<param>', got {full_name!r}")
    return node, param


@dataclass(frozen=True)
class TuningGroup:
    """One tuning session's view: a space plus the expansion to full names.

    ``expansion`` maps each tuned parameter name to the full per-node names
    it controls (one for identity/partitioning, several for duplication).
    ``constraints`` are expressed over the *tuned* names and passed to the
    group's search strategy.
    """

    group_id: str
    space: ParameterSpace
    expansion: Mapping[str, tuple[str, ...]]
    constraints: ConstraintSet = field(default_factory=ConstraintSet)

    def __post_init__(self) -> None:
        missing = set(self.space.names) - set(self.expansion)
        if missing:
            raise ValueError(f"group {self.group_id!r}: no expansion for {sorted(missing)}")
        dangling = self.constraints.names() - set(self.space.names)
        if dangling:
            raise ValueError(
                f"group {self.group_id!r}: constraints reference unknown "
                f"parameters {sorted(dangling)}"
            )

    def expand(self, config: Mapping[str, int]) -> dict[str, int]:
        """Tuned configuration fragment → full-name fragment."""
        out: dict[str, int] = {}
        for tuned_name in self.space.names:
            for full_name in self.expansion[tuned_name]:
                out[full_name] = config[tuned_name]
        return out


class TuningScheme:
    """A partition of the full cluster space into tuning groups."""

    def __init__(self, full_space: ParameterSpace, groups: Sequence[TuningGroup]) -> None:
        self.full_space = full_space
        self.groups = tuple(groups)
        covered: dict[str, str] = {}
        for group in self.groups:
            for tuned in group.space.names:
                for full in group.expansion[tuned]:
                    if full not in full_space:
                        raise ValueError(
                            f"group {group.group_id!r} expands to unknown "
                            f"parameter {full!r}"
                        )
                    if full in covered:
                        raise ValueError(
                            f"parameter {full!r} covered by both "
                            f"{covered[full]!r} and {group.group_id!r}"
                        )
                    covered[full] = group.group_id
        uncovered = set(full_space.names) - set(covered)
        if uncovered:
            raise ValueError(f"parameters not covered by any group: {sorted(uncovered)}")

    @property
    def total_tuned_dimensions(self) -> int:
        """Sum of group dimensions (what the tuning servers actually search)."""
        return sum(g.space.dimension for g in self.groups)

    @property
    def max_group_dimension(self) -> int:
        """Largest group dimension — proxies the initial exploration length."""
        return max(g.space.dimension for g in self.groups)

    def combine(self, fragments: Mapping[str, Mapping[str, int]]) -> Configuration:
        """Group-id → tuned-config fragments → one full configuration."""
        merged: dict[str, int] = {}
        for group in self.groups:
            try:
                fragment = fragments[group.group_id]
            except KeyError:
                raise KeyError(f"missing fragment for group {group.group_id!r}") from None
            merged.update(group.expand(fragment))
        full = Configuration(merged)
        self.full_space.validate(full)
        return full


def identity_scheme(
    full_space: ParameterSpace,
    group_id: str = "all",
    constraints: Optional[ConstraintSet] = None,
) -> TuningScheme:
    """The paper's *default method*: one server tunes every parameter."""
    group = TuningGroup(
        group_id=group_id,
        space=full_space,
        expansion={name: (name,) for name in full_space.names},
        constraints=constraints or ConstraintSet(),
    )
    return TuningScheme(full_space, [group])


class DuplicationScheme(TuningScheme):
    """Parameter duplication: tune one representative node per tier.

    ``tiers`` maps a tier name to the node ids in it; the first node listed
    is the representative.  The tuned space has names ``"<tier>.<param>"``
    and each value is duplicated to every node of the tier.
    """

    def __init__(
        self,
        full_space: ParameterSpace,
        tiers: Mapping[str, Sequence[str]],
        constraints: Optional[ConstraintSet] = None,
    ) -> None:
        by_node: dict[str, list[str]] = {}
        for full_name in full_space.names:
            node, _ = split_name(full_name)
            by_node.setdefault(node, []).append(full_name)

        listed = [node for nodes in tiers.values() for node in nodes]
        if len(set(listed)) != len(listed):
            raise ValueError("a node appears in more than one tier")
        missing = set(by_node) - set(listed)
        if missing:
            raise ValueError(f"nodes not assigned to any tier: {sorted(missing)}")

        groups = []
        tuned_params: list[IntParameter] = []
        expansion: dict[str, tuple[str, ...]] = {}
        for tier_name, nodes in tiers.items():
            if not nodes:
                raise ValueError(f"tier {tier_name!r} has no nodes")
            rep = nodes[0]
            for full_name in by_node.get(rep, []):
                _, param_name = split_name(full_name)
                base = full_space[full_name]
                tuned_name = f"{tier_name}.{param_name}"
                tuned_params.append(
                    IntParameter(
                        name=tuned_name,
                        default=base.default,
                        low=base.low,
                        high=base.high,
                        step=base.step,
                    )
                )
                targets = []
                for node in nodes:
                    target = f"{node}.{param_name}"
                    if target not in full_space:
                        raise ValueError(
                            f"tier {tier_name!r} is not homogeneous: "
                            f"{target!r} missing from the full space"
                        )
                    targets.append(target)
                expansion[tuned_name] = tuple(targets)
        tuned_space = ParameterSpace(tuned_params)
        # Node-level constraints lift to the tier level: a constraint on the
        # representative node becomes one on the shared tier parameters.
        lifted: list[OrderingConstraint] = []
        if constraints:
            rep_to_tier = {
                f"{nodes[0]}.": f"{tier}." for tier, nodes in tiers.items()
            }
            for c in constraints:
                for rep_prefix, tier_prefix in rep_to_tier.items():
                    if c.lesser.startswith(rep_prefix) and c.greater.startswith(
                        rep_prefix
                    ):
                        lifted.append(
                            OrderingConstraint(
                                c.lesser.replace(rep_prefix, tier_prefix, 1),
                                c.greater.replace(rep_prefix, tier_prefix, 1),
                                c.min_gap,
                            )
                        )
                        break
        groups.append(
            TuningGroup(
                group_id="duplication",
                space=tuned_space,
                expansion=expansion,
                constraints=ConstraintSet(lifted),
            )
        )
        super().__init__(full_space, groups)


class PartitionScheme(TuningScheme):
    """Parameter partitioning by work line: one group (and one Harmony
    server) per work line, tuning the parameters of that line's nodes."""

    def __init__(
        self,
        full_space: ParameterSpace,
        work_lines: Mapping[str, Sequence[str]],
        constraints: Optional[ConstraintSet] = None,
    ) -> None:
        by_node: dict[str, list[str]] = {}
        for full_name in full_space.names:
            node, _ = split_name(full_name)
            by_node.setdefault(node, []).append(full_name)

        listed = [node for nodes in work_lines.values() for node in nodes]
        if len(set(listed)) != len(listed):
            raise ValueError("a node appears in more than one work line")
        missing = set(by_node) - set(listed)
        if missing:
            raise ValueError(f"nodes not assigned to any work line: {sorted(missing)}")

        groups = []
        for line_id, nodes in work_lines.items():
            if not nodes:
                raise ValueError(f"work line {line_id!r} has no nodes")
            names = [n for node in nodes for n in by_node.get(node, [])]
            line_constraints = (
                constraints.restrict_to(names) if constraints else ConstraintSet()
            )
            groups.append(
                TuningGroup(
                    group_id=line_id,
                    space=full_space.subspace(names),
                    expansion={name: (name,) for name in names},
                    constraints=line_constraints,
                )
            )
        super().__init__(full_space, groups)
