"""Tunable parameters, parameter spaces and configurations.

The paper treats "each tunable parameter as a variable in an independent
dimension" (§II.B).  A :class:`ParameterSpace` is an ordered set of
:class:`IntParameter` dimensions; a :class:`Configuration` is one legal point
(an immutable name→value mapping).  The simplex works in a continuous vector
space; :meth:`ParameterSpace.from_vector` implements the paper's adaptation
of "using the resulting values from the nearest integer point in the space".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

__all__ = ["IntParameter", "ParameterSpace", "Configuration"]


@dataclass(frozen=True)
class IntParameter:
    """One integer-valued tunable dimension.

    Legal values are ``low, low+step, …`` up to the largest such value not
    exceeding ``high``.  ``default`` must be legal.
    """

    name: str
    default: int
    low: int
    high: int
    step: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("parameter name must be non-empty")
        if self.step < 1:
            raise ValueError(f"{self.name}: step must be >= 1, got {self.step}")
        if self.low > self.high:
            raise ValueError(f"{self.name}: low {self.low} > high {self.high}")
        if not self.is_legal(self.default):
            raise ValueError(
                f"{self.name}: default {self.default} is not a legal value "
                f"(range [{self.low}, {self.high}], step {self.step})"
            )

    @property
    def num_values(self) -> int:
        """Number of legal values."""
        return (self.high - self.low) // self.step + 1

    @property
    def span(self) -> int:
        """Distance between the extreme legal values."""
        return (self.num_values - 1) * self.step

    def is_legal(self, value: int) -> bool:
        """True if ``value`` is on the grid and within bounds."""
        return (
            self.low <= value <= self.high and (value - self.low) % self.step == 0
        )

    def clamp(self, value: float) -> int:
        """Nearest legal value to (possibly fractional) ``value``."""
        steps = round((value - self.low) / self.step)
        steps = max(0, min(self.num_values - 1, steps))
        return self.low + steps * self.step

    def clamp_up(self, value: float) -> int:
        """Smallest legal value >= ``value`` (or the top of the range)."""
        steps = math.ceil((value - self.low) / self.step)
        steps = max(0, min(self.num_values - 1, steps))
        return self.low + steps * self.step

    def clamp_down(self, value: float) -> int:
        """Largest legal value <= ``value`` (or the bottom of the range)."""
        steps = math.floor((value - self.low) / self.step)
        steps = max(0, min(self.num_values - 1, steps))
        return self.low + steps * self.step

    def random(self, rng: np.random.Generator) -> int:
        """A uniformly random legal value."""
        return self.low + int(rng.integers(self.num_values)) * self.step

    def neighbors(self, value: int) -> list[int]:
        """Legal values one step away from ``value`` (1 or 2 of them)."""
        if not self.is_legal(value):
            raise ValueError(f"{self.name}: {value} is not legal")
        out = []
        if value - self.step >= self.low:
            out.append(value - self.step)
        if value + self.step <= self.high:
            out.append(value + self.step)
        return out

    def extremeness(self, value: int) -> float:
        """How close ``value`` sits to a bound, in [0, 1].

        0 at the centre of the range, 1 exactly on a bound.  Used by the
        extreme-value damping option and the measurement-noise model
        (the paper observed configurations with extreme values behave
        erratically, §III.A).
        """
        if self.span == 0:
            return 0.0
        centre = (self.low + self.high) / 2.0
        return abs(value - centre) / (self.span / 2.0)


class Configuration(Mapping[str, int]):
    """An immutable, hashable assignment of values to parameter names."""

    __slots__ = ("_values", "_hash")

    def __init__(self, values: Mapping[str, int]) -> None:
        object.__setattr__(self, "_values", dict(values))
        object.__setattr__(
            self, "_hash", hash(tuple(sorted(self._values.items())))
        )

    def __getitem__(self, key: str) -> int:
        return self._values[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Configuration):
            return self._values == other._values
        if isinstance(other, Mapping):
            return self._values == dict(other)
        return NotImplemented

    def replace(self, **updates: int) -> "Configuration":
        """A copy with some values changed."""
        merged = dict(self._values)
        for key in updates:
            if key not in merged:
                raise KeyError(f"unknown parameter {key!r}")
        merged.update(updates)
        return Configuration(merged)

    def subset(self, names: Iterable[str]) -> "Configuration":
        """A configuration restricted to ``names``."""
        return Configuration({n: self._values[n] for n in names})

    def merge(self, other: Mapping[str, int]) -> "Configuration":
        """A configuration with ``other``'s entries added/overriding."""
        merged = dict(self._values)
        merged.update(other)
        return Configuration(merged)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._values.items()))
        return f"Configuration({inner})"


class ParameterSpace:
    """An ordered collection of :class:`IntParameter` dimensions."""

    def __init__(self, parameters: Sequence[IntParameter]) -> None:
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate parameter names: {dupes}")
        self._params: tuple[IntParameter, ...] = tuple(parameters)
        self._index = {p.name: i for i, p in enumerate(self._params)}

    # -- basic introspection -------------------------------------------
    @property
    def parameters(self) -> tuple[IntParameter, ...]:
        """The dimensions, in order."""
        return self._params

    @property
    def names(self) -> list[str]:
        """Parameter names, in order."""
        return [p.name for p in self._params]

    @property
    def dimension(self) -> int:
        """Number of dimensions."""
        return len(self._params)

    def __len__(self) -> int:
        return len(self._params)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __getitem__(self, name: str) -> IntParameter:
        return self._params[self._index[name]]

    def subspace(self, names: Iterable[str]) -> "ParameterSpace":
        """A space containing only ``names`` (kept in this space's order)."""
        wanted = set(names)
        missing = wanted - set(self._index)
        if missing:
            raise KeyError(f"unknown parameters: {sorted(missing)}")
        return ParameterSpace([p for p in self._params if p.name in wanted])

    def union(self, other: "ParameterSpace") -> "ParameterSpace":
        """Concatenate two disjoint spaces."""
        return ParameterSpace(list(self._params) + list(other._params))

    def prefixed(self, prefix: str) -> "ParameterSpace":
        """A copy with every parameter name prefixed by ``prefix``.

        Used to build cluster-wide spaces, e.g. ``proxy0.cache_mem``.
        """
        return ParameterSpace(
            [
                IntParameter(
                    name=f"{prefix}{p.name}",
                    default=p.default,
                    low=p.low,
                    high=p.high,
                    step=p.step,
                )
                for p in self._params
            ]
        )

    # -- configurations ---------------------------------------------------
    def default_configuration(self) -> Configuration:
        """The configuration of all defaults."""
        return Configuration({p.name: p.default for p in self._params})

    def random_configuration(self, rng: np.random.Generator) -> Configuration:
        """A uniformly random legal configuration."""
        return Configuration({p.name: p.random(rng) for p in self._params})

    def validate(self, config: Mapping[str, int]) -> None:
        """Raise ``ValueError`` unless ``config`` is complete and legal."""
        missing = set(self._index) - set(config)
        extra = set(config) - set(self._index)
        if missing or extra:
            raise ValueError(
                f"configuration mismatch: missing={sorted(missing)}, "
                f"extra={sorted(extra)}"
            )
        for p in self._params:
            if not p.is_legal(config[p.name]):
                raise ValueError(
                    f"{p.name}={config[p.name]} is not legal "
                    f"(range [{p.low}, {p.high}], step {p.step})"
                )

    def clamp(self, config: Mapping[str, int | float]) -> Configuration:
        """Project arbitrary values to the nearest legal configuration."""
        return Configuration(
            {p.name: p.clamp(float(config[p.name])) for p in self._params}
        )

    def extremeness(self, config: Mapping[str, int]) -> float:
        """Mean per-dimension extremeness of ``config`` in [0, 1]."""
        if not self._params:
            return 0.0
        return float(
            np.mean([p.extremeness(config[p.name]) for p in self._params])
        )

    # -- vector space -------------------------------------------------------
    def to_vector(self, config: Mapping[str, int]) -> np.ndarray:
        """Configuration → float vector (in parameter order)."""
        return np.array([float(config[p.name]) for p in self._params])

    def from_vector(self, vector: np.ndarray) -> Configuration:
        """Float vector → nearest legal configuration (paper §II.B)."""
        if len(vector) != len(self._params):
            raise ValueError(
                f"vector has {len(vector)} entries, space has {len(self._params)}"
            )
        return Configuration(
            {p.name: p.clamp(float(v)) for p, v in zip(self._params, vector)}
        )

    def lower_bounds(self) -> np.ndarray:
        """Vector of lower bounds."""
        return np.array([float(p.low) for p in self._params])

    def upper_bounds(self) -> np.ndarray:
        """Vector of upper bounds."""
        return np.array([float(p.high) for p in self._params])

    def __repr__(self) -> str:
        return f"ParameterSpace({', '.join(self.names)})"
