"""JSON wire format for the Harmony message protocol.

The original Active Harmony ran as a network daemon (its Adaptation
Controller was a Tcl server) that instrumented applications — Squid, Tomcat
wrappers, the TPC-W driver — connected to over sockets.  This module gives
the in-process protocol of :mod:`repro.harmony.protocol` a concrete wire
encoding (one JSON object per line) used by :mod:`repro.harmony.net`.

Every message/reply type maps to ``{"type": <TypeName>, ...fields}``;
configurations are JSON objects, parameters are ``{name, default, low,
high, step}`` objects.  Decoding is strict: unknown types and malformed
fields raise :class:`WireError`, which the server turns into an
``ErrorReply``.
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Optional, Union

from repro.harmony.parameter import Configuration, IntParameter
from repro.harmony.protocol import (
    ErrorReply,
    FetchReply,
    FetchRequest,
    Message,
    RegisterReply,
    RegisterRequest,
    Reply,
    ReportReply,
    ReportRequest,
    UnregisterReply,
    UnregisterRequest,
)

__all__ = ["WireError", "encode", "decode"]


class WireError(ValueError):
    """The payload is not a valid protocol message."""


def _encode_configuration(config: Optional[Configuration]) -> Optional[dict]:
    return dict(config) if config is not None else None


def _decode_configuration(data: Any, field: str) -> Optional[Configuration]:
    if data is None:
        return None
    if not isinstance(data, dict):
        raise WireError(f"{field}: expected an object, got {type(data).__name__}")
    out = {}
    for key, value in data.items():
        if isinstance(value, bool) or not isinstance(value, int):
            raise WireError(f"{field}.{key}: expected an integer, got {value!r}")
        out[str(key)] = value
    return Configuration(out)


def _encode_parameter(param: IntParameter) -> dict:
    return {
        "name": param.name,
        "default": param.default,
        "low": param.low,
        "high": param.high,
        "step": param.step,
    }


def _decode_parameter(data: Any) -> IntParameter:
    if not isinstance(data, dict):
        raise WireError(f"parameter: expected an object, got {type(data).__name__}")
    try:
        return IntParameter(
            name=str(data["name"]),
            default=int(data["default"]),
            low=int(data["low"]),
            high=int(data["high"]),
            step=int(data.get("step", 1)),
        )
    except KeyError as err:
        raise WireError(f"parameter: missing field {err.args[0]!r}") from None
    except (TypeError, ValueError) as err:
        raise WireError(f"parameter: {err}") from None


def encode(message: Union[Message, Reply]) -> str:
    """Serialize a protocol message/reply to one JSON line (no newline)."""
    base: dict[str, Any] = {
        "type": type(message).__name__,
        "client_id": message.client_id,
    }
    if isinstance(message, RegisterRequest):
        base["parameters"] = [_encode_parameter(p) for p in message.parameters]
        base["strategy"] = message.strategy
        base["start"] = dict(message.start) if message.start is not None else None
    elif isinstance(message, RegisterReply):
        base["dimension"] = message.dimension
    elif isinstance(message, FetchRequest):
        pass
    elif isinstance(message, FetchReply):
        base["configuration"] = _encode_configuration(message.configuration)
    elif isinstance(message, ReportRequest):
        base["performance"] = message.performance
        if message.seq is not None:
            base["seq"] = message.seq
    elif isinstance(message, ReportReply):
        base["iterations"] = message.iterations
    elif isinstance(message, UnregisterRequest):
        pass
    elif isinstance(message, UnregisterReply):
        base["best"] = _encode_configuration(message.best)
    elif isinstance(message, ErrorReply):
        base["error"] = message.error
    else:
        raise WireError(f"unknown message type {type(message).__name__}")
    return json.dumps(base, sort_keys=True)


def decode(line: str) -> Union[Message, Reply]:
    """Parse one JSON line into a protocol message/reply."""
    try:
        data = json.loads(line)
    except json.JSONDecodeError as err:
        raise WireError(f"invalid JSON: {err}") from None
    if not isinstance(data, dict):
        raise WireError("payload must be a JSON object")
    kind = data.get("type")
    client_id = data.get("client_id")
    if not isinstance(client_id, str) or not client_id:
        raise WireError("missing or invalid client_id")

    if kind == "RegisterRequest":
        params = data.get("parameters")
        if not isinstance(params, list) or not params:
            raise WireError("RegisterRequest needs a non-empty parameters list")
        start = data.get("start")
        if start is not None and not isinstance(start, Mapping):
            raise WireError("start must be an object or null")
        return RegisterRequest(
            client_id,
            tuple(_decode_parameter(p) for p in params),
            strategy=str(data.get("strategy", "simplex")),
            start=dict(start) if start is not None else None,
        )
    if kind == "RegisterReply":
        return RegisterReply(client_id, int(data.get("dimension", 0)))
    if kind == "FetchRequest":
        return FetchRequest(client_id)
    if kind == "FetchReply":
        return FetchReply(
            client_id, _decode_configuration(data.get("configuration"), "configuration")
        )
    if kind == "ReportRequest":
        perf = data.get("performance")
        if not isinstance(perf, (int, float)) or isinstance(perf, bool):
            raise WireError(f"performance must be a number, got {perf!r}")
        seq = data.get("seq")
        if seq is not None and (isinstance(seq, bool) or not isinstance(seq, int)):
            raise WireError(f"seq must be an integer, got {seq!r}")
        return ReportRequest(client_id, float(perf), seq=seq)
    if kind == "ReportReply":
        return ReportReply(client_id, int(data.get("iterations", 0)))
    if kind == "UnregisterRequest":
        return UnregisterRequest(client_id)
    if kind == "UnregisterReply":
        return UnregisterReply(
            client_id, _decode_configuration(data.get("best"), "best")
        )
    if kind == "ErrorReply":
        return ErrorReply(client_id, str(data.get("error", "")))
    raise WireError(f"unknown message type {kind!r}")
