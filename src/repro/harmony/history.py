"""Tuning histories and the convergence metrics the paper reports.

Table 4 of the paper reports, per tuning method: the performance of the best
configuration after 200 iterations, the standard deviation over the *second*
100 iterations, and the number of iterations the tuning process took to
converge.  :class:`TuningHistory` computes all three from a recorded run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.harmony.parameter import Configuration
from repro.util.stats import RunningStats

__all__ = ["TuningRecord", "TuningHistory"]


@dataclass(frozen=True)
class TuningRecord:
    """One tuning iteration: the configuration used and its measurement."""

    iteration: int
    configuration: Configuration
    performance: float


class TuningHistory:
    """Append-only record of a tuning run with analysis helpers."""

    def __init__(self) -> None:
        self._records: list[TuningRecord] = []

    def append(self, configuration: Configuration, performance: float) -> TuningRecord:
        """Record the next iteration's (configuration, performance)."""
        rec = TuningRecord(len(self._records), configuration, performance)
        self._records.append(rec)
        return rec

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TuningRecord]:
        return iter(self._records)

    def __getitem__(self, i: int) -> TuningRecord:
        return self._records[i]

    @property
    def records(self) -> Sequence[TuningRecord]:
        """All records, in iteration order."""
        return tuple(self._records)

    def performances(self) -> np.ndarray:
        """Performance series as an array (one entry per iteration)."""
        return np.array([r.performance for r in self._records])

    def best(self) -> TuningRecord:
        """The record with the highest performance."""
        if not self._records:
            raise ValueError("empty history")
        return max(self._records, key=lambda r: r.performance)

    def best_configuration(self) -> Configuration:
        """Configuration of the best-performing iteration."""
        return self.best().configuration

    def window_stats(self, start: int, stop: Optional[int] = None) -> RunningStats:
        """Mean/stddev of performance over iterations [start, stop)."""
        stop_ = len(self._records) if stop is None else stop
        return RunningStats(r.performance for r in self._records[start:stop_])

    def fraction_above(self, baseline: float, start: int = 0,
                       stop: Optional[int] = None) -> float:
        """Fraction of iterations in the window beating ``baseline``.

        The paper reports e.g. "the performance of 78% of the iterations is
        better than it is in the default configuration".
        """
        stop_ = len(self._records) if stop is None else stop
        window = self._records[start:stop_]
        if not window:
            raise ValueError("empty window")
        hits = sum(1 for r in window if r.performance > baseline)
        return hits / len(window)

    def iterations_to_converge(
        self,
        tolerance: float = 0.05,
        settle: int = 10,
    ) -> int:
        """First iteration from which performance stays near the final level.

        "Converged" means: from that iteration on, the running performance
        never drops more than ``tolerance`` (relative) below the mean of the
        last ``settle`` iterations, for at least ``settle`` consecutive
        iterations.  Returns ``len(history)`` if the run never settles.
        """
        if len(self._records) < settle + 1:
            return len(self._records)
        perf = self.performances()
        target = float(np.mean(perf[-settle:]))
        floor = target * (1.0 - tolerance)
        ok = perf >= floor
        run = 0
        for i, flag in enumerate(ok):
            run = run + 1 if flag else 0
            if run >= settle:
                return i - settle + 1
        return len(self._records)

    def improvement_over(self, baseline: float) -> float:
        """Relative improvement of the best iteration over ``baseline``."""
        if baseline <= 0:
            raise ValueError(f"baseline must be positive, got {baseline}")
        return self.best().performance / baseline - 1.0
