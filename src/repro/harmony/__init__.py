"""Active Harmony: the paper's automated tuning infrastructure.

The package mirrors the architecture of Figure 2 of the paper:

* :mod:`repro.harmony.parameter` — tunable parameters and configurations
  (each parameter is one dimension of the search space, §II.B),
* :mod:`repro.harmony.simplex` — the integer-adapted Nelder–Mead simplex
  that is the kernel of the Adaptation Controller,
* :mod:`repro.harmony.search` — the strategy interface plus baseline
  strategies (random search, coordinate descent) used for ablations,
* :mod:`repro.harmony.server` / :mod:`repro.harmony.client` — the Harmony
  server and the minimal client API applications call
  (register / fetch / report),
* :mod:`repro.harmony.scaling` — *parameter duplication* and *parameter
  partitioning* (§III.B) for scalable cluster tuning,
* :mod:`repro.harmony.history` — tuning histories and convergence metrics.
"""

from repro.harmony.constraints import ConstraintSet, OrderingConstraint
from repro.harmony.history import TuningHistory, TuningRecord
from repro.harmony.parameter import Configuration, IntParameter, ParameterSpace
from repro.harmony.scaling import (
    DuplicationScheme,
    PartitionScheme,
    identity_scheme,
)
from repro.harmony.search import (
    CoordinateDescent,
    RandomSearch,
    SearchStrategy,
    SimplexStrategy,
)
from repro.harmony.server import HarmonyServer, TuningSession
from repro.harmony.client import HarmonyClient
from repro.harmony.net import HarmonyTCPServer, RemoteHarmonyClient
from repro.harmony.simplex import NelderMeadSimplex, SimplexOptions

__all__ = [
    "ConstraintSet",
    "OrderingConstraint",
    "IntParameter",
    "ParameterSpace",
    "Configuration",
    "NelderMeadSimplex",
    "SimplexOptions",
    "SearchStrategy",
    "SimplexStrategy",
    "RandomSearch",
    "CoordinateDescent",
    "HarmonyServer",
    "HarmonyClient",
    "HarmonyTCPServer",
    "RemoteHarmonyClient",
    "TuningSession",
    "TuningHistory",
    "TuningRecord",
    "DuplicationScheme",
    "PartitionScheme",
    "identity_scheme",
]
