"""A TCP Harmony server and a remote client.

The original Active Harmony Adaptation Controller ran as a standalone
daemon; tunable applications (on other machines of the cluster) connected
over TCP with register / fetch / report calls.  This module provides that
deployment shape on top of the in-process :class:`~repro.harmony.server.
HarmonyServer`:

* :class:`HarmonyTCPServer` — a threading TCP server speaking the
  line-delimited JSON wire format of :mod:`repro.harmony.wire`.  Requests
  from all connections are serialized through one lock, preserving the
  single-controller semantics of the original system.
* :class:`RemoteHarmonyClient` — the same minimal API as
  :class:`~repro.harmony.client.HarmonyClient`, over a socket.

Example::

    server = HarmonyTCPServer(HarmonyServer(seed=1))
    with server.running() as (host, port):
        client = RemoteHarmonyClient(host, port, "squid")
        client.register(parameters)
        for _ in range(100):
            cfg = client.fetch()
            client.report(measure(cfg))
        best = client.unregister()
"""

from __future__ import annotations

import contextlib
import socket
import socketserver
import threading
from typing import Iterator, Mapping, Optional, Sequence

from repro.harmony.parameter import Configuration, IntParameter
from repro.harmony.protocol import (
    ErrorReply,
    FetchReply,
    FetchRequest,
    RegisterReply,
    RegisterRequest,
    ReportReply,
    ReportRequest,
    UnregisterReply,
    UnregisterRequest,
)
from repro.harmony.server import HarmonyServer
from repro.harmony.wire import WireError, decode, encode

__all__ = ["HarmonyTCPServer", "RemoteHarmonyClient"]


class _Handler(socketserver.StreamRequestHandler):
    """One connection: read JSON lines, dispatch, write JSON replies."""

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        """Serve one connection until it closes."""
        server: "HarmonyTCPServer" = self.server  # type: ignore[assignment]
        while True:
            line = self.rfile.readline()
            if not line:
                return
            text = line.decode("utf-8", errors="replace").strip()
            if not text:
                continue
            try:
                message = decode(text)
            except WireError as err:
                reply = ErrorReply("?", f"WireError: {err}")
            else:
                with server.dispatch_lock:
                    reply = server.harmony.handle(message)
            self.wfile.write((encode(reply) + "\n").encode("utf-8"))
            self.wfile.flush()


class HarmonyTCPServer(socketserver.ThreadingTCPServer):
    """Serve a :class:`HarmonyServer` over TCP (one JSON message per line)."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        harmony: Optional[HarmonyServer] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.harmony = harmony or HarmonyServer()
        self.dispatch_lock = threading.Lock()
        super().__init__((host, port), _Handler)

    @property
    def address(self) -> tuple[str, int]:
        """The (host, port) actually bound (port 0 picks a free one)."""
        host, port = self.server_address[:2]
        return str(host), int(port)

    @contextlib.contextmanager
    def running(self) -> Iterator[tuple[str, int]]:
        """Serve on a background thread for the duration of the block."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        try:
            yield self.address
        finally:
            self.shutdown()
            self.server_close()
            thread.join(timeout=5.0)


class RemoteHarmonyClient:
    """The minimal tunable-application API, over a TCP connection."""

    def __init__(self, host: str, port: int, client_id: str,
                 timeout: float = 10.0) -> None:
        self.client_id = client_id
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._registered = False
        self._iterations = 0

    # -- plumbing ---------------------------------------------------------
    def _call(self, message):
        self._file.write((encode(message) + "\n").encode("utf-8"))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("harmony server closed the connection")
        reply = decode(line.decode("utf-8").strip())
        if isinstance(reply, ErrorReply):
            raise RuntimeError(f"harmony server error: {reply.error}")
        return reply

    def close(self) -> None:
        """Close the connection (the server keeps the session state)."""
        with contextlib.suppress(OSError):
            self._file.close()
        with contextlib.suppress(OSError):
            self._sock.close()

    def __enter__(self) -> "RemoteHarmonyClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the Harmony API ---------------------------------------------------
    @property
    def iterations(self) -> int:
        """Completed fetch/report cycles as acknowledged by the server."""
        return self._iterations

    @property
    def registered(self) -> bool:
        """True between successful register() and unregister()."""
        return self._registered

    def register(
        self,
        parameters: Sequence[IntParameter],
        strategy: str = "simplex",
        start: Optional[Mapping[str, int]] = None,
    ) -> int:
        """Declare tunable parameters; returns the space dimension."""
        reply = self._call(
            RegisterRequest(self.client_id, tuple(parameters), strategy, start)
        )
        assert isinstance(reply, RegisterReply)
        self._registered = True
        return reply.dimension

    def fetch(self) -> Configuration:
        """Fetch the configuration to apply next."""
        reply = self._call(FetchRequest(self.client_id))
        assert isinstance(reply, FetchReply)
        return reply.configuration

    def report(self, performance: float) -> int:
        """Report measured performance; returns iterations completed."""
        reply = self._call(ReportRequest(self.client_id, performance))
        assert isinstance(reply, ReportReply)
        self._iterations = reply.iterations
        return reply.iterations

    def unregister(self) -> Optional[Configuration]:
        """Detach from the server; returns the best configuration found."""
        reply = self._call(UnregisterRequest(self.client_id))
        assert isinstance(reply, UnregisterReply)
        self._registered = False
        return reply.best
