"""A TCP Harmony server and a remote client.

The original Active Harmony Adaptation Controller ran as a standalone
daemon; tunable applications (on other machines of the cluster) connected
over TCP with register / fetch / report calls.  This module provides that
deployment shape on top of the in-process :class:`~repro.harmony.server.
HarmonyServer`:

* :class:`HarmonyTCPServer` — a threading TCP server speaking the
  line-delimited JSON wire format of :mod:`repro.harmony.wire`.  Requests
  from all connections are serialized through one lock, preserving the
  single-controller semantics of the original system.
* :class:`RemoteHarmonyClient` — the same minimal API as
  :class:`~repro.harmony.client.HarmonyClient`, over a socket.

Example::

    server = HarmonyTCPServer(HarmonyServer(seed=1))
    with server.running() as (host, port):
        client = RemoteHarmonyClient(host, port, "squid")
        client.register(parameters)
        for _ in range(100):
            cfg = client.fetch()
            client.report(measure(cfg))
        best = client.unregister()
"""

from __future__ import annotations

import contextlib
import socket
import socketserver
import threading
from typing import Iterator, Mapping, Optional, Sequence

from repro.faults.resilience import backoff_delay
from repro.harmony.parameter import Configuration, IntParameter
from repro.harmony.protocol import (
    ErrorReply,
    FetchReply,
    FetchRequest,
    RegisterReply,
    RegisterRequest,
    ReportReply,
    ReportRequest,
    UnregisterReply,
    UnregisterRequest,
)
from repro.harmony.server import HarmonyServer
from repro.harmony.wire import WireError, decode, encode

__all__ = ["HarmonyTCPServer", "RemoteHarmonyClient"]


class _Handler(socketserver.StreamRequestHandler):
    """One connection: read JSON lines, dispatch, write JSON replies."""

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        """Serve one connection until it closes."""
        server: "HarmonyTCPServer" = self.server  # type: ignore[assignment]
        while True:
            line = self.rfile.readline()
            if not line:
                return
            text = line.decode("utf-8", errors="replace").strip()
            if not text:
                continue
            try:
                message = decode(text)
            except WireError as err:
                reply = ErrorReply("?", f"WireError: {err}")
            else:
                with server.dispatch_lock:
                    reply = server.harmony.handle(message)
                    server.note_activity(message.client_id)
            self.wfile.write((encode(reply) + "\n").encode("utf-8"))
            self.wfile.flush()


class HarmonyTCPServer(socketserver.ThreadingTCPServer):
    """Serve a :class:`HarmonyServer` over TCP (one JSON message per line)."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        harmony: Optional[HarmonyServer] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        stale_after: Optional[int] = None,
    ) -> None:
        if stale_after is not None and stale_after < 1:
            raise ValueError("stale_after must be >= 1 (or None to disable)")
        self.harmony = harmony or HarmonyServer()
        self.dispatch_lock = threading.Lock()
        #: Requests dispatched with no word from a client before its
        #: session is reaped (None disables reaping).  Measured in
        #: dispatched requests, not wall time: a busy server ages quiet
        #: clients out, an idle one holds them forever — deterministic.
        self.stale_after = stale_after
        self._dispatched = 0
        self._last_seen: dict[str, int] = {}
        self.reaped: list[str] = []
        super().__init__((host, port), _Handler)

    def note_activity(self, client_id: str) -> None:
        """Record one dispatched request (call with the dispatch lock held)."""
        self._dispatched += 1
        self._last_seen[client_id] = self._dispatched
        if self.stale_after is not None:
            self._reap_stale()

    def _reap_stale(self) -> None:
        horizon = self._dispatched - self.stale_after
        for client_id, seen in list(self._last_seen.items()):
            if seen > horizon:
                continue
            if client_id in self.harmony.sessions:
                self.harmony.unregister(client_id)
                self.reaped.append(client_id)
            del self._last_seen[client_id]

    def cleanup_stale(self) -> list[str]:
        """Reap quiet clients now; returns the ids removed this call."""
        if self.stale_after is None:
            return []
        with self.dispatch_lock:
            before = len(self.reaped)
            self._reap_stale()
            return self.reaped[before:]

    @property
    def address(self) -> tuple[str, int]:
        """The (host, port) actually bound (port 0 picks a free one)."""
        host, port = self.server_address[:2]
        return str(host), int(port)

    @contextlib.contextmanager
    def running(self) -> Iterator[tuple[str, int]]:
        """Serve on a background thread for the duration of the block."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        try:
            yield self.address
        finally:
            self.shutdown()
            self.server_close()
            thread.join(timeout=5.0)


class RemoteHarmonyClient:
    """The minimal tunable-application API, over a TCP connection.

    The client survives the transport, not just uses it: a dropped
    connection is retried up to ``max_retries`` times with a capped
    deterministic backoff (``backoff_delay`` — counted, and handed to the
    injectable ``sleep`` if one is given; there is no built-in wall-clock
    wait, so the retry schedule is reproducible and lint-clean).  Reports
    carry sequence numbers, so a resend after a lost acknowledgement is
    deduplicated server-side instead of being told to the strategy twice.
    """

    def __init__(self, host: str, port: int, client_id: str,
                 timeout: float = 10.0, max_retries: int = 2,
                 backoff_base: int = 1, backoff_cap: int = 8,
                 sleep=None) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.client_id = client_id
        self._host = host
        self._port = port
        self._timeout = timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._sleep = sleep
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._registered = False
        self._iterations = 0
        self._seq = 0
        #: Reconnect attempts performed over the client's lifetime.
        self.retries = 0
        #: Backoff waits accumulated (virtual units fed to ``sleep``).
        self.backoff_total = 0
        self._connect()

    # -- plumbing ---------------------------------------------------------
    def _connect(self) -> None:
        """(Re)open the connection, never leaking a half-built socket."""
        self.close()
        sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout
        )
        try:
            file = sock.makefile("rwb")
        except Exception:
            with contextlib.suppress(OSError):
                sock.close()
            raise
        self._sock = sock
        self._file = file

    def _roundtrip(self, message):
        if self._file is None:
            raise ConnectionError("harmony client is not connected")
        self._file.write((encode(message) + "\n").encode("utf-8"))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("harmony server closed the connection")
        reply = decode(line.decode("utf-8").strip())
        if isinstance(reply, ErrorReply):
            raise RuntimeError(f"harmony server error: {reply.error}")
        return reply

    def _call(self, message):
        """One request/reply exchange, with retry + reconnect on drops."""
        self._last_call_retried = False
        attempt = 0
        while True:
            try:
                if self._file is None:
                    self._connect()
                return self._roundtrip(message)
            except (ConnectionError, OSError):
                self.close()
                if attempt >= self.max_retries:
                    raise
                attempt += 1
                self.retries += 1
                self._last_call_retried = True
                delay = backoff_delay(
                    attempt, self.backoff_base, self.backoff_cap
                )
                self.backoff_total += delay
                if self._sleep is not None:
                    self._sleep(delay)

    def close(self) -> None:
        """Release the connection (idempotent; server keeps session state)."""
        file, sock = self._file, self._sock
        self._file = None
        self._sock = None
        if file is not None:
            with contextlib.suppress(OSError):
                file.close()
        if sock is not None:
            with contextlib.suppress(OSError):
                sock.close()

    def __enter__(self) -> "RemoteHarmonyClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the Harmony API ---------------------------------------------------
    @property
    def iterations(self) -> int:
        """Completed fetch/report cycles as acknowledged by the server."""
        return self._iterations

    @property
    def registered(self) -> bool:
        """True between successful register() and unregister()."""
        return self._registered

    def register(
        self,
        parameters: Sequence[IntParameter],
        strategy: str = "simplex",
        start: Optional[Mapping[str, int]] = None,
    ) -> int:
        """Declare tunable parameters; returns the space dimension.

        Safe under retry: if the registration landed but its reply was
        lost, the resend's "already registered" error is the proof of
        success and is treated as one.
        """
        params = tuple(parameters)
        try:
            reply = self._call(
                RegisterRequest(self.client_id, params, strategy, start)
            )
        except RuntimeError as err:
            if self._last_call_retried and "already registered" in str(err):
                self._registered = True
                return len(params)
            raise
        assert isinstance(reply, RegisterReply)
        self._registered = True
        return reply.dimension

    def fetch(self) -> Configuration:
        """Fetch the configuration to apply next."""
        reply = self._call(FetchRequest(self.client_id))
        assert isinstance(reply, FetchReply)
        return reply.configuration

    def report(self, performance: float) -> int:
        """Report measured performance; returns iterations completed.

        Each report carries a fresh sequence number, so a resend after a
        dropped connection cannot be recorded twice by the server.
        """
        self._seq += 1
        reply = self._call(
            ReportRequest(self.client_id, performance, seq=self._seq)
        )
        assert isinstance(reply, ReportReply)
        self._iterations = reply.iterations
        return reply.iterations

    def unregister(self) -> Optional[Configuration]:
        """Detach from the server; returns the best configuration found."""
        reply = self._call(UnregisterRequest(self.client_id))
        assert isinstance(reply, UnregisterReply)
        self._registered = False
        return reply.best
