"""repro — reproduction of "Automated Cluster-Based Web Service Performance
Tuning" (Chung & Hollingsworth, HPDC 2004).

The package provides, from scratch:

* **Active Harmony** (:mod:`repro.harmony`) — the automated tuning
  infrastructure: integer-adapted Nelder–Mead simplex, tuning
  server/clients, and the §III.B scaling schemes (parameter duplication
  and parameter partitioning),
* **TPC-W** (:mod:`repro.tpcw`) — the benchmark workload: Table 1 mixes,
  emulated browsers, item catalog, WIPS metrics,
* **the cluster substrate** (:mod:`repro.cluster`) — parametric
  performance models of the Squid / Tomcat / MySQL three-tier stack with
  the paper's 23 tunable parameters,
* **two measurement backends** — analytic queueing model
  (:mod:`repro.model`) and request-level discrete-event simulation
  (:mod:`repro.des`),
* **the tuning layer** (:mod:`repro.tuning`) — iteration protocol,
  cluster tuning sessions, workload-shift adaptation, and the §IV
  automatic reconfiguration algorithm,
* **experiment drivers** (:mod:`repro.experiments`) — one per table and
  figure of the paper's evaluation.

Quickstart::

    from repro import (AnalyticBackend, ClusterSpec, ClusterTuningSession,
                       Scenario, SHOPPING_MIX, make_scheme)

    cluster = ClusterSpec.three_tier(1, 1, 1)
    scenario = Scenario(cluster=cluster, mix=SHOPPING_MIX, population=750)
    session = ClusterTuningSession(AnalyticBackend(), scenario,
                                   scheme=make_scheme(scenario, "default"))
    session.run(200)
    print(session.best_configuration())
"""

from repro.cluster.node import NodeSpec, Role
from repro.cluster.pricing import PricingModel
from repro.cluster.topology import ClusterSpec, NodePlacement
from repro.harmony.client import HarmonyClient
from repro.harmony.net import HarmonyTCPServer, RemoteHarmonyClient
from repro.harmony.constraints import ConstraintSet, OrderingConstraint
from repro.harmony.parameter import Configuration, IntParameter, ParameterSpace
from repro.harmony.scaling import DuplicationScheme, PartitionScheme, identity_scheme
from repro.harmony.search import (
    CoordinateDescent,
    RandomSearch,
    SearchStrategy,
    SimplexStrategy,
)
from repro.harmony.server import HarmonyServer
from repro.harmony.simplex import NelderMeadSimplex, SimplexOptions
from repro.model.analytic import AnalyticBackend
from repro.model.base import Measurement, PerformanceBackend, Scenario
from repro.tpcw.interactions import (
    BROWSING_MIX,
    Interaction,
    ORDERING_MIX,
    SHOPPING_MIX,
    STANDARD_MIXES,
    WorkloadMix,
)
from repro.tuning.adaptive import AdaptiveTuningSession
from repro.tuning.reconfig import ReconfigPolicy, Reconfigurator
from repro.tuning.reconfig_loop import ReconfigurationLoop
from repro.tuning.session import ClusterTuningSession, make_scheme

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # harmony
    "IntParameter",
    "ConstraintSet",
    "OrderingConstraint",
    "ParameterSpace",
    "Configuration",
    "NelderMeadSimplex",
    "SimplexOptions",
    "SearchStrategy",
    "SimplexStrategy",
    "RandomSearch",
    "CoordinateDescent",
    "HarmonyServer",
    "HarmonyClient",
    "HarmonyTCPServer",
    "RemoteHarmonyClient",
    "DuplicationScheme",
    "PartitionScheme",
    "identity_scheme",
    # cluster
    "Role",
    "NodeSpec",
    "NodePlacement",
    "ClusterSpec",
    "PricingModel",
    # tpcw
    "Interaction",
    "WorkloadMix",
    "BROWSING_MIX",
    "SHOPPING_MIX",
    "ORDERING_MIX",
    "STANDARD_MIXES",
    # backends
    "PerformanceBackend",
    "AnalyticBackend",
    "Scenario",
    "Measurement",
    # tuning
    "ClusterTuningSession",
    "AdaptiveTuningSession",
    "make_scheme",
    "Reconfigurator",
    "ReconfigPolicy",
    "ReconfigurationLoop",
]
