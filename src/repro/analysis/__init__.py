"""Analysis of tuning runs and of the configuration space.

The paper notes (§III.A) that beyond raw speedups, "the Active Harmony
tuning process is also helpful for system administrators and developers to
identify those parameters that actually affect system performance" — it
found e.g. that Squid's ``cache_swap_low`` / ``cache_swap_high`` watermarks
are performance-neutral while thread counts and buffer sizes matter.

This package provides both directions of that insight:

* :mod:`repro.analysis.sensitivity` — direct one-at-a-time sweeps of each
  parameter on a backend (ground truth about the response surface),
* :mod:`repro.analysis.importance` — post-hoc importance estimates mined
  from a recorded :class:`~repro.harmony.history.TuningHistory` (what an
  administrator learns from the tuning run itself, without extra probes).
"""

from repro.analysis.importance import (
    ParameterImportance,
    history_importance,
    importance_table,
)
from repro.analysis.sensitivity import (
    SensitivityCurve,
    SensitivityReport,
    sensitivity_report,
    sweep_parameter,
)

__all__ = [
    "SensitivityCurve",
    "SensitivityReport",
    "sweep_parameter",
    "sensitivity_report",
    "ParameterImportance",
    "history_importance",
    "importance_table",
]
