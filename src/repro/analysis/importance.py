"""Post-hoc parameter importance mined from a tuning history.

Given only the (configuration, WIPS) pairs a tuning run recorded, estimate
which parameters drove performance.  Two complementary signals per
parameter:

* ``correlation`` — the absolute Pearson correlation between the
  (normalized) parameter value and the measured WIPS across the run.  High
  correlation means the search's performance visibly tracked this knob.
* ``movement`` — how far the best configuration moved the parameter from
  its starting value, as a fraction of its span.  The tuner only moves (and
  keeps) parameters that pay.

Both are normalized to [0, 1]; the combined score is their maximum, since
either signal alone is evidence of influence (a parameter can be decisive
yet end near its start, or drift far on a flat direction — which is why
the report shows both columns).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.harmony.history import TuningHistory
from repro.harmony.parameter import Configuration, ParameterSpace
from repro.util.tables import Table

__all__ = ["ParameterImportance", "history_importance"]


@dataclass(frozen=True)
class ParameterImportance:
    """Importance estimates for one parameter."""

    name: str
    correlation: float
    movement: float
    start_value: int
    best_value: int

    @property
    def score(self) -> float:
        """Combined importance in [0, 1]."""
        return max(self.correlation, self.movement)


def history_importance(
    history: TuningHistory,
    space: ParameterSpace,
    start: Optional[Configuration] = None,
) -> list[ParameterImportance]:
    """Rank the space's parameters by their influence over the run.

    ``start`` defaults to the first recorded configuration (the run's
    starting point).  Returns importances sorted by decreasing score.
    """
    if len(history) < 3:
        raise ValueError("need at least 3 recorded iterations")
    start_cfg = start or history[0].configuration
    best_cfg = history.best_configuration()
    perf = history.performances()
    perf_std = float(np.std(perf))

    out: list[ParameterImportance] = []
    for param in space.parameters:
        values = np.array(
            [float(r.configuration[param.name]) for r in history.records]
        )
        if perf_std > 0 and float(np.std(values)) > 0:
            corr = abs(float(np.corrcoef(values, perf)[0, 1]))
        else:
            corr = 0.0
        span = max(param.span, 1)
        movement = abs(best_cfg[param.name] - start_cfg[param.name]) / span
        out.append(
            ParameterImportance(
                name=param.name,
                correlation=corr,
                movement=min(movement, 1.0),
                start_value=start_cfg[param.name],
                best_value=best_cfg[param.name],
            )
        )
    out.sort(key=lambda p: p.score, reverse=True)
    return out


def importance_table(
    importances: list[ParameterImportance], top: Optional[int] = None
) -> Table:
    """Render an importance ranking as a table."""
    table = Table(
        "Parameter importance (mined from the tuning history)",
        ["Parameter", "Score", "|corr(value, WIPS)|", "Movement", "Start", "Best"],
    )
    for imp in importances[: top or len(importances)]:
        table.add_row(
            imp.name,
            f"{imp.score:.2f}",
            f"{imp.correlation:.2f}",
            f"{imp.movement:.2f}",
            imp.start_value,
            imp.best_value,
        )
    return table
