"""One-at-a-time parameter sensitivity sweeps.

For each tunable parameter, hold every other parameter at a base
configuration, sweep the parameter across its range, and measure WIPS at
each point (averaging over noise seeds).  The resulting *effect size* —
the relative WIPS span over the sweep — separates parameters that matter
from parameters that don't, the diagnostic use of Harmony the paper
highlights in §III.A.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.harmony.constraints import ConstraintSet
from repro.harmony.parameter import Configuration, ParameterSpace
from repro.model.base import PerformanceBackend, Scenario
from repro.util.rng import derive_seed
from repro.util.stats import RunningStats
from repro.util.tables import Table

__all__ = [
    "SensitivityCurve",
    "SensitivityReport",
    "sweep_parameter",
    "sensitivity_report",
]


@dataclass(frozen=True)
class SensitivityCurve:
    """One parameter's sweep: values tried and the WIPS observed at each."""

    name: str
    values: tuple[int, ...]
    mean_wips: tuple[float, ...]
    std_wips: tuple[float, ...]
    base_wips: float

    def __post_init__(self) -> None:
        if not (len(self.values) == len(self.mean_wips) == len(self.std_wips)):
            raise ValueError("curve arrays must have equal length")
        if not self.values:
            raise ValueError("curve must contain at least one point")

    @property
    def effect_size(self) -> float:
        """Relative WIPS span across the sweep: (max − min) / base."""
        return (max(self.mean_wips) - min(self.mean_wips)) / self.base_wips

    @property
    def best_value(self) -> int:
        """The swept value with the highest mean WIPS."""
        return self.values[int(np.argmax(self.mean_wips))]

    @property
    def worst_value(self) -> int:
        """The swept value with the lowest mean WIPS."""
        return self.values[int(np.argmin(self.mean_wips))]


@dataclass(frozen=True)
class SensitivityReport:
    """All curves for one scenario, ranked by effect size."""

    scenario_label: str
    base_wips: float
    curves: tuple[SensitivityCurve, ...]

    def ranked(self) -> list[SensitivityCurve]:
        """Curves sorted by decreasing effect size."""
        return sorted(self.curves, key=lambda c: c.effect_size, reverse=True)

    def curve(self, name: str) -> SensitivityCurve:
        """The curve for one parameter."""
        for c in self.curves:
            if c.name == name:
                return c
        raise KeyError(f"no sweep for parameter {name!r}")

    def to_table(self, top: Optional[int] = None) -> Table:
        """The ranked effect-size table."""
        table = Table(
            f"Parameter sensitivity — {self.scenario_label} "
            f"(base {self.base_wips:.1f} WIPS)",
            ["Parameter", "Effect size", "Best value", "Worst value"],
        )
        for curve in self.ranked()[: top or len(self.curves)]:
            table.add_row(
                curve.name,
                f"{curve.effect_size * 100:.1f}%",
                curve.best_value,
                curve.worst_value,
            )
        return table


def sweep_parameter(
    backend: PerformanceBackend,
    scenario: Scenario,
    base: Configuration,
    name: str,
    points: int = 5,
    repeats: int = 3,
    seed: int = 0,
    space: Optional[ParameterSpace] = None,
    constraints: Optional[ConstraintSet] = None,
) -> SensitivityCurve:
    """Sweep one parameter across its range around ``base``.

    ``points`` evenly spaced legal values (always including the bounds and
    the base value); each is measured ``repeats`` times on derived seeds.
    Constrained partners are repaired (e.g. sweeping ``cache_swap_low``
    above ``cache_swap_high`` adjusts the partner as a real administrator
    would).
    """
    if points < 2:
        raise ValueError("points must be >= 2")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    space = space or scenario.cluster.full_space()
    param = space[name]
    raw = np.linspace(param.low, param.high, points)
    values = sorted({param.clamp(float(v)) for v in raw} | {base[name]})

    # Gather every (configuration, seed) point of the sweep up front and
    # measure them as one batch: backends that amortize work across points
    # (vectorized MVA, solution reuse between noise repeats) then see the
    # whole sweep at once.  Results come back in request order, so the
    # statistics below fold in exactly the order the per-point loop used.
    requests: list[tuple[Configuration, int]] = [
        (base, derive_seed(seed, "sweep-base", name, r))
        for r in range(repeats)
    ]
    for value in values:
        cfg = base.replace(**{name: value})
        if constraints is not None and not constraints.satisfied(cfg):
            cfg = constraints.repair(space, cfg)
            cfg = cfg.replace(**{name: value}) if param.is_legal(value) else cfg
            if not constraints.satisfied(cfg):
                cfg = constraints.repair(space, cfg)
        requests.extend(
            (cfg, derive_seed(seed, "sweep", name, value, r))
            for r in range(repeats)
        )
    measurements = iter(backend.measure_batch(scenario, requests))

    base_stats = RunningStats()
    for _ in range(repeats):
        base_stats.add(next(measurements).wips)

    means: list[float] = []
    stds: list[float] = []
    for _ in values:
        stats = RunningStats()
        for _ in range(repeats):
            stats.add(next(measurements).wips)
        means.append(stats.mean)
        stds.append(stats.stddev)

    return SensitivityCurve(
        name=name,
        values=tuple(values),
        mean_wips=tuple(means),
        std_wips=tuple(stds),
        base_wips=base_stats.mean,
    )


def sensitivity_report(
    backend: PerformanceBackend,
    scenario: Scenario,
    base: Optional[Configuration] = None,
    names: Optional[Sequence[str]] = None,
    points: int = 5,
    repeats: int = 3,
    seed: int = 0,
) -> SensitivityReport:
    """Sweep every (or the named) parameter of the scenario's cluster."""
    space = scenario.cluster.full_space()
    constraints = scenario.cluster.full_constraints()
    base = base or scenario.cluster.default_configuration()
    todo = list(names) if names is not None else space.names
    curves = []
    base_wips = None
    for name in todo:
        curve = sweep_parameter(
            backend, scenario, base, name,
            points=points, repeats=repeats, seed=seed,
            space=space, constraints=constraints,
        )
        curves.append(curve)
        base_wips = curve.base_wips
    assert base_wips is not None
    return SensitivityReport(
        scenario_label=f"{scenario.mix.name}, N={scenario.population}",
        base_wips=base_wips,
        curves=tuple(curves),
    )
