"""JSON persistence for configurations and tuning histories.

Tuning a production system is a long-running activity; operators need to
save the best configuration found, resume analysis later, and diff runs.
The formats here are plain JSON (one document for configurations, JSON
Lines for histories — append-friendly, like the iteration log a real
Harmony server writes).
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from typing import IO, Any, Iterable, Union

from repro.harmony.history import TuningHistory
from repro.harmony.parameter import Configuration

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_json",
    "configuration_to_json",
    "configuration_from_json",
    "save_configuration",
    "load_configuration",
    "save_history",
    "load_history",
]

PathLike = Union[str, pathlib.Path]


def atomic_write_bytes(path: PathLike, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (temp file + ``os.replace``).

    A reader (or a resumed run) either sees the previous complete file or
    the new complete file — never a torn half-write from a process killed
    mid-``write``.  The temp file lives in the destination directory so the
    rename cannot cross filesystems; it is fsync'd before the swap so the
    rename never publishes unflushed data.
    """
    target = pathlib.Path(path)
    fd, tmp = tempfile.mkstemp(
        dir=str(target.parent) or ".", prefix=target.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_text(path: PathLike, text: str) -> None:
    """Atomically write ``text`` (UTF-8) to ``path``."""
    atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_json(
    path: PathLike,
    payload: Any,
    *,
    indent: int | None = 2,
    sort_keys: bool = False,
) -> None:
    """Atomically write ``payload`` as a JSON document (trailing newline)."""
    atomic_write_text(
        path, json.dumps(payload, indent=indent, sort_keys=sort_keys) + "\n"
    )


def configuration_to_json(config: Configuration, indent: int | None = 2) -> str:
    """Serialize a configuration to a JSON object string (sorted keys)."""
    return json.dumps(dict(config), indent=indent, sort_keys=True)


def configuration_from_json(text: str) -> Configuration:
    """Parse a configuration from a JSON object string."""
    data = json.loads(text)
    if not isinstance(data, dict):
        raise ValueError(f"expected a JSON object, got {type(data).__name__}")
    out = {}
    for key, value in sorted(data.items()):
        if not isinstance(key, str):
            raise ValueError(f"parameter names must be strings, got {key!r}")
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(
                f"parameter {key!r} must be an integer, got {value!r}"
            )
        out[key] = value
    return Configuration(out)


def save_configuration(config: Configuration, path: PathLike) -> None:
    """Write a configuration to ``path`` as JSON."""
    atomic_write_text(path, configuration_to_json(config) + "\n")


def load_configuration(path: PathLike) -> Configuration:
    """Read a configuration from a JSON file."""
    return configuration_from_json(pathlib.Path(path).read_text())


def _history_lines(history: TuningHistory) -> Iterable[str]:
    for record in history.records:
        yield json.dumps(
            {
                "iteration": record.iteration,
                "performance": record.performance,
                "configuration": dict(record.configuration),
            },
            sort_keys=True,
        )


def save_history(history: TuningHistory, path_or_file: PathLike | IO[str]) -> None:
    """Write a tuning history as JSON Lines (one record per line)."""
    if hasattr(path_or_file, "write"):
        for line in _history_lines(history):
            path_or_file.write(line + "\n")  # type: ignore[union-attr]
        return
    text = "".join(line + "\n" for line in _history_lines(history))
    atomic_write_text(path_or_file, text)  # type: ignore[arg-type]


def load_history(path_or_file: PathLike | IO[str]) -> TuningHistory:
    """Read a tuning history from JSON Lines.

    Iteration numbers are validated to be the consecutive sequence a
    :class:`TuningHistory` produces (corrupt/partial files fail loudly).
    """
    if hasattr(path_or_file, "read"):
        lines = path_or_file.read().splitlines()  # type: ignore[union-attr]
    else:
        lines = pathlib.Path(path_or_file).read_text().splitlines()  # type: ignore[arg-type]
    history = TuningHistory()
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        data = json.loads(line)
        for field in ("iteration", "performance", "configuration"):
            if field not in data:
                raise ValueError(f"line {i + 1}: missing field {field!r}")
        if data["iteration"] != len(history):
            raise ValueError(
                f"line {i + 1}: iteration {data['iteration']} out of order "
                f"(expected {len(history)})"
            )
        config = configuration_from_json(json.dumps(data["configuration"]))
        history.append(config, float(data["performance"]))
    return history
