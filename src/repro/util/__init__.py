"""Shared utilities: seeded RNG management, running statistics, units, tables.

These helpers are deliberately dependency-light; everything above them in
the stack (simulation kernel, tuner, cluster models) builds on this layer.
"""

from repro.util.plot import histogram, line_chart, sparkline
from repro.util.rng import RngFactory, derive_seed, spawn_rng
from repro.util.serialization import (
    load_configuration,
    load_history,
    save_configuration,
    save_history,
)
from repro.util.stats import (
    RunningStats,
    TimeWeightedStats,
    confidence_interval,
    percentile,
)
from repro.util.tables import Table, format_table
from repro.util.units import GB, KB, MB, MBPS, Seconds

__all__ = [
    "sparkline",
    "line_chart",
    "histogram",
    "save_configuration",
    "load_configuration",
    "save_history",
    "load_history",
    "RngFactory",
    "derive_seed",
    "spawn_rng",
    "RunningStats",
    "TimeWeightedStats",
    "confidence_interval",
    "percentile",
    "Table",
    "format_table",
    "KB",
    "MB",
    "GB",
    "MBPS",
    "Seconds",
]
