"""Unit constants and conversions used throughout the library.

Internally the library uses **bytes** for sizes, **seconds** for times and
**bytes/second** for rates.  Configuration parameters mirror the units the
original server software used (e.g. Squid's ``cache_mem`` is in MB, MySQL's
``join_buffer_size`` in bytes); the per-server model classes document and
perform the conversion at the boundary.
"""

from __future__ import annotations

__all__ = ["KB", "MB", "GB", "MBPS", "Seconds", "Bytes", "bytes_to_mb", "mb_to_bytes"]

#: One kilobyte (binary), in bytes.
KB: int = 1024
#: One megabyte (binary), in bytes.
MB: int = 1024 * 1024
#: One gigabyte (binary), in bytes.
GB: int = 1024 * 1024 * 1024

#: One megabit per second, in bytes/second (network rates are decimal).
MBPS: float = 1e6 / 8.0

#: Type aliases for documentation purposes.
Seconds = float
Bytes = int


def bytes_to_mb(n: float) -> float:
    """Convert bytes to (binary) megabytes."""
    return n / MB


def mb_to_bytes(n: float) -> int:
    """Convert (binary) megabytes to bytes, rounding to the nearest byte."""
    return int(round(n * MB))
