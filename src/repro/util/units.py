"""Unit constants and conversions used throughout the library.

Internally the library uses **bytes** for sizes, **seconds** for times and
**bytes/second** for rates.  Configuration parameters mirror the units the
original server software used (e.g. Squid's ``cache_mem`` is in MB, MySQL's
``join_buffer_size`` in bytes); the per-server model classes document and
perform the conversion at the boundary.
"""

from __future__ import annotations

__all__ = [
    "KB",
    "MB",
    "GB",
    "MBPS",
    "Seconds",
    "Bytes",
    "bytes_to_mb",
    "mb_to_bytes",
    "parse_count",
]

#: One kilobyte (binary), in bytes.
KB: int = 1024
#: One megabyte (binary), in bytes.
MB: int = 1024 * 1024
#: One gigabyte (binary), in bytes.
GB: int = 1024 * 1024 * 1024

#: One megabit per second, in bytes/second (network rates are decimal).
MBPS: float = 1e6 / 8.0

#: Type aliases for documentation purposes.
Seconds = float
Bytes = int


def bytes_to_mb(n: float) -> float:
    """Convert bytes to (binary) megabytes."""
    return n / MB


def mb_to_bytes(n: float) -> int:
    """Convert (binary) megabytes to bytes, rounding to the nearest byte."""
    return int(round(n * MB))


#: Decimal multipliers for :func:`parse_count` suffixes (populations are
#: counts of people, not bytes — ``2k`` means 2000, not 2048).
_COUNT_SUFFIXES = {"k": 1_000, "m": 1_000_000, "g": 1_000_000_000}


def parse_count(text: str) -> int:
    """Parse a human-friendly count: ``"750"``, ``"2k"``, ``"1.5m"``.

    Suffixes are decimal (k = 10^3, m = 10^6, g = 10^9) and
    case-insensitive; a fractional base is allowed with a suffix
    (``"2.5k"`` → 2500) but must resolve to a whole number.  Raises
    :class:`ValueError` on anything else — the CLI wraps this for
    ``--population``.
    """
    raw = text.strip().lower().replace("_", "")
    if not raw:
        raise ValueError("empty count")
    multiplier = _COUNT_SUFFIXES.get(raw[-1])
    if multiplier is not None:
        base = raw[:-1]
    else:
        multiplier = 1
        base = raw
    try:
        value = float(base) * multiplier
    except ValueError:
        raise ValueError(f"not a count: {text!r}") from None
    if value != int(value):
        raise ValueError(f"count {text!r} is not a whole number")
    return int(value)
