"""Streaming statistics helpers.

:class:`RunningStats` implements Welford's online algorithm for mean and
variance — numerically stable and O(1) per observation, which matters when a
discrete-event run feeds it millions of samples.  :class:`TimeWeightedStats`
integrates a piecewise-constant signal over time (used for resource
utilization: the fraction of time a server was busy).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = [
    "RunningStats",
    "TimeWeightedStats",
    "confidence_interval",
    "percentile",
]


class RunningStats:
    """Online mean / variance / min / max over a stream of numbers."""

    __slots__ = ("_n", "_mean", "_m2", "_min", "_max")

    def __init__(self, values: Iterable[float] = ()) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        for v in values:
            self.add(v)

    def add(self, value: float) -> None:
        """Incorporate one observation."""
        self._n += 1
        delta = value - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Return a new accumulator equivalent to seeing both streams."""
        if other._n == 0:
            out = RunningStats()
            out._n, out._mean, out._m2 = self._n, self._mean, self._m2
            out._min, out._max = self._min, self._max
            return out
        if self._n == 0:
            return other.merge(self)
        out = RunningStats()
        n = self._n + other._n
        delta = other._mean - self._mean
        out._n = n
        out._mean = self._mean + delta * other._n / n
        out._m2 = self._m2 + other._m2 + delta * delta * self._n * other._n / n
        out._min = min(self._min, other._min)
        out._max = max(self._max, other._max)
        return out

    @property
    def count(self) -> int:
        """Number of observations seen."""
        return self._n

    @property
    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        return self._mean if self._n else 0.0

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator; 0.0 for fewer than 2 samples)."""
        return self._m2 / (self._n - 1) if self._n > 1 else 0.0

    @property
    def stddev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        """Smallest observation (``inf`` when empty)."""
        return self._min

    @property
    def maximum(self) -> float:
        """Largest observation (``-inf`` when empty)."""
        return self._max

    def __repr__(self) -> str:
        return (
            f"RunningStats(n={self._n}, mean={self.mean:.6g}, "
            f"stddev={self.stddev:.6g})"
        )


class TimeWeightedStats:
    """Time-weighted average of a piecewise-constant signal.

    Call :meth:`update` whenever the signal changes; the value recorded at
    time *t* is assumed to hold until the next update.  ``mean(now)`` closes
    the last segment at ``now``.
    """

    __slots__ = ("_last_t", "_last_v", "_area", "_t0", "_max")

    def __init__(self, t0: float = 0.0, value: float = 0.0) -> None:
        self._t0 = t0
        self._last_t = t0
        self._last_v = value
        self._area = 0.0
        self._max = value

    def update(self, t: float, value: float) -> None:
        """Record that the signal changed to ``value`` at time ``t``."""
        if t < self._last_t:
            raise ValueError(f"time went backwards: {t} < {self._last_t}")
        self._area += self._last_v * (t - self._last_t)
        self._last_t = t
        self._last_v = value
        if value > self._max:
            self._max = value

    def mean(self, now: float) -> float:
        """Time-average of the signal over ``[t0, now]``."""
        if now < self._last_t:
            raise ValueError(f"now={now} precedes last update {self._last_t}")
        span = now - self._t0
        if span <= 0.0:
            return self._last_v
        return (self._area + self._last_v * (now - self._last_t)) / span

    @property
    def current(self) -> float:
        """The most recently recorded value."""
        return self._last_v

    @property
    def maximum(self) -> float:
        """Largest value the signal ever took."""
        return self._max

    def reset(self, t0: float) -> None:
        """Restart integration at ``t0``, keeping the current value."""
        self._t0 = t0
        self._last_t = t0
        self._area = 0.0
        self._max = self._last_v


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100]) of ``values``."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    data = sorted(values)
    if len(data) == 1:
        return data[0]
    pos = (len(data) - 1) * q / 100.0
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return data[lo]
    frac = pos - lo
    return data[lo] * (1.0 - frac) + data[hi] * frac


def confidence_interval(stats: RunningStats, z: float = 1.96) -> tuple[float, float]:
    """Normal-approximation confidence interval for the mean.

    Returns ``(low, high)``; collapses to the mean for fewer than 2 samples.
    """
    if stats.count < 2:
        return (stats.mean, stats.mean)
    half = z * stats.stddev / math.sqrt(stats.count)
    return (stats.mean - half, stats.mean + half)
