"""Terminal plotting: sparklines, line charts and histograms.

The paper's figures are time series (Figure 5, Figure 7) — these helpers
render their reproductions directly in the terminal and in the benchmark
result files, no plotting dependency required.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

__all__ = ["sparkline", "line_chart", "histogram"]

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def _bucket(values: Sequence[float], width: int) -> list[float]:
    """Down-sample to ``width`` points by averaging consecutive chunks."""
    if len(values) <= width:
        return list(values)
    out = []
    step = len(values) / width
    for i in range(width):
        lo = int(i * step)
        hi = max(int((i + 1) * step), lo + 1)
        chunk = values[lo:hi]
        out.append(sum(chunk) / len(chunk))
    return out


def sparkline(
    values: Sequence[float],
    width: int = 60,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> str:
    """One-line block-character series (▁▂▃…█)."""
    if not values:
        raise ValueError("sparkline of empty series")
    data = _bucket(values, width)
    lo = min(data) if lo is None else lo
    hi = max(data) if hi is None else hi
    span = hi - lo
    if span <= 0:
        return _SPARK_BLOCKS[0] * len(data)
    out = []
    for v in data:
        idx = int((v - lo) / span * (len(_SPARK_BLOCKS) - 1) + 0.5)
        out.append(_SPARK_BLOCKS[max(0, min(len(_SPARK_BLOCKS) - 1, idx))])
    return "".join(out)


def line_chart(
    values: Sequence[float],
    width: int = 70,
    height: int = 12,
    title: str = "",
    y_format: str = "{:8.1f}",
    markers: Optional[Sequence[int]] = None,
) -> str:
    """A multi-line ASCII chart with a y-axis.

    ``markers`` are x-indices (in the original series) drawn as ``|``
    columns — used to flag workload switches or reconfiguration points.
    """
    if not values:
        raise ValueError("line_chart of empty series")
    if width < 8 or height < 2:
        raise ValueError("chart too small")
    data = _bucket(values, width)
    lo, hi = min(data), max(data)
    if hi - lo <= 0:
        hi = lo + 1.0
    cols = len(data)
    marker_cols = set()
    if markers:
        scale = cols / len(values)
        marker_cols = {min(cols - 1, int(m * scale)) for m in markers}

    grid = [[" "] * cols for _ in range(height)]
    for x, v in enumerate(data):
        y = int((v - lo) / (hi - lo) * (height - 1) + 0.5)
        row = height - 1 - y
        grid[row][x] = "*"
        if x in marker_cols:
            for r in range(height):
                if grid[r][x] == " ":
                    grid[r][x] = "|"

    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        level = hi - (hi - lo) * r / (height - 1)
        prefix = y_format.format(level) if r in (0, height - 1) else " " * len(
            y_format.format(0.0)
        )
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * len(y_format.format(0.0)) + " +" + "-" * cols)
    return "\n".join(lines)


def histogram(
    values: Sequence[float],
    bins: int = 10,
    width: int = 40,
    value_format: str = "{:10.2f}",
) -> str:
    """A horizontal-bar ASCII histogram."""
    if not values:
        raise ValueError("histogram of empty series")
    if bins < 1:
        raise ValueError("bins must be >= 1")
    lo, hi = min(values), max(values)
    if hi - lo <= 0:
        return f"{value_format.format(lo)} | {'#' * width} ({len(values)})"
    counts = [0] * bins
    for v in values:
        idx = min(bins - 1, int((v - lo) / (hi - lo) * bins))
        counts[idx] += 1
    peak = max(counts)
    lines = []
    for i, count in enumerate(counts):
        edge = lo + (hi - lo) * i / bins
        bar = "#" * (math.ceil(count / peak * width) if count else 0)
        lines.append(f"{value_format.format(edge)} | {bar} ({count})")
    return "\n".join(lines)
