"""ASCII table rendering for experiment reports.

The benchmark harness prints tables shaped like the paper's (Table 1, 3, 4,
the Figure 4 matrix).  This module keeps the formatting in one place so all
reports look the same.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["Table", "format_table"]


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e12:
            return f"{value:.1f}"
        return f"{value:.4g}" if abs(value) < 1000 else f"{value:,.0f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


@dataclass
class Table:
    """A titled table with a header row and data rows."""

    title: str
    headers: Sequence[str]
    rows: list[Sequence[object]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        """Append one row; must match the header width."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, header has {len(self.headers)}"
            )
        self.rows.append(cells)

    def render(self) -> str:
        """Render the table as monospaced ASCII art."""
        return format_table(self.title, self.headers, self.rows)

    def __str__(self) -> str:
        return self.render()


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Format ``rows`` under ``headers`` with a title banner."""
    str_rows = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        """One padded, pipe-separated row."""
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    sep = "-+-".join("-" * w for w in widths)
    lines = [f"== {title} ==", fmt_row(list(headers)), sep]
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)
