"""Deterministic random-number management.

Every stochastic component in the library draws from a
:class:`numpy.random.Generator` obtained through these helpers, so that a
single experiment seed reproduces a run bit-for-bit.  Sub-streams are derived
by hashing a parent seed with a string *purpose* label, which keeps streams
independent without global sequencing (adding a new consumer never perturbs
existing streams).
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "spawn_rng", "RngFactory"]

_MASK64 = (1 << 64) - 1


def derive_seed(seed: int, *labels: object) -> int:
    """Derive a child seed from ``seed`` and a sequence of labels.

    The derivation is a SHA-256 hash of the parent seed and the labels, so
    it is stable across processes and Python versions (unlike ``hash()``).

    Parameters
    ----------
    seed:
        Parent seed (any non-negative integer).
    labels:
        Arbitrary objects identifying the consumer (converted with ``repr``).

    Returns
    -------
    int
        A 64-bit seed suitable for :func:`numpy.random.default_rng`.
    """
    h = hashlib.sha256()
    h.update(str(int(seed)).encode())
    for label in labels:
        h.update(b"\x1f")
        h.update(repr(label).encode())
    return int.from_bytes(h.digest()[:8], "little") & _MASK64


def spawn_rng(seed: int, *labels: object) -> np.random.Generator:
    """Return a generator seeded from ``derive_seed(seed, *labels)``."""
    return np.random.default_rng(derive_seed(seed, *labels))


class RngFactory:
    """Factory producing independent named random streams from one root seed.

    Examples
    --------
    >>> f = RngFactory(42)
    >>> a = f.get("browser", 0)
    >>> b = f.get("browser", 1)
    >>> float(a.random()) != float(b.random())
    True
    >>> RngFactory(42).get("browser", 0).random() == \
        RngFactory(42).get("browser", 0).random()
    True
    """

    def __init__(self, seed: int) -> None:
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        """The root seed this factory was constructed with."""
        return self._seed

    def get(self, *labels: object) -> np.random.Generator:
        """Return a fresh generator for the stream identified by ``labels``."""
        return spawn_rng(self._seed, *labels)

    def child(self, *labels: object) -> "RngFactory":
        """Return a sub-factory rooted at the derived seed for ``labels``."""
        return RngFactory(derive_seed(self._seed, *labels))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngFactory(seed={self._seed})"
