"""Deterministic random-number management.

Every stochastic component in the library draws from a
:class:`numpy.random.Generator` obtained through these helpers, so that a
single experiment seed reproduces a run bit-for-bit.  Sub-streams are derived
by hashing a parent seed with a string *purpose* label, which keeps streams
independent without global sequencing (adding a new consumer never perturbs
existing streams).
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np

__all__ = [
    "derive_seed",
    "spawn_rng",
    "RngFactory",
    "BlockSampler",
    "RandomSource",
]

_MASK64 = (1 << 64) - 1


def derive_seed(seed: int, *labels: object) -> int:
    """Derive a child seed from ``seed`` and a sequence of labels.

    The derivation is a SHA-256 hash of the parent seed and the labels, so
    it is stable across processes and Python versions (unlike ``hash()``).

    Parameters
    ----------
    seed:
        Parent seed (any non-negative integer).
    labels:
        Arbitrary objects identifying the consumer (converted with ``repr``).

    Returns
    -------
    int
        A 64-bit seed suitable for :func:`numpy.random.default_rng`.
    """
    h = hashlib.sha256()
    h.update(str(int(seed)).encode())
    for label in labels:
        h.update(b"\x1f")
        h.update(repr(label).encode())
    return int.from_bytes(h.digest()[:8], "little") & _MASK64


def spawn_rng(seed: int, *labels: object) -> np.random.Generator:
    """Return a generator seeded from ``derive_seed(seed, *labels)``."""
    return np.random.default_rng(derive_seed(seed, *labels))


class RngFactory:
    """Factory producing independent named random streams from one root seed.

    Examples
    --------
    >>> f = RngFactory(42)
    >>> a = f.get("browser", 0)
    >>> b = f.get("browser", 1)
    >>> float(a.random()) != float(b.random())
    True
    >>> RngFactory(42).get("browser", 0).random() == \
        RngFactory(42).get("browser", 0).random()
    True
    """

    def __init__(self, seed: int) -> None:
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        """The root seed this factory was constructed with."""
        return self._seed

    def get(self, *labels: object) -> np.random.Generator:
        """Return a fresh generator for the stream identified by ``labels``."""
        return spawn_rng(self._seed, *labels)

    def child(self, *labels: object) -> "RngFactory":
        """Return a sub-factory rooted at the derived seed for ``labels``."""
        return RngFactory(derive_seed(self._seed, *labels))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngFactory(seed={self._seed})"


class BlockSampler:
    """Block-buffered facade over a :class:`numpy.random.Generator`.

    Serves exactly the value stream scalar ``Generator`` calls would
    produce, bit for bit, while amortizing numpy's per-call overhead:

    * For ``random`` and ``standard_exponential`` (and ``exponential``,
      which numpy computes as ``standard_exponential() * scale``),
      vectorized draws consume the underlying bit stream identically to
      the same number of scalar draws, so a pre-drawn block can be
      served element by element.
    * A run of ``min_run`` consecutive same-distribution scalar requests
      triggers a block fill of ``block`` values; callers that know their
      run length up front pass ``size`` directly (a *site-directed*
      block).  ``min_run=0`` disables the automatic fill — scalar draws
      pass straight through and only site-directed blocks buffer, which
      is the right trade for workloads that interleave distributions
      every few draws (the DES does).
    * Switching distributions with values still buffered **rewinds** the
      generator to the canonical scalar position: the pre-fill state is
      restored and the consumed prefix is redrawn in one vectorized
      call, so the next draw — of any distribution — sees the exact
      state a pure-scalar caller would.
    * ``integers(n)`` with varying bounds is *not* stream-stable under
      batching, so it always flushes and passes through scalar.

    The counters (``scalar_draws``/``block_draws``/``fills``/
    ``rewinds``) feed ``SimulationBackend(profile=True)`` diagnostics.
    """

    __slots__ = (
        "_rng",
        "_bits",
        "_random",
        "_std_exp",
        "block",
        "min_run",
        "_kind",
        "_buf",
        "_pos",
        "_len",
        "_state0",
        "_last",
        "_run",
        "scalar_draws",
        "block_draws",
        "fills",
        "rewinds",
    )

    _UNIFORM = 1
    _EXPONENTIAL = 2

    def __init__(
        self,
        rng: np.random.Generator,
        block: int = 1024,
        min_run: int = 16,
    ) -> None:
        if block < 2:
            raise ValueError(f"block must be >= 2, got {block}")
        if min_run < 0 or min_run == 1:
            raise ValueError(f"min_run must be 0 or >= 2, got {min_run}")
        self._rng = rng
        self._bits = rng.bit_generator
        # Cached bound methods: the scalar fast path skips one attribute
        # lookup per draw.
        self._random = rng.random
        self._std_exp = rng.standard_exponential
        self.block = int(block)
        self.min_run = int(min_run)
        self._kind = 0  # active buffer's distribution (0 = none)
        self._buf: Optional[np.ndarray] = None
        self._pos = 0
        self._len = 0
        self._state0: Optional[dict] = None
        self._last = 0  # distribution of the most recent request
        self._run = 0  # current same-distribution request streak
        self.scalar_draws = 0
        self.block_draws = 0
        self.fills = 0
        self.rewinds = 0

    # -- stream maintenance -------------------------------------------
    def _rewind(self) -> None:
        """Return the generator to the canonical scalar position.

        Restores the pre-fill bit-generator state, then redraws the
        *consumed* prefix in one vectorized call (which advances the
        stream exactly as the served scalar draws did), discarding the
        unserved tail.
        """
        pos = self._pos
        self._bits.state = self._state0
        if pos:
            if self._kind == self._UNIFORM:
                self._random(pos)
            else:
                self._std_exp(pos)
        self._kind = 0
        self._buf = None
        self.rewinds += 1

    def flush(self) -> np.random.Generator:
        """Drop any buffered tail and return the underlying generator.

        After a flush the generator sits at the exact position a
        pure-scalar caller would have reached; use this before handing
        the stream to code that bypasses the sampler.
        """
        if self._kind:
            self._rewind()
        self._last = 0
        self._run = 0
        return self._rng

    def _fill(self, kind: int) -> float:
        """Pre-draw a block for ``kind`` and serve its first value."""
        self._state0 = self._bits.state
        if kind == self._UNIFORM:
            buf = self._random(self.block)
        else:
            buf = self._std_exp(self.block)
        self._buf = buf
        self._kind = kind
        self._pos = 1
        self._len = self.block
        self.fills += 1
        self.block_draws += 1
        return float(buf[0])

    def _scalar(self, kind: int) -> float:
        """One scalar draw of ``kind`` (no live buffer for that kind)."""
        if self._kind:  # buffered tail of the *other* distribution
            self._rewind()
        if self._last != kind:
            self._last = kind
            self._run = 1
        else:
            run = self._run + 1
            if self.min_run and run >= self.min_run:
                return self._fill(kind)
            self._run = run
        self.scalar_draws += 1
        if kind == self._UNIFORM:
            return self._random()
        return float(self._std_exp())

    def _draw_block(self, kind: int, size: int) -> np.ndarray:
        """A site-directed block of ``size`` values of ``kind``."""
        n = int(size)
        if self._kind == kind and self._len - self._pos >= n:
            pos = self._pos
            out = self._buf[pos:pos + n]
            pos += n
            if pos == self._len:
                self._kind = 0
                self._buf = None
            self._pos = pos
            self.block_draws += n
            return out
        if self._kind:
            self._rewind()
        self._last = kind
        self._run = 0
        self.block_draws += n
        if kind == self._UNIFORM:
            return self._random(n)
        return self._std_exp(n)

    # -- the numpy.random.Generator surface the DES consumes ----------
    def random(self, size: Optional[int] = None):
        """Uniform [0, 1) draw(s); stream-identical to scalar calls."""
        kind = self._kind
        if size is not None:
            return self._draw_block(self._UNIFORM, size)
        if not kind:
            # Scalar hot path, inlined: no live buffer of either kind.
            min_run = self.min_run
            if not min_run:  # auto-fill disabled: plain passthrough
                self.scalar_draws += 1
                return self._random()
            if self._last == self._UNIFORM:
                run = self._run + 1
                if run >= min_run:
                    return self._fill(self._UNIFORM)
                self._run = run
            else:
                self._last = self._UNIFORM
                self._run = 1
            self.scalar_draws += 1
            return self._random()
        if kind == self._UNIFORM:
            pos = self._pos
            v = self._buf[pos]
            pos += 1
            if pos == self._len:
                self._kind = 0
                self._buf = None
            self._pos = pos
            self.block_draws += 1
            return float(v)
        return self._scalar(self._UNIFORM)

    def standard_exponential(self, size: Optional[int] = None):
        """Unit-mean exponential draw(s); stream-identical to scalar."""
        kind = self._kind
        if size is not None:
            return self._draw_block(self._EXPONENTIAL, size)
        if not kind:
            min_run = self.min_run
            if not min_run:  # auto-fill disabled: plain passthrough
                self.scalar_draws += 1
                return float(self._std_exp())
            if self._last == self._EXPONENTIAL:
                run = self._run + 1
                if run >= min_run:
                    return self._fill(self._EXPONENTIAL)
                self._run = run
            else:
                self._last = self._EXPONENTIAL
                self._run = 1
            self.scalar_draws += 1
            return float(self._std_exp())
        if kind == self._EXPONENTIAL:
            pos = self._pos
            v = self._buf[pos]
            pos += 1
            if pos == self._len:
                self._kind = 0
                self._buf = None
            self._pos = pos
            self.block_draws += 1
            return float(v)
        return self._scalar(self._EXPONENTIAL)

    def exponential(self, scale: float = 1.0) -> float:
        """``Exp(scale)`` draw — numpy computes this exact product."""
        return self.standard_exponential() * scale

    def integers(self, low, high=None):
        """Scalar passthrough: bounded draws are not block-stable."""
        if self._kind:
            self._rewind()
        self._last = 0
        self._run = 0
        self.scalar_draws += 1
        return self._rng.integers(low, high)

    def stats(self) -> dict[str, int]:
        """Draw-accounting counters (for profile diagnostics)."""
        return {
            "scalar_draws": self.scalar_draws,
            "block_draws": self.block_draws,
            "fills": self.fills,
            "rewinds": self.rewinds,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BlockSampler(block={self.block}, min_run={self.min_run}, "
            f"scalar={self.scalar_draws}, block_served={self.block_draws})"
        )


#: Anything the DES draws from: a raw generator or the block facade.
RandomSource = Union[np.random.Generator, BlockSampler]
