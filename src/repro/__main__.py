"""``python -m repro`` dispatches to :mod:`repro.cli`."""

import sys

from repro.cli import main

if __name__ == "__main__":
    try:
        code = main()
    except BrokenPipeError:
        # Downstream reader (e.g. ``| head``) closed the pipe; not an error.
        sys.stderr.close()
        code = 0
    sys.exit(code)
