"""Assemble per-node station demands from the server models.

Given a cluster layout, a full configuration, and a workload context, this
module produces what the MVA solver consumes: per-node CPU / disk / NIC
demands (scaled by each node's traffic share and inflated by its memory
pressure), the finite pools to correct for, and the tier-to-tier forwarding
fractions.  Load balancing is even within a tier — the paper's duplication
assumption (b): "the workload [is] evenly distributed among all the servers
in the same tier".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.cluster.appserver import AppServerModel
from repro.cluster.context import WorkloadContext
from repro.cluster.database import DatabaseModel
from repro.cluster.memory import MemoryModel
from repro.cluster.node import Role
from repro.cluster.proxy import ProxyModel
from repro.cluster.topology import ClusterSpec

__all__ = ["NodeDemand", "PoolSpec", "DemandSet", "build_demands"]


@dataclass(frozen=True)
class NodeDemand:
    """Per-interaction demands of one node (share-scaled, pressure-inflated)."""

    node_id: str
    role: Role
    cpu: float
    disk: float
    nic: float
    cpu_servers: int
    memory_bytes: float
    memory_capacity: float
    memory_penalty: float


@dataclass(frozen=True)
class PoolSpec:
    """One finite pool: servers, total capacity, and traffic through it."""

    node_id: str
    kind: str  # "http" | "ajp" | "dbconn"
    servers: int
    capacity: int
    #: Requests per *interaction* arriving at this node's pool.
    visits: float


@dataclass(frozen=True)
class DemandSet:
    """Everything the analytic solver needs for one configuration."""

    nodes: tuple[NodeDemand, ...]
    pools: tuple[PoolSpec, ...]
    #: Dynamic pages reaching the app tier, per interaction.
    forward_dynamic: float
    #: Static requests (objects + cacheable-page misses) reaching the app
    #: tier, per interaction.
    forward_static: float
    diagnostics: dict[str, float] = field(default_factory=dict)

    @property
    def forward_total(self) -> float:
        """All requests reaching the app tier, per interaction."""
        return self.forward_dynamic + self.forward_static


#: MySQL has no configurable accept backlog: a connection beyond
#: ``max_connections`` is refused after a small TCP backlog.
DB_BACKLOG = 10


def build_demands(
    cluster: ClusterSpec,
    config: Mapping[str, int],
    ctx: WorkloadContext,
    concurrency: Mapping[str, float],
    memory_model: MemoryModel | None = None,
) -> DemandSet:
    """Derive the demand set for ``config`` on ``cluster`` under ``ctx``.

    ``concurrency`` maps node id → the solver's current estimate of
    simultaneous in-flight requests at that node (the outer fixed point of
    :class:`repro.model.analytic.AnalyticBackend` refines it).
    """
    memory_model = memory_model or MemoryModel()
    proxies = cluster.nodes_in(Role.PROXY)
    apps = cluster.nodes_in(Role.APP)
    dbs = cluster.nodes_in(Role.DB)

    nodes: list[NodeDemand] = []
    pools: list[PoolSpec] = []
    diagnostics: dict[str, float] = {}

    # --- proxy tier ------------------------------------------------------
    fwd_dynamic = 0.0
    fwd_static = 0.0
    share_p = 1.0 / len(proxies)
    for node_id in proxies:
        placement = cluster.placement(node_id)
        cfg = cluster.node_config(config, node_id)
        ev = ProxyModel(placement.spec).evaluate(
            cfg, ctx, concurrency.get(node_id, 8.0)
        )
        penalty = memory_model.penalty(ev.memory_bytes, placement.spec.memory_bytes)
        nodes.append(
            NodeDemand(
                node_id=node_id,
                role=Role.PROXY,
                cpu=share_p * ev.cpu_demand * penalty,
                disk=share_p * ev.disk_demand * penalty,
                nic=share_p * placement.spec.nic_seconds(ev.nic_bytes),
                cpu_servers=placement.spec.cpu_cores,
                memory_bytes=ev.memory_bytes,
                memory_capacity=placement.spec.memory_bytes,
                memory_penalty=penalty,
            )
        )
        fwd_dynamic += share_p * ev.forward_dynamic
        fwd_static += share_p * ev.forward_static
        diagnostics[f"{node_id}.mem_hit"] = ev.mem_hit
        diagnostics[f"{node_id}.disk_hit"] = ev.disk_hit

    # --- application tier ---------------------------------------------------
    share_a = 1.0 / len(apps)
    for node_id in apps:
        placement = cluster.placement(node_id)
        cfg = cluster.node_config(config, node_id)
        ev = AppServerModel(placement.spec).evaluate(
            cfg,
            ctx,
            dynamic_pages=fwd_dynamic,
            static_requests=fwd_static,
            concurrency=concurrency.get(node_id, 8.0),
        )
        penalty = memory_model.penalty(ev.memory_bytes, placement.spec.memory_bytes)
        nodes.append(
            NodeDemand(
                node_id=node_id,
                role=Role.APP,
                cpu=share_a * ev.cpu_demand * penalty,
                disk=share_a * ev.disk_demand * penalty,
                nic=share_a * placement.spec.nic_seconds(ev.nic_bytes),
                cpu_servers=placement.spec.cpu_cores,
                memory_bytes=ev.memory_bytes,
                memory_capacity=placement.spec.memory_bytes,
                memory_penalty=penalty,
            )
        )
        http_servers, http_backlog = ev.http_pool
        ajp_servers, ajp_backlog = ev.ajp_pool
        pools.append(
            PoolSpec(
                node_id=node_id,
                kind="http",
                servers=http_servers,
                capacity=http_servers + http_backlog,
                visits=share_a * (fwd_dynamic + fwd_static),
            )
        )
        pools.append(
            PoolSpec(
                node_id=node_id,
                kind="ajp",
                servers=ajp_servers,
                capacity=ajp_servers + ajp_backlog,
                visits=share_a * fwd_dynamic,
            )
        )
        diagnostics[f"{node_id}.spawn_rate"] = ev.spawn_rate

    # --- database tier ------------------------------------------------------
    share_d = 1.0 / len(dbs)
    for node_id in dbs:
        placement = cluster.placement(node_id)
        cfg = cluster.node_config(config, node_id)
        ev = DatabaseModel(placement.spec).evaluate(
            cfg,
            ctx,
            dynamic_pages=fwd_dynamic,
            concurrency=concurrency.get(node_id, 8.0),
        )
        penalty = memory_model.penalty(ev.memory_bytes, placement.spec.memory_bytes)
        nodes.append(
            NodeDemand(
                node_id=node_id,
                role=Role.DB,
                cpu=share_d * ev.cpu_demand * penalty,
                disk=share_d * ev.disk_demand * penalty,
                nic=share_d * placement.spec.nic_seconds(ev.nic_bytes),
                cpu_servers=placement.spec.cpu_cores,
                memory_bytes=ev.memory_bytes,
                memory_capacity=placement.spec.memory_bytes,
                memory_penalty=penalty,
            )
        )
        pools.append(
            PoolSpec(
                node_id=node_id,
                kind="dbconn",
                servers=ev.connection_limit,
                capacity=ev.connection_limit + DB_BACKLOG,
                visits=share_d * fwd_dynamic,
            )
        )
        diagnostics[f"{node_id}.table_miss"] = ev.table_miss
        diagnostics[f"{node_id}.binlog_spill"] = ev.binlog_spill

    return DemandSet(
        nodes=tuple(nodes),
        pools=tuple(pools),
        forward_dynamic=fwd_dynamic,
        forward_static=fwd_static,
        diagnostics=diagnostics,
    )
