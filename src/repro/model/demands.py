"""Assemble per-node station demands from the server models.

Given a cluster layout, a full configuration, and a workload context, this
module produces what the MVA solver consumes: per-node CPU / disk / NIC
demands (scaled by each node's traffic share and inflated by its memory
pressure), the finite pools to correct for, and the tier-to-tier forwarding
fractions.  Load balancing is even within a tier — the paper's duplication
assumption (b): "the workload [is] evenly distributed among all the servers
in the same tier".
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

from repro.cluster.appserver import AppServerModel
from repro.cluster.context import WorkloadContext
from repro.cluster.database import DatabaseModel
from repro.cluster.memory import MemoryModel
from repro.cluster.node import Role
from repro.cluster.proxy import ProxyModel
from repro.cluster.topology import ClusterSpec

__all__ = [
    "NodeDemand",
    "PoolSpec",
    "DemandSet",
    "DemandBuilder",
    "build_demands",
]


@dataclass(frozen=True)
class NodeDemand:
    """Per-interaction demands of one node (share-scaled, pressure-inflated).

    ``multiplicity`` > 1 marks an aggregated entry: one representative
    standing in for that many identical replicas (hierarchical MVA —
    see :mod:`repro.model.hierarchy`).  Demands describe a *single*
    replica; solvers weight network-level sums by the multiplicity.
    """

    node_id: str
    role: Role
    cpu: float
    disk: float
    nic: float
    cpu_servers: int
    memory_bytes: float
    memory_capacity: float
    memory_penalty: float
    multiplicity: int = 1


@dataclass(frozen=True)
class PoolSpec:
    """One finite pool: servers, total capacity, and traffic through it."""

    node_id: str
    kind: str  # "http" | "ajp" | "dbconn"
    servers: int
    capacity: int
    #: Requests per *interaction* arriving at this node's pool.
    visits: float
    #: Identical replica pools this entry stands in for (aggregation).
    multiplicity: int = 1


@dataclass(frozen=True)
class DemandSet:
    """Everything the analytic solver needs for one configuration."""

    nodes: tuple[NodeDemand, ...]
    pools: tuple[PoolSpec, ...]
    #: Dynamic pages reaching the app tier, per interaction.
    forward_dynamic: float
    #: Static requests (objects + cacheable-page misses) reaching the app
    #: tier, per interaction.
    forward_static: float
    diagnostics: dict[str, float] = field(default_factory=dict)

    @property
    def forward_total(self) -> float:
        """All requests reaching the app tier, per interaction."""
        return self.forward_dynamic + self.forward_static


#: MySQL has no configurable accept backlog: a connection beyond
#: ``max_connections`` is refused after a small TCP backlog.
DB_BACKLOG = 10


class DemandBuilder:
    """Partially-evaluated :func:`build_demands` for one ``(cluster, config)``.

    The analytic backend's outer fixed point re-derives the demand set
    every round with only the per-node *concurrency* estimates changed.
    The node lists, per-node configuration slices and model partial
    evaluations (see the models' ``partial`` methods) are fixed for the
    whole solve, as is everything downstream of them that concurrency
    cannot reach: the proxy forwarding fractions, the pool specs, and —
    for app and database nodes, whose memory footprint is
    concurrency-independent — the memory penalties and disk/NIC demands.

    :meth:`build` performs exactly the operations of
    :func:`build_demands` in the same order on the same values, so the
    demand sets (and therefore the solver's results) are bit-identical —
    hoisting changes where invariants are computed, never what they are.
    """

    __slots__ = (
        "cluster",
        "config",
        "ctx",
        "memory_model",
        "forward_dynamic",
        "forward_static",
        "_proxies",
        "_apps",
        "_dbs",
        "_pools",
        "_base_diag",
        "_db_diag",
        "_share_p",
        "_share_a",
        "_share_d",
    )

    def __init__(
        self,
        cluster: ClusterSpec,
        config: Mapping[str, int],
        ctx: WorkloadContext,
        memory_model: MemoryModel | None = None,
        groups: Sequence[tuple[str, Sequence[str]]] | None = None,
    ) -> None:
        self.cluster = cluster
        self.config = config
        self.ctx = ctx
        memory_model = memory_model or MemoryModel()
        self.memory_model = memory_model

        # ``groups`` (hierarchical aggregation — repro.model.hierarchy)
        # replaces per-node iteration with one representative per replica
        # group, carrying the member count as a multiplicity.  Without
        # groups every node is its own singleton, which reproduces the
        # ungrouped arithmetic exactly (multiplying by int 1 is exact).
        if groups is None:
            members: dict[Role, list[tuple[str, int]]] = {
                role: [(n, 1) for n in cluster.nodes_in(role)]
                for role in Role
            }
        else:
            members = {role: [] for role in Role}
            for rep, group in groups:
                members[cluster.role_of(rep)].append((rep, len(group)))

        # --- proxy tier: partials + invariant forwarding fractions -------
        proxy_members = members[Role.PROXY]
        share_p = 1.0 / sum(m for _, m in proxy_members)
        self._share_p = share_p
        self._proxies = []
        fwd_dynamic = 0.0
        fwd_static = 0.0
        self._base_diag: dict[str, float] = {}
        for node_id, mult in proxy_members:
            spec = cluster.placement(node_id).spec
            cfg = cluster.node_config(config, node_id)
            part = ProxyModel(spec).partial(cfg, ctx)
            probe = part()  # forwards/diagnostics are concurrency-free
            self._proxies.append((node_id, spec, part, mult))
            fwd_dynamic += share_p * probe.forward_dynamic * mult
            fwd_static += share_p * probe.forward_static * mult
            self._base_diag[f"{node_id}.mem_hit"] = probe.mem_hit
            self._base_diag[f"{node_id}.disk_hit"] = probe.disk_hit
        self.forward_dynamic = fwd_dynamic
        self.forward_static = fwd_static

        # --- app tier: only the CPU demand tracks concurrency ------------
        app_members = members[Role.APP]
        share_a = 1.0 / sum(m for _, m in app_members)
        self._share_a = share_a
        self._apps = []
        self._pools: list[PoolSpec] = []
        for node_id, mult in app_members:
            spec = cluster.placement(node_id).spec
            cfg = cluster.node_config(config, node_id)
            part = AppServerModel(spec).partial(
                cfg, ctx, dynamic_pages=fwd_dynamic, static_requests=fwd_static
            )
            probe = part()
            penalty = memory_model.penalty(probe.memory_bytes, spec.memory_bytes)
            invariant = NodeDemand(
                node_id=node_id,
                role=Role.APP,
                cpu=0.0,  # placeholder; rebuilt per round
                disk=share_a * probe.disk_demand * penalty,
                nic=share_a * spec.nic_seconds(probe.nic_bytes),
                cpu_servers=spec.cpu_cores,
                memory_bytes=probe.memory_bytes,
                memory_capacity=spec.memory_bytes,
                memory_penalty=penalty,
                multiplicity=mult,
            )
            self._apps.append((node_id, part, penalty, invariant))
            http_servers, http_backlog = probe.http_pool
            ajp_servers, ajp_backlog = probe.ajp_pool
            self._pools.append(
                PoolSpec(
                    node_id=node_id,
                    kind="http",
                    servers=http_servers,
                    capacity=http_servers + http_backlog,
                    visits=share_a * (fwd_dynamic + fwd_static),
                    multiplicity=mult,
                )
            )
            self._pools.append(
                PoolSpec(
                    node_id=node_id,
                    kind="ajp",
                    servers=ajp_servers,
                    capacity=ajp_servers + ajp_backlog,
                    visits=share_a * fwd_dynamic,
                    multiplicity=mult,
                )
            )

        # --- db tier: only the CPU demand tracks concurrency -------------
        db_members = members[Role.DB]
        share_d = 1.0 / sum(m for _, m in db_members)
        self._share_d = share_d
        self._dbs = []
        self._db_diag: dict[str, float] = {}
        for node_id, mult in db_members:
            spec = cluster.placement(node_id).spec
            cfg = cluster.node_config(config, node_id)
            part = DatabaseModel(spec).partial(cfg, ctx, dynamic_pages=fwd_dynamic)
            probe = part()
            penalty = memory_model.penalty(probe.memory_bytes, spec.memory_bytes)
            invariant = NodeDemand(
                node_id=node_id,
                role=Role.DB,
                cpu=0.0,  # placeholder; rebuilt per round
                disk=share_d * probe.disk_demand * penalty,
                nic=share_d * spec.nic_seconds(probe.nic_bytes),
                cpu_servers=spec.cpu_cores,
                memory_bytes=probe.memory_bytes,
                memory_capacity=spec.memory_bytes,
                memory_penalty=penalty,
                multiplicity=mult,
            )
            self._dbs.append((node_id, part, penalty, invariant))
            self._pools.append(
                PoolSpec(
                    node_id=node_id,
                    kind="dbconn",
                    servers=probe.connection_limit,
                    capacity=probe.connection_limit + DB_BACKLOG,
                    visits=share_d * fwd_dynamic,
                    multiplicity=mult,
                )
            )
            self._db_diag[f"{node_id}.table_miss"] = probe.table_miss
            self._db_diag[f"{node_id}.binlog_spill"] = probe.binlog_spill
        # Pools are immutable and concurrency-free: one tuple, every round.
        self._pools = tuple(self._pools)

    def build(self, concurrency: Mapping[str, float]) -> DemandSet:
        """Demand set under the current concurrency estimates."""
        memory_model = self.memory_model
        nodes: list[NodeDemand] = []
        diagnostics = dict(self._base_diag)

        share_p = self._share_p
        for node_id, spec, part, mult in self._proxies:
            ev = part(concurrency.get(node_id, 8.0))
            penalty = memory_model.penalty(ev.memory_bytes, spec.memory_bytes)
            nodes.append(
                NodeDemand(
                    node_id=node_id,
                    role=Role.PROXY,
                    cpu=share_p * ev.cpu_demand * penalty,
                    disk=share_p * ev.disk_demand * penalty,
                    nic=share_p * spec.nic_seconds(ev.nic_bytes),
                    cpu_servers=spec.cpu_cores,
                    memory_bytes=ev.memory_bytes,
                    memory_capacity=spec.memory_bytes,
                    memory_penalty=penalty,
                    multiplicity=mult,
                )
            )

        share_a = self._share_a
        for node_id, part, penalty, invariant in self._apps:
            ev = part(concurrency.get(node_id, 8.0))
            nodes.append(
                replace(invariant, cpu=share_a * ev.cpu_demand * penalty)
            )
            diagnostics[f"{node_id}.spawn_rate"] = ev.spawn_rate

        share_d = self._share_d
        for node_id, part, penalty, invariant in self._dbs:
            ev = part(concurrency.get(node_id, 8.0))
            nodes.append(
                replace(invariant, cpu=share_d * ev.cpu_demand * penalty)
            )
        diagnostics.update(self._db_diag)

        return DemandSet(
            nodes=tuple(nodes),
            pools=self._pools,
            forward_dynamic=self.forward_dynamic,
            forward_static=self.forward_static,
            diagnostics=diagnostics,
        )


def build_demands(
    cluster: ClusterSpec,
    config: Mapping[str, int],
    ctx: WorkloadContext,
    concurrency: Mapping[str, float],
    memory_model: MemoryModel | None = None,
) -> DemandSet:
    """Derive the demand set for ``config`` on ``cluster`` under ``ctx``.

    ``concurrency`` maps node id → the solver's current estimate of
    simultaneous in-flight requests at that node (the outer fixed point of
    :class:`repro.model.analytic.AnalyticBackend` refines it).  Callers
    that rebuild demands for many concurrency iterates of one
    configuration should hold a :class:`DemandBuilder` instead — this
    convenience wrapper prices the invariant setup on every call.
    """
    return DemandBuilder(cluster, config, ctx, memory_model).build(concurrency)
