"""M/M/c/K waiting and blocking — the finite-pool corrections.

Tomcat's connector pools and MySQL's connection limit are *c*-server queues
with finite waiting rooms: ``c = maxProcessors``, ``K = c + acceptCount``.
A request arriving with all threads busy waits in the backlog; one arriving
with the backlog full is rejected (a failed TPC-W interaction).  The MVA
network cannot express these caps directly, so the analytic backend layers
the classical M/M/c/K results on top: :func:`mmck` returns the blocking
probability and the mean wait of *accepted* requests, given the arrival
rate and mean holding time the MVA solution implies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["PoolResult", "mmck"]


@dataclass(frozen=True)
class PoolResult:
    """Steady-state M/M/c/K quantities."""

    #: Probability an arrival is rejected (system full).
    blocking: float
    #: Mean waiting time (excluding service) of accepted arrivals, seconds.
    wait: float
    #: Mean number of busy servers.
    busy: float
    #: Offered load a = λ·s (Erlangs).
    offered: float
    #: Number of servers c.
    servers: int = 1

    @property
    def utilization(self) -> float:
        """Fraction of servers busy."""
        return self.busy / self.servers


def mmck(arrival_rate: float, holding_time: float, servers: int, capacity: int) -> PoolResult:
    """Solve M/M/c/K.

    Parameters
    ----------
    arrival_rate:
        λ, requests per second (Poisson).
    holding_time:
        Mean service (holding) time per request, seconds.
    servers:
        c >= 1 parallel servers (threads / connections).
    capacity:
        K >= c total places (in service + waiting).  ``K == c`` means no
        waiting room (pure loss).
    """
    if servers < 1:
        raise ValueError("servers must be >= 1")
    if capacity < servers:
        raise ValueError("capacity must be >= servers")
    if arrival_rate < 0 or holding_time < 0:
        raise ValueError("rates and times must be non-negative")
    # Exact sentinel check is the point: literal-zero inputs short-circuit
    # to the empty-system solution.
    if arrival_rate == 0.0 or holding_time == 0.0:  # repro: noqa[RPL004]
        return PoolResult(blocking=0.0, wait=0.0, busy=0.0, offered=0.0, servers=servers)

    c, k = servers, capacity
    a = arrival_rate * holding_time  # offered load, Erlangs
    if a <= 0.0:  # product underflow of tiny positives
        return PoolResult(blocking=0.0, wait=0.0, busy=0.0, offered=0.0,
                          servers=servers)

    # p_n / p_0 in log space for numerical stability with large pools;
    # log(a) - log(n) rather than log(a/n) so subnormal loads don't
    # underflow the quotient to zero.
    log_a = math.log(a)
    log_terms = [0.0] * (k + 1)
    for n in range(1, k + 1):
        log_terms[n] = log_terms[n - 1] + log_a - math.log(min(n, c))
    m = max(log_terms)
    weights = [math.exp(t - m) for t in log_terms]
    total = sum(weights)
    probs = [w / total for w in weights]

    blocking = probs[k]
    accepted_rate = arrival_rate * (1.0 - blocking)
    queue_len = sum((n - c) * probs[n] for n in range(c + 1, k + 1))
    busy = sum(min(n, c) * probs[n] for n in range(k + 1))
    wait = queue_len / accepted_rate if accepted_rate > 0 else 0.0
    # Guard tiny negative round-off.
    return PoolResult(
        blocking=min(max(blocking, 0.0), 1.0),
        wait=max(wait, 0.0),
        busy=max(busy, 0.0),
        offered=a,
        servers=c,
    )
