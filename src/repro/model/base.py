"""Backend interface: what a "measurement iteration" consumes and produces.

Both backends (analytic and discrete-event) implement
:class:`PerformanceBackend`: given a :class:`Scenario` (the cluster, the
workload and the closed EB population) and a full configuration, produce a
:class:`Measurement` — WIPS plus the per-node resource utilizations §IV's
reconfiguration algorithm monitors.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.cluster.topology import ClusterSpec
from repro.harmony.parameter import Configuration
from repro.tpcw.browser import BrowserBehavior
from repro.tpcw.catalog import Catalog
from repro.tpcw.interactions import WorkloadMix

__all__ = ["Scenario", "ResourceUtilization", "Measurement", "PerformanceBackend"]


@dataclass(frozen=True)
class Scenario:
    """The system and workload one measurement iteration runs against."""

    cluster: ClusterSpec
    mix: WorkloadMix
    #: Number of emulated browsers (closed population).
    population: int
    catalog: Catalog = field(default_factory=Catalog)
    #: Think-time / navigation behaviour; mix defaults to the scenario mix.
    behavior: Optional[BrowserBehavior] = None
    #: Optional work-line partition (line id → node ids).  When set, each
    #: line serves an equal share of the EB population in isolation.
    work_lines: Optional[Mapping[str, tuple[str, ...]]] = None

    def __post_init__(self) -> None:
        if self.population < 1:
            raise ValueError("population must be >= 1")
        if self.behavior is None:
            object.__setattr__(self, "behavior", BrowserBehavior(self.mix))
        if self.work_lines is not None:
            frozen = {k: tuple(v) for k, v in self.work_lines.items()}
            listed = [n for nodes in frozen.values() for n in nodes]
            if sorted(listed) != sorted(self.cluster.node_ids):
                raise ValueError(
                    "work lines must cover every cluster node exactly once"
                )
            object.__setattr__(self, "work_lines", frozen)

    def with_mix(self, mix: WorkloadMix) -> "Scenario":
        """Same scenario under a different workload mix."""
        return Scenario(
            cluster=self.cluster,
            mix=mix,
            population=self.population,
            catalog=self.catalog,
            behavior=BrowserBehavior(
                mix,
                self.behavior.mean_think_time,
                self.behavior.max_think_time,
            ),
            work_lines=self.work_lines,
        )

    def with_cluster(self, cluster: ClusterSpec) -> "Scenario":
        """Same scenario on a different cluster layout (post-reconfiguration).

        Any work-line partition is dropped (lines are tied to the layout).
        """
        return Scenario(
            cluster=cluster,
            mix=self.mix,
            population=self.population,
            catalog=self.catalog,
            behavior=self.behavior,
            work_lines=None,
        )


@dataclass(frozen=True)
class ResourceUtilization:
    """Utilization of one node's resources, each in [0, 1]-ish.

    These are the ``R_ij`` values of the paper's Table 5 (j ranges over
    CPU, disk, network and memory).  Values can slightly exceed 1 for the
    memory ratio (resident/physical) under pressure.
    """

    cpu: float
    disk: float
    network: float
    memory: float

    def as_dict(self) -> dict[str, float]:
        """Resource-name → utilization mapping (for threshold scans)."""
        return {
            "cpu": self.cpu,
            "disk": self.disk,
            "network": self.network,
            "memory": self.memory,
        }

    def max_utilization(self) -> float:
        """The busiest resource's utilization."""
        return max(self.cpu, self.disk, self.network, self.memory)


@dataclass(frozen=True)
class Measurement:
    """One iteration's observed performance."""

    #: Measured web interactions per second (includes measurement noise).
    wips: float
    #: Model throughput before noise (diagnostic; DES reports its raw rate).
    raw_wips: float
    #: Fraction of interactions rejected/failed.
    error_rate: float
    #: Mean interaction response time, seconds.
    response_time: float
    #: Per-node resource utilizations.
    utilization: Mapping[str, ResourceUtilization]
    #: Free-form diagnostics (hit rates, pool occupancies, memory penalty…).
    diagnostics: Mapping[str, float] = field(default_factory=dict)
    #: Per-work-line WIPS when the scenario was partitioned.
    per_line_wips: Mapping[str, float] = field(default_factory=dict)


class PerformanceBackend(abc.ABC):
    """Measure a configuration on a scenario — the testbed substitute."""

    @abc.abstractmethod
    def measure(
        self,
        scenario: Scenario,
        configuration: Configuration,
        seed: int = 0,
    ) -> Measurement:
        """Run one measurement iteration and return its observation.

        ``configuration`` must be complete for ``scenario.cluster``'s full
        parameter space (``"<node>.<param>"`` names).  ``seed`` drives the
        measurement noise / simulation randomness, so repeating a seed
        reproduces the measurement exactly.
        """
