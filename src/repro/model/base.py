"""Backend interface: what a "measurement iteration" consumes and produces.

Both backends (analytic and discrete-event) implement
:class:`PerformanceBackend`: given a :class:`Scenario` (the cluster, the
workload and the closed EB population) and a full configuration, produce a
:class:`Measurement` — WIPS plus the per-node resource utilizations §IV's
reconfiguration algorithm monitors.

This module also hosts the measurement-memoization layer: a
content-addressed :class:`MeasurementCache` keyed on ``(scenario
fingerprint, configuration, seed)`` and the :class:`MemoizedBackend`
wrapper that consults it, so repeated evaluations of the same point
(simplex shrink re-evaluations, remeasure baselines, cross-workload matrix
reuse) are never solved twice.  Measurements are deterministic per seed,
so a cache hit returns the bit-identical measurement the backend would
have produced.
"""

from __future__ import annotations

import abc
import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from repro.cluster.topology import ClusterSpec
from repro.harmony.parameter import Configuration
from repro.tpcw.browser import BrowserBehavior
from repro.tpcw.catalog import Catalog
from repro.tpcw.interactions import WorkloadMix

__all__ = [
    "Scenario",
    "ResourceUtilization",
    "Measurement",
    "PerformanceBackend",
    "CacheStats",
    "SpeculationStats",
    "MeasurementCache",
    "MemoizedBackend",
]


@dataclass(frozen=True)
class Scenario:
    """The system and workload one measurement iteration runs against."""

    cluster: ClusterSpec
    mix: WorkloadMix
    #: Number of emulated browsers (closed population).
    population: int
    catalog: Catalog = field(default_factory=Catalog)
    #: Think-time / navigation behaviour; mix defaults to the scenario mix.
    behavior: Optional[BrowserBehavior] = None
    #: Optional work-line partition (line id → node ids).  When set, each
    #: line serves an equal share of the EB population in isolation.
    work_lines: Optional[Mapping[str, tuple[str, ...]]] = None

    def __post_init__(self) -> None:
        if self.population < 1:
            raise ValueError("population must be >= 1")
        if self.behavior is None:
            object.__setattr__(self, "behavior", BrowserBehavior(self.mix))
        if self.work_lines is not None:
            # Sorted so the partition is canonical: fingerprint() hashes
            # repr(work_lines), and insertion order must not leak into it.
            frozen = {k: tuple(v) for k, v in sorted(self.work_lines.items())}
            listed = [
                n
                # Order-insensitive: both sides of the check below are
                # sorted before comparison.
                for nodes in frozen.values()  # repro: noqa[RPL003]
                for n in nodes
            ]
            if sorted(listed) != sorted(self.cluster.node_ids):
                raise ValueError(
                    "work lines must cover every cluster node exactly once"
                )
            object.__setattr__(self, "work_lines", frozen)

    def fingerprint(self) -> str:
        """Content hash of everything that affects a measurement.

        Covers the cluster layout and hardware, the workload mix weights,
        the population, the catalog's object universe, the think-time
        behaviour and any work-line partition — so two scenarios built
        independently from the same inputs share cache entries, and any
        difference that could change a measurement changes the key.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is None:
            assert self.behavior is not None
            h = hashlib.sha256()
            h.update(
                repr(
                    (
                        self.cluster.fingerprint(),
                        self.mix.fingerprint(),
                        self.population,
                        self.catalog.fingerprint(),
                        (
                            self.behavior.mix.fingerprint(),
                            self.behavior.mean_think_time,
                            self.behavior.max_think_time,
                        ),
                        self.work_lines,
                    )
                ).encode()
            )
            cached = h.hexdigest()
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    def with_mix(self, mix: WorkloadMix) -> "Scenario":
        """Same scenario under a different workload mix."""
        return Scenario(
            cluster=self.cluster,
            mix=mix,
            population=self.population,
            catalog=self.catalog,
            behavior=BrowserBehavior(
                mix,
                self.behavior.mean_think_time,
                self.behavior.max_think_time,
            ),
            work_lines=self.work_lines,
        )

    def with_cluster(self, cluster: ClusterSpec) -> "Scenario":
        """Same scenario on a different cluster layout (post-reconfiguration).

        Any work-line partition is dropped (lines are tied to the layout).
        """
        return Scenario(
            cluster=cluster,
            mix=self.mix,
            population=self.population,
            catalog=self.catalog,
            behavior=self.behavior,
            work_lines=None,
        )


@dataclass(frozen=True)
class ResourceUtilization:
    """Utilization of one node's resources, each in [0, 1]-ish.

    These are the ``R_ij`` values of the paper's Table 5 (j ranges over
    CPU, disk, network and memory).  Values can slightly exceed 1 for the
    memory ratio (resident/physical) under pressure.
    """

    cpu: float
    disk: float
    network: float
    memory: float

    def as_dict(self) -> dict[str, float]:
        """Resource-name → utilization mapping (for threshold scans)."""
        return {
            "cpu": self.cpu,
            "disk": self.disk,
            "network": self.network,
            "memory": self.memory,
        }

    def max_utilization(self) -> float:
        """The busiest resource's utilization."""
        return max(self.cpu, self.disk, self.network, self.memory)


@dataclass(frozen=True)
class Measurement:
    """One iteration's observed performance."""

    #: Measured web interactions per second (includes measurement noise).
    wips: float
    #: Model throughput before noise (diagnostic; DES reports its raw rate).
    raw_wips: float
    #: Fraction of interactions rejected/failed.
    error_rate: float
    #: Mean interaction response time, seconds.
    response_time: float
    #: Per-node resource utilizations.
    utilization: Mapping[str, ResourceUtilization]
    #: Free-form diagnostics (hit rates, pool occupancies, memory penalty…).
    diagnostics: Mapping[str, float] = field(default_factory=dict)
    #: Per-work-line WIPS when the scenario was partitioned.
    per_line_wips: Mapping[str, float] = field(default_factory=dict)


class PerformanceBackend(abc.ABC):
    """Measure a configuration on a scenario — the testbed substitute."""

    @abc.abstractmethod
    def measure(
        self,
        scenario: Scenario,
        configuration: Configuration,
        seed: int = 0,
    ) -> Measurement:
        """Run one measurement iteration and return its observation.

        ``configuration`` must be complete for ``scenario.cluster``'s full
        parameter space (``"<node>.<param>"`` names).  ``seed`` drives the
        measurement noise / simulation randomness, so repeating a seed
        reproduces the measurement exactly.
        """

    def measure_batch(
        self,
        scenario: Scenario,
        requests: Sequence[tuple[Configuration, int]],
    ) -> list[Measurement]:
        """Measure many ``(configuration, seed)`` points on one scenario.

        Results are returned in request order and are identical to calling
        :meth:`measure` on each point.  Backends that can amortize work
        across points override this (the analytic backend solves all
        distinct configurations in one vectorized MVA batch); the default
        is the plain serial loop.
        """
        return [self.measure(scenario, cfg, seed=seed) for cfg, seed in requests]

    def prefetch_configs(
        self,
        scenario: Scenario,
        configurations: Sequence[Configuration],
    ) -> int:
        """Warm any deterministic caches for configurations likely to be
        measured soon.  Returns the number of cold solves performed.

        Purely advisory: a backend with nothing seed-independent to cache
        (the DES backend) ignores the hint, and measurements after a
        prefetch are bit-identical to measurements without one — the only
        effect is that later :meth:`measure` calls may hit a warm cache.
        The analytic backend overrides this to solve the whole frontier in
        one vectorized MVA batch.
        """
        return 0

    def measurement_cache_token(self) -> tuple:
        """Extra cache-key material identifying this backend's output.

        Measurement caches key on ``(scenario, configuration, seed)``;
        a backend whose output for that triple depends on additional
        backend-level settings (e.g. the DES with ``replications>1``
        merges several replications into one measurement) must return
        them here so differently-configured backends never share
        entries.  The default empty tuple is dropped from keys entirely,
        keeping legacy key shapes — and on-disk shared stores — intact.
        """
        return ()


# ----------------------------------------------------------------------
# Measurement memoization


@dataclass
class CacheStats:
    """Hit/miss/size counters of one measurement cache.

    Misses are sliced by *why* they missed.  Measurement-cache keys include
    the seed (they must: noise makes measurements seed-dependent), so a
    tuning loop that derives a fresh seed per iteration can never hit —
    every lookup asks for a configuration/seed pair nobody measured.  Such
    ``seed_cold_misses`` (the configuration was cached under *other* seeds)
    are cold by design; ``config_cold_misses`` (the configuration has never
    been cached at all) are the only sign a cache might actually be broken.
    A fig4-style run reporting ``hit_rate: 0.0`` with all misses seed-cold
    is therefore working exactly as specified.
    """

    hits: int = 0
    misses: int = 0
    size: int = 0
    #: Misses where the configuration was cached, but under different seeds.
    seed_cold_misses: int = 0
    #: Misses where the configuration was never cached under any seed.
    config_cold_misses: int = 0
    #: The subset of ``hits`` served from a cross-process/cross-run shared
    #: store rather than this process's own cache (0 outside the shared
    #: execution engine).  Non-zero proves cache traffic crossed a worker
    #: or run boundary.
    shared_hits: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def config_hit_rate(self) -> float:
        """Hit rate with by-design seed misses excluded.

        ``hits / (hits + config_cold_misses)`` — "of the lookups the cache
        could possibly have served, how many did it serve?".  This is the
        number to alarm on; :attr:`hit_rate` legitimately reads 0.0 under
        per-iteration seeding.
        """
        servable = self.hits + self.config_cold_misses
        return self.hits / servable if servable else 0.0

    def as_dict(self) -> dict[str, float]:
        """Counters as a flat mapping (for reports and JSON)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": self.size,
            "hit_rate": self.hit_rate,
            "seed_cold_misses": self.seed_cold_misses,
            "config_cold_misses": self.config_cold_misses,
            "config_hit_rate": self.config_hit_rate,
            "shared_hits": self.shared_hits,
        }


@dataclass
class SpeculationStats:
    """Accounting of one speculative evaluator's predictions.

    Units: ``planned``/``hits``/``misses`` count per-group candidate
    fragments; ``batched`` counts fused full configurations submitted to
    the backend; ``solves`` counts cold deterministic solves the prefetches
    actually performed (per work line for partitioned scenarios).  Waste is
    bounded by the frontier size per step: each step adds at most
    ``len(frontier)`` to ``planned`` and at least one of those candidates
    is the committed ask whenever the prediction was exact.
    """

    #: Candidate fragments speculated (post-dedupe, per group, per step).
    planned: int = 0
    #: Committed asks that were in the previous step's speculated frontier.
    hits: int = 0
    #: Committed asks the previous frontier did not contain.
    misses: int = 0
    #: Fused full configurations submitted for prefetching.
    batched: int = 0
    #: Cold deterministic solves performed by prefetches.
    solves: int = 0
    #: Prefetch batches dropped because the backend raised — speculation
    #: is advisory, so a failed warm-up never aborts the tuning step.
    prefetch_failures: int = 0

    @property
    def waste(self) -> int:
        """Speculated candidates that were never committed."""
        return max(self.planned - self.hits, 0)

    @property
    def waste_ratio(self) -> float:
        """Fraction of speculated candidates never committed."""
        return self.waste / self.planned if self.planned else 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of committed asks the speculation predicted."""
        committed = self.hits + self.misses
        return self.hits / committed if committed else 0.0

    def as_dict(self) -> dict[str, float]:
        """Counters as a flat mapping (for reports and JSON)."""
        return {
            "planned": self.planned,
            "hits": self.hits,
            "misses": self.misses,
            "batched": self.batched,
            "solves": self.solves,
            "prefetch_failures": self.prefetch_failures,
            "waste": self.waste,
            "waste_ratio": self.waste_ratio,
            "hit_rate": self.hit_rate,
        }


class MeasurementCache:
    """Content-addressed memoization of measurements.

    Keys are ``(scenario fingerprint, configuration, seed)``; a hit returns
    the exact :class:`Measurement` (immutable) the backend produced for
    that point, which — backends being deterministic per seed — is
    bit-identical to re-measuring.  Entries are evicted LRU beyond
    ``max_entries``.
    """

    def __init__(self, max_entries: Optional[int] = 100_000) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None for unbounded)")
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple, Measurement] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._seed_cold_misses = 0
        self._config_cold_misses = 0
        self._shared_hits = 0
        #: (fingerprint, configuration) → number of live seeds cached for it;
        #: used to slice misses into "cold by design" vs "cache broken".
        self._config_seeds: dict[tuple, int] = {}

    @staticmethod
    def key(
        scenario: Scenario,
        configuration: Configuration,
        seed: int,
        token: tuple = (),
    ) -> tuple:
        """The content-addressed cache key of one measurement point.

        ``token`` is the measuring backend's
        :meth:`PerformanceBackend.measurement_cache_token`; an empty one
        is omitted so pre-existing 3-tuple keys (and anything persisted
        under them) stay valid.
        """
        base = (
            scenario.fingerprint(),
            tuple(sorted(configuration.items())),
            int(seed),
        )
        return base + (tuple(token),) if token else base

    def lookup(
        self,
        scenario: Scenario,
        configuration: Configuration,
        seed: int,
        token: tuple = (),
    ) -> Optional[Measurement]:
        """The cached measurement for a point, or None (counts hit/miss)."""
        key = self.key(scenario, configuration, seed, token)
        entry = self._entries.get(key)
        if entry is None:
            self._misses += 1
            if key[:2] in self._config_seeds:
                self._seed_cold_misses += 1
            else:
                self._config_cold_misses += 1
            return None
        self._hits += 1
        self._entries.move_to_end(key)
        return entry

    def store(
        self,
        scenario: Scenario,
        configuration: Configuration,
        seed: int,
        measurement: Measurement,
        token: tuple = (),
    ) -> None:
        """Record one measured point (evicting LRU beyond ``max_entries``)."""
        self._insert(self.key(scenario, configuration, seed, token), measurement)

    def _insert(self, key: tuple, measurement: Measurement) -> None:
        """Key-level insert (the shared cache absorbs store hits via this)."""
        if key not in self._entries:
            base = key[:2]
            self._config_seeds[base] = self._config_seeds.get(base, 0) + 1
        self._entries[key] = measurement
        if self.max_entries is not None:
            while len(self._entries) > self.max_entries:
                evicted, _ = self._entries.popitem(last=False)
                base = evicted[:2]
                remaining = self._config_seeds.get(base, 0) - 1
                if remaining > 0:
                    self._config_seeds[base] = remaining
                else:
                    self._config_seeds.pop(base, None)

    @property
    def stats(self) -> CacheStats:
        """Current hit/miss/size counters (misses sliced by cause)."""
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            size=len(self._entries),
            seed_cold_misses=self._seed_cold_misses,
            config_cold_misses=self._config_cold_misses,
            shared_hits=self._shared_hits,
        )

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        self._entries.clear()
        self._config_seeds.clear()


class MemoizedBackend(PerformanceBackend):
    """A backend wrapper that memoizes measurements.

    ``enabled=False`` makes the wrapper fully transparent (every call goes
    to the inner backend, nothing is cached) — the switch experiment
    drivers expose as ``--no-cache``.
    """

    def __init__(
        self,
        backend: PerformanceBackend,
        cache: Optional[MeasurementCache] = None,
        enabled: bool = True,
    ) -> None:
        self.backend = backend
        self.cache = cache if cache is not None else MeasurementCache()
        self.enabled = enabled

    def measurement_cache_token(self) -> tuple:
        """Delegate to the wrapped backend (the cache keys on its token)."""
        return self.backend.measurement_cache_token()

    def measure(
        self,
        scenario: Scenario,
        configuration: Configuration,
        seed: int = 0,
    ) -> Measurement:
        """Measure one point, serving repeats from the cache."""
        if not self.enabled:
            return self.backend.measure(scenario, configuration, seed=seed)
        token = self.backend.measurement_cache_token()
        hit = self.cache.lookup(scenario, configuration, seed, token)
        if hit is not None:
            return hit
        measurement = self.backend.measure(scenario, configuration, seed=seed)
        self.cache.store(scenario, configuration, seed, measurement, token)
        return measurement

    def measure_batch(
        self,
        scenario: Scenario,
        requests: Sequence[tuple[Configuration, int]],
    ) -> list[Measurement]:
        """Measure a batch, forwarding only cache misses to the backend."""
        if not self.enabled:
            return self.backend.measure_batch(scenario, requests)
        token = self.backend.measurement_cache_token()
        results: list[Optional[Measurement]] = []
        missing: list[tuple[int, Configuration, int]] = []
        for i, (cfg, seed) in enumerate(requests):
            hit = self.cache.lookup(scenario, cfg, seed, token)
            results.append(hit)
            if hit is None:
                missing.append((i, cfg, seed))
        if missing:
            measured = self.backend.measure_batch(
                scenario, [(cfg, seed) for _, cfg, seed in missing]
            )
            for (i, cfg, seed), m in zip(missing, measured):
                self.cache.store(scenario, cfg, seed, m, token)
                results[i] = m
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def prefetch_configs(
        self,
        scenario: Scenario,
        configurations: Sequence[Configuration],
    ) -> int:
        """Forward prefetch hints to the inner backend.

        The measurement cache itself is seed-addressed and cannot be warmed
        without seeds; the deterministic (seed-independent) caches live in
        the inner backend.
        """
        return self.backend.prefetch_configs(scenario, configurations)

    @property
    def stats(self) -> CacheStats:
        """The underlying cache's counters."""
        return self.cache.stats
