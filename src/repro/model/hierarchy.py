"""Hierarchical MVA: collapse homogeneous replicated tiers to representatives.

The paper's duplication assumption — "the workload [is] evenly distributed
among all the servers in the same tier" — means a tier of ``k`` identical
replicas running identical configurations contributes ``k`` copies of the
*same* station row to the closed network.  Hierarchical (flow-equivalent)
aggregation solves one representative station per group with its network
weight scaled by the replica count (``Station.multiplicity``), so a
64/128/16 topology costs the same per solve as a 3-node one.  For the
Schweitzer fixed point the aggregation is exact up to float summation
order; for the fluid solver it is exact, period (the population equation
is a per-station sum).

A group only collapses when its members agree on *everything* that feeds
the station math: role, hardware spec, and configuration slice.  Members
that disagree — a heterogeneous tier, or a duplication-free configuration
that tunes replicas apart — fall out into singleton groups, i.e. the plan
degrades gracefully to the exact per-node solve rather than aggregating
incorrectly.
"""

from __future__ import annotations

from dataclasses import astuple, dataclass
from typing import Mapping

from repro.cluster.topology import ClusterSpec

__all__ = ["AggregationPlan", "aggregation_plan"]


@dataclass(frozen=True)
class AggregationPlan:
    """Replica groups of one ``(cluster, configuration)`` pair.

    ``groups`` maps each group's representative (its first member in
    placement order) to the full member tuple, ordered by the
    representative's placement.  A trivial plan (every group a singleton)
    means aggregation has nothing to offer and callers should take the
    ordinary per-node path.
    """

    groups: tuple[tuple[str, tuple[str, ...]], ...]

    @property
    def is_trivial(self) -> bool:
        """True when no group has more than one member."""
        return all(len(members) == 1 for _, members in self.groups)

    @property
    def num_nodes(self) -> int:
        """Total nodes represented across all groups."""
        return sum(len(members) for _, members in self.groups)

    def expansions(self) -> list[tuple[str, tuple[str, ...]]]:
        """The non-singleton groups: ``(representative, other members)``.

        This is what solution finalization consumes to copy the
        representative's per-node outputs (utilization, §IV diagnostics)
        onto every aggregated-away member.
        """
        return [
            (rep, members[1:])
            for rep, members in self.groups
            if len(members) > 1
        ]


def aggregation_plan(
    cluster: ClusterSpec, configuration: Mapping[str, int]
) -> AggregationPlan:
    """Group ``cluster``'s nodes into aggregable replica groups.

    Two nodes share a group iff they have the same role, the same
    hardware spec, and byte-identical configuration slices.  The
    configuration is split per node in one pass (O(parameters), not
    O(nodes × parameters) — wide clusters carry thousands of namespaced
    entries), and the per-node slices are compared in sorted-key order so
    the grouping is independent of mapping iteration order.
    """
    per_node: dict[str, list[tuple[str, int]]] = {}
    for name, value in sorted(configuration.items()):
        node_id, dot, param = name.partition(".")
        if dot:
            per_node.setdefault(node_id, []).append((param, value))
    groups: dict[tuple, list[str]] = {}
    for p in cluster.placements:
        key = (
            p.role.value,
            astuple(p.spec),
            tuple(per_node.get(p.node_id, ())),
        )
        groups.setdefault(key, []).append(p.node_id)
    return AggregationPlan(
        groups=tuple(
            (members[0], tuple(members)) for members in groups.values()
        )
    )
