"""Measurement-noise model.

Real WIPS measurements fluctuate iteration to iteration.  The paper reports
two empirical facts the noise model reproduces:

* baseline runs have a small relative spread (Table 4's "None" row:
  σ ≈ 2% of the mean), and
* "the system often performs poorly [and erratically] when using a
  configuration with parameters with extreme values" (§III.A) — so the
  relative noise grows with how close the configuration sits to its bounds
  and with memory pressure.

Noise is multiplicative lognormal-ish (symmetric in the small-σ regime) and
driven by an explicit generator so iterations are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["NoiseModel"]


@dataclass(frozen=True)
class NoiseModel:
    """Relative measurement noise as a function of configuration state."""

    #: Relative σ for a mid-range configuration with no memory pressure.
    base_sigma: float = 0.012
    #: Additional relative σ at full extremeness (every parameter pinned).
    extreme_sigma: float = 0.015
    #: Additional relative σ per unit of memory-pressure penalty above 1.
    pressure_sigma: float = 0.08
    #: Hard cap on the relative σ.
    max_sigma: float = 0.25

    def __post_init__(self) -> None:
        for name in ("base_sigma", "extreme_sigma", "pressure_sigma", "max_sigma"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def sigma(self, extremeness: float, memory_penalty: float = 1.0) -> float:
        """Relative noise level for a configuration.

        ``extremeness`` is the mean per-dimension closeness to bounds in
        [0, 1]; ``memory_penalty`` is the worst node's service-inflation
        factor (>= 1).
        """
        if not 0.0 <= extremeness <= 1.0:
            raise ValueError(f"extremeness must be in [0,1], got {extremeness}")
        if memory_penalty < 1.0:
            raise ValueError("memory_penalty must be >= 1")
        s = (
            self.base_sigma
            + self.extreme_sigma * extremeness**2
            + self.pressure_sigma * (memory_penalty - 1.0)
        )
        return min(s, self.max_sigma)

    def apply(
        self,
        value: float,
        extremeness: float,
        memory_penalty: float,
        rng: np.random.Generator,
    ) -> float:
        """One noisy observation of ``value`` (never negative)."""
        s = self.sigma(extremeness, memory_penalty)
        noisy = value * float(np.exp(rng.normal(0.0, s) - 0.5 * s * s))
        return max(noisy, 0.0)
