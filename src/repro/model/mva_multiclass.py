"""Approximate multi-class Mean Value Analysis.

The analytic backend aggregates the 14 TPC-W interactions into a single
customer class (mix-weighted demands).  This module provides the
multi-class solver needed to *check* that aggregation and to model
populations that genuinely differ — e.g. a browsing EB pool sharing the
cluster with an ordering EB pool (two think times, two demand vectors),
which no single class can express.

The solver is the multi-class Schweitzer fixed point: an arriving class-c
customer at station k sees the full queue of other classes but only
``(N_c - 1)/N_c`` of its own class's queue.  Multi-server stations use the
same Seidmann transformation as the single-class solver.

Exactness checks in the test suite:

* one class ≡ :func:`repro.model.mva.solve_mva`,
* identical classes ≡ a merged single class,
* closed-form M/M/1 sanity at light load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.model.mva import Station

__all__ = ["CustomerClass", "MultiClassResult", "solve_mva_multiclass"]


@dataclass(frozen=True)
class CustomerClass:
    """One closed customer class: population, think time, per-station demands."""

    name: str
    population: int
    think_time: float
    #: Station name → service demand per cycle, seconds.
    demands: Mapping[str, float]

    def __post_init__(self) -> None:
        if self.population < 1:
            raise ValueError(f"{self.name}: population must be >= 1")
        if self.think_time < 0:
            raise ValueError(f"{self.name}: think_time must be non-negative")
        for station, demand in self.demands.items():
            if demand < 0:
                raise ValueError(f"{self.name}@{station}: demand must be >= 0")


@dataclass(frozen=True)
class MultiClassResult:
    """Per-class throughputs and response times, plus station aggregates."""

    #: Class name → throughput (customers/second).
    throughput: Mapping[str, float]
    #: Class name → response time per cycle excluding think time.
    response_time: Mapping[str, float]
    #: Station name → total mean queue length (all classes).
    queue: Mapping[str, float]
    #: Station name → total utilization.
    utilization: Mapping[str, float]
    iterations: int

    @property
    def total_throughput(self) -> float:
        """Sum of class throughputs."""
        return sum(self.throughput.values())


def solve_mva_multiclass(
    stations: Sequence[Station],
    classes: Sequence[CustomerClass],
    tol: float = 1e-8,
    max_iter: int = 20_000,
) -> MultiClassResult:
    """Solve the multi-class closed network (Schweitzer fixed point)."""
    if not classes:
        raise ValueError("need at least one customer class")
    names = [s.name for s in stations]
    if len(set(names)) != len(names):
        raise ValueError("duplicate station names")
    station_index = {name: i for i, name in enumerate(names)}
    for cls in classes:
        unknown = set(cls.demands) - set(names)
        if unknown:
            raise ValueError(f"{cls.name}: demands for unknown stations {sorted(unknown)}")

    k = len(stations)
    c = len(classes)
    servers = np.array([s.servers for s in stations], dtype=float)
    # Demands matrix [class, station], Seidmann-split.
    demand = np.zeros((c, k))
    for ci, cls in enumerate(classes):
        for station, d in cls.demands.items():
            demand[ci, station_index[station]] = d
    q_demand = demand / servers  # queueing part
    s_delay = (demand * (servers - 1.0) / servers).sum(axis=1)  # per class
    populations = np.array([cls.population for cls in classes], dtype=float)
    think = np.array([cls.think_time for cls in classes], dtype=float) + s_delay

    # Per-class per-station queues.
    queue = np.tile((populations / max(k, 1) * 0.5)[:, None], (1, k)) * (
        q_demand > 0
    )
    x = np.zeros(c)
    it = 0
    for it in range(1, max_iter + 1):
        total_queue = queue.sum(axis=0)  # per station
        # Arriving class-c customer sees others fully, own class scaled.
        seen = total_queue[None, :] - queue / populations[:, None]
        residence = q_demand * (1.0 + seen)
        totals = think + residence.sum(axis=1)
        with np.errstate(divide="ignore"):
            x_new = np.where(totals > 0, populations / totals, np.inf)
        queue_new = x_new[:, None] * residence
        if np.all(np.abs(x_new - x) <= tol * np.maximum(x_new, 1e-12)) and np.all(
            np.abs(queue_new - queue) <= tol * np.maximum(queue_new, 1e-9)
        ):
            x, queue = x_new, queue_new
            break
        x, queue = x_new, queue_new

    total_queue = queue.sum(axis=0)
    seen = total_queue[None, :] - queue / populations[:, None]
    residence = q_demand * (1.0 + seen)
    utilization = np.minimum((x[:, None] * demand / servers).sum(axis=0), 1.0)
    return MultiClassResult(
        throughput={cls.name: float(xv) for cls, xv in zip(classes, x)},
        response_time={
            cls.name: float(residence[ci].sum() + s_delay[ci])
            for ci, cls in enumerate(classes)
        },
        queue={name: float(q) for name, q in zip(names, total_queue)},
        utilization={name: float(u) for name, u in zip(names, utilization)},
        iterations=it,
    )
