"""Fluid / mean-field solver for the closed EB population at large N.

Exact MVA is O(N·K) per solve and even Schweitzer's fixed point needs
hundreds of iterations near saturation — at N = 10^6 emulated browsers
neither is the right tool.  The fluid limit of the closed network is: a
single throughput ``X`` such that the population held in think, in
Seidmann delays, and in every station's open-queue backlog adds back up
to ``N``::

    N(X) = X·Z + Σ_i  m_i · ρ_i / (1 − ρ_i),     ρ_i = X · D_i

where ``D_i`` is the per-visit queueing demand of station ``i`` (after
the Seidmann split) and ``m_i`` its multiplicity (how many identical
replicas the station represents — see ``Station.multiplicity``).
``N(X)`` is strictly increasing on ``[0, 1/max D_i)`` and sweeps
``[0, ∞)``, so the population-conservation equation has exactly one
root; :func:`solve_mva_fluid` finds it by bisection.  The cost is
O(iterations × stations) with a *fixed* iteration count — independent
of ``N`` — and as ``N → ∞`` the solution lands exactly on the
asymptotic bottleneck regime ``X → 1/max D_i`` with all excess
population queued at the bottleneck.

The batch kernel (:func:`_solve_fluid_group`) bisects every row of a
group simultaneously with per-row freezing, performing the same
floating-point operations as the scalar path; the scalar entry point
delegates to a batch of one, so scalar and batched solves are
bit-identical by construction.

References: Chen & Yao, *Fundamentals of Queueing Networks* (fluid
limits); Reiser & Lavenberg (the exact recursion this approximates).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.model.mva import MvaNetwork, MvaResult, Station

__all__ = ["solve_mva_fluid", "FLUID_TOL", "FLUID_MAX_ITER"]

#: Relative width of the bisection bracket at which a row is frozen.
FLUID_TOL = 1e-13
#: Bisection steps; 2^-60 already clears FLUID_TOL, the rest is slack.
FLUID_MAX_ITER = 200

#: Bottleneck utilization is bracketed inside ``[0, 1 - _RHO_GUARD]`` so
#: the queue formula ``ρ/(1-ρ)`` stays finite: the implied queue bound of
#: ~1/_RHO_GUARD caps the populations the bracket can absorb at ~1e12
#: customers per station — far above any plausible N.
_RHO_GUARD = 1e-12


def _solve_fluid_group(networks: Sequence[MvaNetwork]) -> list[MvaResult]:
    """Vectorized fluid solve for networks of equal station count.

    Each row runs an independent bisection on its bottleneck utilization
    ``u = X · max D_i``; rows whose bracket has collapsed below
    :data:`FLUID_TOL` are frozen (their bracket stops moving), so a row's
    result does not depend on what else shares the batch.
    """
    B = len(networks)
    demand = np.array(
        [[s.demand for s in net.stations] for net in networks], dtype=float
    )
    servers = np.array(
        [[s.servers for s in net.stations] for net in networks], dtype=float
    )
    mult = np.array(
        [[s.multiplicity for s in net.stations] for net in networks],
        dtype=float,
    )
    # Seidmann split, exactly as the Schweitzer solver performs it.
    q_demand = demand / servers
    s_delay = demand * (servers - 1.0) / servers
    N = np.array([float(net.population) for net in networks])
    extra = np.array([net.extra_delay for net in networks])
    z = (
        np.array([net.think_time for net in networks]) + extra
    ) + (s_delay * mult).sum(axis=1)

    d_max = q_demand.max(axis=1)
    x = np.zeros(B)
    iters = np.zeros(B, dtype=int)

    # Rows with no queueing demand anywhere are pure delay systems.
    queued = d_max > 0.0
    with np.errstate(divide="ignore"):
        x[~queued] = np.where(
            z[~queued] > 0.0, N[~queued] / z[~queued], np.inf
        )

    if bool(queued.any()):
        idx = np.nonzero(queued)[0]
        w_qd = q_demand[idx]
        w_mult = mult[idx]
        w_N = N[idx]
        w_z = z[idx]
        w_xmax = (1.0 - _RHO_GUARD) / d_max[idx]
        lo = np.zeros(len(idx))
        hi = w_xmax.copy()
        active = np.ones(len(idx), dtype=bool)
        w_iters = np.full(len(idx), FLUID_MAX_ITER, dtype=int)
        rho = np.empty_like(w_qd)
        for it in range(1, FLUID_MAX_ITER + 1):
            mid = 0.5 * (lo + hi)
            # pop(mid) = mid·z + Σ_i m_i · ρ_i/(1-ρ_i)
            np.multiply(w_qd, mid[:, None], out=rho)
            np.divide(rho, 1.0 - rho, out=rho)
            np.multiply(rho, w_mult, out=rho)
            pop = mid * w_z + rho.sum(axis=1)
            over = pop >= w_N
            # Freeze converged rows: their bracket no longer moves.
            move = active
            hi = np.where(move & over, mid, hi)
            lo = np.where(move & ~over, mid, lo)
            still = (hi - lo) > FLUID_TOL * np.maximum(hi, 1e-12)
            frozen = active & ~still
            if bool(frozen.any()):
                w_iters[frozen] = it
            active &= still
            if not bool(active.any()):
                break
        x[idx] = 0.5 * (lo + hi)
        iters[idx] = w_iters

    # Per-station outputs from the fluid root, mirroring solve_mva's
    # conventions (queue includes the Seidmann-delay population X·s_delay;
    # response sums per-replica residence weighted by multiplicity).
    with np.errstate(divide="ignore", invalid="ignore"):
        rho_all = np.clip(x[:, None] * q_demand, 0.0, 1.0 - _RHO_GUARD)
        queue = rho_all / (1.0 - rho_all)
        residence = q_demand / (1.0 - rho_all) + s_delay
        residence = np.where(q_demand > 0.0, residence, s_delay)
        queue = np.where(q_demand > 0.0, queue, 0.0)
        utilization = np.minimum(x[:, None] * demand / servers, 1.0)
        resp = (residence * mult).sum(axis=1) + extra
        out_queue = queue + x[:, None] * s_delay

    results = []
    for i, net in enumerate(networks):
        results.append(
            MvaResult(
                throughput=float(x[i]),
                response_time=float(resp[i]),
                residence={
                    s.name: float(r)
                    for s, r in zip(net.stations, residence[i])
                },
                queue={
                    s.name: float(q)
                    for s, q in zip(net.stations, out_queue[i])
                },
                utilization={
                    s.name: float(u)
                    for s, u in zip(net.stations, utilization[i])
                },
                iterations=int(iters[i]),
                converged=True,
            )
        )
    return results


def solve_mva_fluid(
    stations: Sequence[Station],
    population: int,
    think_time: float,
    extra_delay: float = 0.0,
) -> MvaResult:
    """Solve the closed network in the fluid limit (O(stations), any N).

    Accepts exactly the inputs of :func:`repro.model.mva.solve_mva` and
    returns the same result shape; per-solve cost does not depend on
    ``population``.  Accuracy improves with N — at small populations the
    open-queue backlog formula overstates queueing, so callers wanting
    small-N fidelity should keep using the Schweitzer solver (the
    :class:`repro.model.analytic.AnalyticBackend` ``approximation="auto"``
    policy switches between them on a population threshold).
    """
    if population < 1:
        raise ValueError("population must be >= 1")
    if think_time < 0 or extra_delay < 0:
        raise ValueError("delays must be non-negative")
    if len(stations) == 0:
        total_delay = think_time + extra_delay
        x = population / total_delay if total_delay > 0 else float("inf")
        return MvaResult(x, extra_delay, {}, {}, {}, 0)
    net = MvaNetwork(
        tuple(stations), population, think_time, extra_delay, method="fluid"
    )
    return _solve_fluid_group([net])[0]
