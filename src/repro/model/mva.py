"""Single-class approximate Mean Value Analysis (Schweitzer).

Solves a closed queueing network with ``N`` customers, a think-time delay
``Z``, and a set of queueing stations.  Multi-server stations use Seidmann's
transformation: an *m*-server station with per-visit demand ``D`` behaves
(approximately) like a single-server station of demand ``D/m`` in series
with a pure delay of ``D·(m-1)/m``.  Schweitzer's fixed point replaces the
exact MVA population recursion, making the solve O(iterations × stations)
independent of ``N`` — this is what lets the benchmark harness run hundreds
of 23-parameter tuning iterations in milliseconds.

:func:`solve_mva_batch` solves B independent networks in one vectorized
fixed point (stations stacked on a batch axis, per-row convergence
masking).  Each row performs exactly the floating-point operations of the
scalar solver, so batched and scalar results are bit-identical — callers
that evaluate many configurations against one scenario can batch freely
without perturbing results.

References: Reiser & Lavenberg (exact MVA); Schweitzer 1979; Seidmann,
Schweitzer & Shalev-Oren 1987.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "Station",
    "MvaResult",
    "MvaNetwork",
    "solve_mva",
    "solve_mva_batch",
    "solve_mva_exact",
]


@dataclass(frozen=True)
class Station:
    """One service centre: a label, per-customer demand, and server count."""

    name: str
    demand: float  # total service demand per customer visit cycle, seconds
    servers: int = 1

    def __post_init__(self) -> None:
        if self.demand < 0:
            raise ValueError(f"{self.name}: demand must be non-negative")
        if self.servers < 1:
            raise ValueError(f"{self.name}: servers must be >= 1")


@dataclass(frozen=True)
class MvaResult:
    """Solution of the closed network."""

    #: System throughput, customers (interactions) per second.
    throughput: float
    #: Total response time per cycle excluding think time, seconds.
    response_time: float
    #: Per-station residence time (queueing + service + Seidmann delay).
    residence: dict[str, float]
    #: Per-station mean queue length (customers in station).
    queue: dict[str, float]
    #: Per-station utilization (fraction of total service capacity busy).
    utilization: dict[str, float]
    #: Fixed-point iterations used.
    iterations: int
    #: Whether the fixed point met the tolerance within ``max_iter``.
    converged: bool = True

    def bottleneck(self) -> str:
        """Name of the most utilized station."""
        return max(self.utilization, key=self.utilization.get)  # type: ignore[arg-type]


def solve_mva(
    stations: Sequence[Station],
    population: int,
    think_time: float,
    extra_delay: float = 0.0,
    tol: float = 1e-7,
    max_iter: int = 10_000,
) -> MvaResult:
    """Solve the closed network via the Schweitzer fixed point.

    Parameters
    ----------
    stations:
        Queueing stations (multi-server handled via Seidmann).
    population:
        Number of circulating customers (emulated browsers), >= 1.
    think_time:
        Pure delay per cycle (EB think time), seconds.
    extra_delay:
        Additional pure delay per cycle (e.g. pool waiting times computed by
        an outer fixed point, or network propagation).
    """
    if population < 1:
        raise ValueError("population must be >= 1")
    if think_time < 0 or extra_delay < 0:
        raise ValueError("delays must be non-negative")
    n = len(stations)
    if n == 0:
        total_delay = think_time + extra_delay
        x = population / total_delay if total_delay > 0 else float("inf")
        return MvaResult(x, extra_delay, {}, {}, {}, 0)

    demand = np.array([s.demand for s in stations], dtype=float)
    servers = np.array([s.servers for s in stations], dtype=float)
    # Seidmann: queueing part D/m, delay part D*(m-1)/m.
    q_demand = demand / servers
    s_delay = demand * (servers - 1.0) / servers
    z = think_time + extra_delay + float(s_delay.sum())

    N = float(population)
    queue = np.full(n, N / max(n, 1) * 0.5)
    x = 0.0
    it = 0
    converged = False
    for it in range(1, max_iter + 1):
        # Schweitzer: arriving customer sees (N-1)/N of the queue.
        residence = q_demand * (1.0 + queue * (N - 1.0) / N)
        total = z + float(residence.sum())
        x_new = N / total if total > 0 else float("inf")
        queue_new = x_new * residence
        if abs(x_new - x) <= tol * max(x_new, 1e-12) and np.all(
            np.abs(queue_new - queue) <= tol * np.maximum(queue_new, 1e-9)
        ):
            x, queue = x_new, queue_new
            converged = True
            break
        x, queue = x_new, queue_new
    if not converged:
        warnings.warn(
            f"MVA fixed point did not converge within {max_iter} iterations "
            f"(N={population}, {n} stations); returning the last iterate",
            RuntimeWarning,
            stacklevel=2,
        )

    residence = q_demand * (1.0 + queue * (N - 1.0) / N) + s_delay
    utilization = np.minimum(x * demand / servers, 1.0)
    return MvaResult(
        throughput=float(x),
        response_time=float(residence.sum()) + extra_delay,
        residence={s.name: float(r) for s, r in zip(stations, residence)},
        queue={
            s.name: float(q + x * d)
            for s, q, d in zip(stations, queue, s_delay)
        },
        utilization={s.name: float(u) for s, u in zip(stations, utilization)},
        iterations=it,
        converged=converged,
    )


@dataclass(frozen=True)
class MvaNetwork:
    """One closed network in a :func:`solve_mva_batch` submission."""

    stations: tuple[Station, ...]
    population: int
    think_time: float
    extra_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.population < 1:
            raise ValueError("population must be >= 1")
        if self.think_time < 0 or self.extra_delay < 0:
            raise ValueError("delays must be non-negative")


def _solve_batch_group(
    networks: Sequence[MvaNetwork],
    tol: float,
    max_iter: int,
) -> list[MvaResult]:
    """Vectorized Schweitzer fixed point for networks of equal station count.

    Every row executes exactly the scalar solver's floating-point
    operations (same operation order, same dtype), with converged rows
    frozen by masking, so each row's result is bit-identical to
    :func:`solve_mva` on that network alone.
    """
    B = len(networks)
    n = len(networks[0].stations)
    demand = np.array(
        [[s.demand for s in net.stations] for net in networks], dtype=float
    )
    servers = np.array(
        [[s.servers for s in net.stations] for net in networks], dtype=float
    )
    q_demand = demand / servers
    s_delay = demand * (servers - 1.0) / servers
    N = np.array([float(net.population) for net in networks])
    extra = np.array([net.extra_delay for net in networks])
    z = (
        np.array([net.think_time for net in networks]) + extra
    ) + s_delay.sum(axis=1)

    # Final per-row state, filled in as rows converge.
    queue = np.empty((B, n))
    queue[:] = (N / max(n, 1) * 0.5)[:, None]
    x = np.zeros(B)
    active = np.ones(B, dtype=bool)
    iters = np.zeros(B, dtype=int)

    # Working copies holding only the still-active rows; converged rows are
    # compacted away so laggards don't drag the whole batch along.  Row
    # slicing keeps every element's operation sequence identical to the
    # scalar solver, so compaction cannot perturb results.
    idx = np.arange(B)
    w_qd, w_N, w_z = q_demand, N, z
    w_queue, w_x = queue.copy(), x.copy()
    with np.errstate(divide="ignore", invalid="ignore"):
        for it in range(1, max_iter + 1):
            Ncol = w_N[:, None]
            residence = w_qd * (1.0 + w_queue * (Ncol - 1.0) / Ncol)
            total = w_z + residence.sum(axis=1)
            x_new = np.where(total > 0, w_N / total, np.inf)
            queue_new = x_new[:, None] * residence
            conv = (
                np.abs(x_new - w_x) <= tol * np.maximum(x_new, 1e-12)
            ) & (
                np.abs(queue_new - w_queue)
                <= tol * np.maximum(queue_new, 1e-9)
            ).all(axis=1)
            w_x, w_queue = x_new, queue_new
            if conv.any():
                done = idx[conv]
                x[done] = w_x[conv]
                queue[done] = w_queue[conv]
                iters[done] = it
                active[done] = False
                keep = ~conv
                if not keep.any():
                    break
                idx = idx[keep]
                w_qd, w_N, w_z = w_qd[keep], w_N[keep], w_z[keep]
                w_x, w_queue = w_x[keep], w_queue[keep]
    if active.any():
        x[idx] = w_x
        queue[idx] = w_queue
        iters[idx] = max_iter
        for i in idx:
            warnings.warn(
                f"MVA fixed point did not converge within {max_iter} "
                f"iterations (N={networks[i].population}, {n} stations); "
                f"returning the last iterate",
                RuntimeWarning,
                stacklevel=3,
            )

    residence = (
        q_demand * (1.0 + queue * (N[:, None] - 1.0) / N[:, None]) + s_delay
    )
    utilization = np.minimum(x[:, None] * demand / servers, 1.0)
    resp = residence.sum(axis=1) + extra
    out_queue = queue + x[:, None] * s_delay
    results = []
    for i, net in enumerate(networks):
        results.append(
            MvaResult(
                throughput=float(x[i]),
                response_time=float(resp[i]),
                residence={
                    s.name: float(r)
                    for s, r in zip(net.stations, residence[i])
                },
                queue={
                    s.name: float(q)
                    for s, q in zip(net.stations, out_queue[i])
                },
                utilization={
                    s.name: float(u)
                    for s, u in zip(net.stations, utilization[i])
                },
                iterations=int(iters[i]),
                converged=not bool(active[i]),
            )
        )
    return results


def solve_mva_batch(
    networks: Sequence[MvaNetwork],
    tol: float = 1e-7,
    max_iter: int = 10_000,
) -> list[MvaResult]:
    """Solve B independent closed networks in one vectorized fixed point.

    Networks are grouped by station count and each group is solved with
    the stations stacked on a batch axis; a per-row convergence mask
    freezes rows that have met the tolerance while the rest keep
    iterating.  Results are returned in submission order and are
    bit-identical to calling :func:`solve_mva` on each network alone
    (grouping avoids padding, which would perturb the pairwise summation
    order within a row).
    """
    results: list[MvaResult | None] = [None] * len(networks)
    groups: dict[int, list[int]] = {}
    for i, net in enumerate(networks):
        n = len(net.stations)
        if n == 0:
            total_delay = net.think_time + net.extra_delay
            x = (
                net.population / total_delay
                if total_delay > 0
                else float("inf")
            )
            results[i] = MvaResult(x, net.extra_delay, {}, {}, {}, 0)
        else:
            groups.setdefault(n, []).append(i)
    for indices in groups.values():
        solved = _solve_batch_group(
            [networks[i] for i in indices], tol, max_iter
        )
        for i, result in zip(indices, solved):
            results[i] = result
    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]


def solve_mva_exact(
    stations: Sequence[Station],
    population: int,
    think_time: float,
    extra_delay: float = 0.0,
) -> MvaResult:
    """Exact MVA (Reiser–Lavenberg population recursion).

    Only valid for single-server stations (``servers == 1``); it exists as
    the ground-truth reference the Schweitzer approximation is tested
    against, and for small models where exactness is cheap (O(N·K)).
    """
    if population < 1:
        raise ValueError("population must be >= 1")
    if think_time < 0 or extra_delay < 0:
        raise ValueError("delays must be non-negative")
    for s in stations:
        if s.servers != 1:
            raise ValueError(
                f"exact MVA supports single-server stations only; "
                f"{s.name!r} has {s.servers}"
            )
    demand = np.array([s.demand for s in stations], dtype=float)
    z = think_time + extra_delay
    queue = np.zeros(len(stations))
    x = 0.0
    residence = demand.copy()
    for n in range(1, population + 1):
        residence = demand * (1.0 + queue)
        total = z + float(residence.sum())
        x = n / total if total > 0 else float("inf")
        queue = x * residence
    utilization = np.minimum(x * demand, 1.0)
    return MvaResult(
        throughput=float(x),
        response_time=float(residence.sum()) + extra_delay,
        residence={s.name: float(r) for s, r in zip(stations, residence)},
        queue={s.name: float(q) for s, q in zip(stations, queue)},
        utilization={s.name: float(u) for s, u in zip(stations, utilization)},
        iterations=population,
    )
