"""Single-class approximate Mean Value Analysis (Schweitzer).

Solves a closed queueing network with ``N`` customers, a think-time delay
``Z``, and a set of queueing stations.  Multi-server stations use Seidmann's
transformation: an *m*-server station with per-visit demand ``D`` behaves
(approximately) like a single-server station of demand ``D/m`` in series
with a pure delay of ``D·(m-1)/m``.  Schweitzer's fixed point replaces the
exact MVA population recursion, making the solve O(iterations × stations)
independent of ``N`` — this is what lets the benchmark harness run hundreds
of 23-parameter tuning iterations in milliseconds.

References: Reiser & Lavenberg (exact MVA); Schweitzer 1979; Seidmann,
Schweitzer & Shalev-Oren 1987.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["Station", "MvaResult", "solve_mva", "solve_mva_exact"]


@dataclass(frozen=True)
class Station:
    """One service centre: a label, per-customer demand, and server count."""

    name: str
    demand: float  # total service demand per customer visit cycle, seconds
    servers: int = 1

    def __post_init__(self) -> None:
        if self.demand < 0:
            raise ValueError(f"{self.name}: demand must be non-negative")
        if self.servers < 1:
            raise ValueError(f"{self.name}: servers must be >= 1")


@dataclass(frozen=True)
class MvaResult:
    """Solution of the closed network."""

    #: System throughput, customers (interactions) per second.
    throughput: float
    #: Total response time per cycle excluding think time, seconds.
    response_time: float
    #: Per-station residence time (queueing + service + Seidmann delay).
    residence: dict[str, float]
    #: Per-station mean queue length (customers in station).
    queue: dict[str, float]
    #: Per-station utilization (fraction of total service capacity busy).
    utilization: dict[str, float]
    #: Fixed-point iterations used.
    iterations: int

    def bottleneck(self) -> str:
        """Name of the most utilized station."""
        return max(self.utilization, key=self.utilization.get)  # type: ignore[arg-type]


def solve_mva(
    stations: Sequence[Station],
    population: int,
    think_time: float,
    extra_delay: float = 0.0,
    tol: float = 1e-7,
    max_iter: int = 10_000,
) -> MvaResult:
    """Solve the closed network via the Schweitzer fixed point.

    Parameters
    ----------
    stations:
        Queueing stations (multi-server handled via Seidmann).
    population:
        Number of circulating customers (emulated browsers), >= 1.
    think_time:
        Pure delay per cycle (EB think time), seconds.
    extra_delay:
        Additional pure delay per cycle (e.g. pool waiting times computed by
        an outer fixed point, or network propagation).
    """
    if population < 1:
        raise ValueError("population must be >= 1")
    if think_time < 0 or extra_delay < 0:
        raise ValueError("delays must be non-negative")
    n = len(stations)
    if n == 0:
        total_delay = think_time + extra_delay
        x = population / total_delay if total_delay > 0 else float("inf")
        return MvaResult(x, extra_delay, {}, {}, {}, 0)

    demand = np.array([s.demand for s in stations], dtype=float)
    servers = np.array([s.servers for s in stations], dtype=float)
    # Seidmann: queueing part D/m, delay part D*(m-1)/m.
    q_demand = demand / servers
    s_delay = demand * (servers - 1.0) / servers
    z = think_time + extra_delay + float(s_delay.sum())

    N = float(population)
    queue = np.full(n, N / max(n, 1) * 0.5)
    x = 0.0
    it = 0
    for it in range(1, max_iter + 1):
        # Schweitzer: arriving customer sees (N-1)/N of the queue.
        residence = q_demand * (1.0 + queue * (N - 1.0) / N)
        total = z + float(residence.sum())
        x_new = N / total if total > 0 else float("inf")
        queue_new = x_new * residence
        if abs(x_new - x) <= tol * max(x_new, 1e-12) and np.all(
            np.abs(queue_new - queue) <= tol * np.maximum(queue_new, 1e-9)
        ):
            x, queue = x_new, queue_new
            break
        x, queue = x_new, queue_new

    residence = q_demand * (1.0 + queue * (N - 1.0) / N) + s_delay
    utilization = np.minimum(x * demand / servers, 1.0)
    return MvaResult(
        throughput=float(x),
        response_time=float(residence.sum()) + extra_delay,
        residence={s.name: float(r) for s, r in zip(stations, residence)},
        queue={
            s.name: float(q + x * d)
            for s, q, d in zip(stations, queue, s_delay)
        },
        utilization={s.name: float(u) for s, u in zip(stations, utilization)},
        iterations=it,
    )


def solve_mva_exact(
    stations: Sequence[Station],
    population: int,
    think_time: float,
    extra_delay: float = 0.0,
) -> MvaResult:
    """Exact MVA (Reiser–Lavenberg population recursion).

    Only valid for single-server stations (``servers == 1``); it exists as
    the ground-truth reference the Schweitzer approximation is tested
    against, and for small models where exactness is cheap (O(N·K)).
    """
    if population < 1:
        raise ValueError("population must be >= 1")
    if think_time < 0 or extra_delay < 0:
        raise ValueError("delays must be non-negative")
    for s in stations:
        if s.servers != 1:
            raise ValueError(
                f"exact MVA supports single-server stations only; "
                f"{s.name!r} has {s.servers}"
            )
    demand = np.array([s.demand for s in stations], dtype=float)
    z = think_time + extra_delay
    queue = np.zeros(len(stations))
    x = 0.0
    residence = demand.copy()
    for n in range(1, population + 1):
        residence = demand * (1.0 + queue)
        total = z + float(residence.sum())
        x = n / total if total > 0 else float("inf")
        queue = x * residence
    utilization = np.minimum(x * demand, 1.0)
    return MvaResult(
        throughput=float(x),
        response_time=float(residence.sum()) + extra_delay,
        residence={s.name: float(r) for s, r in zip(stations, residence)},
        queue={s.name: float(q) for s, q in zip(stations, queue)},
        utilization={s.name: float(u) for s, u in zip(stations, utilization)},
        iterations=population,
    )
