"""Single-class approximate Mean Value Analysis (Schweitzer).

Solves a closed queueing network with ``N`` customers, a think-time delay
``Z``, and a set of queueing stations.  Multi-server stations use Seidmann's
transformation: an *m*-server station with per-visit demand ``D`` behaves
(approximately) like a single-server station of demand ``D/m`` in series
with a pure delay of ``D·(m-1)/m``.  Schweitzer's fixed point replaces the
exact MVA population recursion, making the solve O(iterations × stations)
independent of ``N`` — this is what lets the benchmark harness run hundreds
of 23-parameter tuning iterations in milliseconds.

:func:`solve_mva_batch` solves B independent networks in one vectorized
fixed point (stations stacked on a batch axis, per-row convergence
masking).  Each row performs exactly the floating-point operations of the
scalar solver, so batched and scalar results are bit-identical — callers
that evaluate many configurations against one scenario can batch freely
without perturbing results.

References: Reiser & Lavenberg (exact MVA); Schweitzer 1979; Seidmann,
Schweitzer & Shalev-Oren 1987.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "Station",
    "MvaResult",
    "MvaNetwork",
    "MVA_METHODS",
    "solve_mva",
    "solve_mva_batch",
    "solve_mva_exact",
]


@dataclass(frozen=True)
class Station:
    """One service centre: a label, per-customer demand, and server count.

    ``multiplicity`` marks an *aggregated* station: one row standing in
    for that many identical replicas (hierarchical MVA over a homogeneous
    tier).  Per-station outputs (residence, queue, utilization) describe a
    single replica; network-level sums weight the station by its
    multiplicity.  The default of 1 is an ordinary station and leaves
    every solver bit-identical to the pre-multiplicity code.
    """

    name: str
    demand: float  # total service demand per customer visit cycle, seconds
    servers: int = 1
    multiplicity: int = 1

    def __post_init__(self) -> None:
        if self.demand < 0:
            raise ValueError(f"{self.name}: demand must be non-negative")
        if self.servers < 1:
            raise ValueError(f"{self.name}: servers must be >= 1")
        if self.multiplicity < 1:
            raise ValueError(f"{self.name}: multiplicity must be >= 1")


@dataclass(frozen=True)
class MvaResult:
    """Solution of the closed network."""

    #: System throughput, customers (interactions) per second.
    throughput: float
    #: Total response time per cycle excluding think time, seconds.
    response_time: float
    #: Per-station residence time (queueing + service + Seidmann delay).
    residence: dict[str, float]
    #: Per-station mean queue length (customers in station).
    queue: dict[str, float]
    #: Per-station utilization (fraction of total service capacity busy).
    utilization: dict[str, float]
    #: Fixed-point iterations used.
    iterations: int
    #: Whether the fixed point met the tolerance within ``max_iter``.
    converged: bool = True

    def bottleneck(self) -> str:
        """Name of the most utilized station."""
        return max(self.utilization, key=self.utilization.get)  # type: ignore[arg-type]


def solve_mva(
    stations: Sequence[Station],
    population: int,
    think_time: float,
    extra_delay: float = 0.0,
    tol: float = 1e-7,
    max_iter: int = 10_000,
) -> MvaResult:
    """Solve the closed network via the Schweitzer fixed point.

    Parameters
    ----------
    stations:
        Queueing stations (multi-server handled via Seidmann).
    population:
        Number of circulating customers (emulated browsers), >= 1.
    think_time:
        Pure delay per cycle (EB think time), seconds.
    extra_delay:
        Additional pure delay per cycle (e.g. pool waiting times computed by
        an outer fixed point, or network propagation).
    """
    if population < 1:
        raise ValueError("population must be >= 1")
    if think_time < 0 or extra_delay < 0:
        raise ValueError("delays must be non-negative")
    n = len(stations)
    if n == 0:
        total_delay = think_time + extra_delay
        x = population / total_delay if total_delay > 0 else float("inf")
        return MvaResult(x, extra_delay, {}, {}, {}, 0)

    demand = np.array([s.demand for s in stations], dtype=float)
    servers = np.array([s.servers for s in stations], dtype=float)
    mult = np.array([s.multiplicity for s in stations], dtype=float)
    # Aggregated stations weight network-level sums by their replica
    # count; the all-ones case keeps the exact pre-multiplicity
    # expressions so existing results stay bit-identical.  Exactness is
    # the point: multiplicities are integers stored exactly in floats.
    weighted = bool((mult != 1.0).any())  # repro: noqa[RPL004]
    # Seidmann: queueing part D/m, delay part D*(m-1)/m.
    q_demand = demand / servers
    s_delay = demand * (servers - 1.0) / servers
    if weighted:
        z = think_time + extra_delay + float((s_delay * mult).sum())
        n_eff = float(mult.sum())
    else:
        z = think_time + extra_delay + float(s_delay.sum())
        n_eff = float(max(n, 1))

    N = float(population)
    queue = np.full(n, N / n_eff * 0.5)
    x = 0.0
    it = 0
    converged = False
    for it in range(1, max_iter + 1):
        # Schweitzer: arriving customer sees (N-1)/N of the queue.
        residence = q_demand * (1.0 + queue * (N - 1.0) / N)
        if weighted:
            total = z + float((residence * mult).sum())
        else:
            total = z + float(residence.sum())
        x_new = N / total if total > 0 else float("inf")
        queue_new = x_new * residence
        if abs(x_new - x) <= tol * max(x_new, 1e-12) and np.all(
            np.abs(queue_new - queue) <= tol * np.maximum(queue_new, 1e-9)
        ):
            x, queue = x_new, queue_new
            converged = True
            break
        x, queue = x_new, queue_new
    if not converged:
        warnings.warn(
            f"MVA fixed point did not converge within {max_iter} iterations "
            f"(N={population}, {n} stations); returning the last iterate",
            RuntimeWarning,
            stacklevel=2,
        )

    residence = q_demand * (1.0 + queue * (N - 1.0) / N) + s_delay
    utilization = np.minimum(x * demand / servers, 1.0)
    if weighted:
        response = float((residence * mult).sum()) + extra_delay
    else:
        response = float(residence.sum()) + extra_delay
    return MvaResult(
        throughput=float(x),
        response_time=response,
        residence={s.name: float(r) for s, r in zip(stations, residence)},
        queue={
            s.name: float(q + x * d)
            for s, q, d in zip(stations, queue, s_delay)
        },
        utilization={s.name: float(u) for s, u in zip(stations, utilization)},
        iterations=it,
        converged=converged,
    )


#: Solution methods a :class:`MvaNetwork` row may request.
MVA_METHODS = ("schweitzer", "fluid")


@dataclass(frozen=True)
class MvaNetwork:
    """One closed network in a :func:`solve_mva_batch` submission.

    ``method`` selects the solver for this row: ``"schweitzer"`` (the
    default fixed point) or ``"fluid"`` (the O(stations),
    population-independent mean-field solve of
    :mod:`repro.model.fluid`).  A batch may mix methods freely — rows
    are grouped per ``(method, station count)`` and each group runs its
    own vectorized kernel.
    """

    stations: tuple[Station, ...]
    population: int
    think_time: float
    extra_delay: float = 0.0
    method: str = "schweitzer"

    def __post_init__(self) -> None:
        if self.population < 1:
            raise ValueError("population must be >= 1")
        if self.think_time < 0 or self.extra_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.method not in MVA_METHODS:
            raise ValueError(
                f"unknown MVA method {self.method!r}; expected one of "
                f"{MVA_METHODS}"
            )


#: Active-row count at or below which the vectorized loop hands the rest
#: of the solve to the per-row python finisher.  A fixed-point iteration
#: on one or two rows of a dozen stations is dominated by per-call array
#: overhead, not arithmetic — the straggler tail of a large batch (the
#: last rows to converge) otherwise costs more per row than the bulk.
_PYTHON_TAIL_MAX = 2


def _finish_rows_python(
    idx: np.ndarray,
    w_qd: np.ndarray,
    w_N: np.ndarray,
    w_z: np.ndarray,
    w_x: np.ndarray,
    w_queue: np.ndarray,
    w_mult: np.ndarray | None,
    guard_div: bool,
    start_it: int,
    tol: float,
    max_iter: int,
    x: np.ndarray,
    queue: np.ndarray,
    iters: np.ndarray,
    active: np.ndarray,
) -> None:
    """Continue the still-active rows one at a time, scalar python.

    Runs the same IEEE-double operations the vectorized loop would: the
    per-row arithmetic is element-wise (python floats are the same
    binary64), and the residence sum goes through the same numpy
    reduction.  Only the engine changes, never the math — results are
    bit-identical to letting the array loop finish.
    """
    for pos in range(len(idx)):
        row = int(idx[pos])
        qd = w_qd[pos].tolist()
        n = len(qd)
        N = float(w_N[pos])
        z = float(w_z[pos])
        nm1 = N - 1.0
        x_r = float(w_x[pos])
        q = w_queue[pos].tolist()
        # The residence sum must go through the numpy reduction (pairwise
        # summation — a plain python sum() associates differently), so the
        # python-computed elements are bulk-copied into one array per
        # iteration.  Element values are exact either way: python floats
        # are the same binary64 the array holds.
        res = np.empty(n)
        mult_row = None if w_mult is None else w_mult[pos]
        wres = None if mult_row is None else np.empty(n)
        for it in range(start_it, max_iter + 1):
            res_l = [a * (1.0 + (b * nm1) / N) for a, b in zip(qd, q)]
            res[:] = res_l
            if mult_row is None:
                total = z + float(res.sum())
            else:
                np.multiply(res, mult_row, out=wres)
                total = z + float(wres.sum())
            if guard_div and total <= 0:
                x_new = float("inf")
            else:
                x_new = N / total
            q_new = [x_new * r for r in res_l]
            converged = abs(x_new - x_r) <= tol * max(x_new, 1e-12)
            if converged:
                for a, b in zip(q_new, q):
                    if not abs(a - b) <= tol * max(a, 1e-9):
                        converged = False
                        break
            x_r, q = x_new, q_new
            if converged:
                x[row] = x_r
                queue[row] = q
                iters[row] = it
                active[row] = False
                break
        if active[row]:  # exhausted max_iter
            x[row] = x_r
            queue[row] = q
            iters[row] = max_iter


def _solve_batch_group(
    networks: Sequence[MvaNetwork],
    tol: float,
    max_iter: int,
) -> list[MvaResult]:
    """Vectorized Schweitzer fixed point for networks of equal station count.

    Every row executes exactly the scalar solver's floating-point
    operations (same operation order, same dtype), with converged rows
    frozen by masking, so each row's result is bit-identical to
    :func:`solve_mva` on that network alone.  The iteration body writes
    into preallocated ping-pong buffers (``out=`` ufunc calls): same
    operations, no per-iteration allocations.
    """
    B = len(networks)
    n = len(networks[0].stations)
    demand = np.array(
        [[s.demand for s in net.stations] for net in networks], dtype=float
    )
    servers = np.array(
        [[s.servers for s in net.stations] for net in networks], dtype=float
    )
    mult = np.array(
        [[s.multiplicity for s in net.stations] for net in networks],
        dtype=float,
    )
    # Integer multiplicities are stored exactly; equality IS the test.
    weighted = bool((mult != 1.0).any())  # repro: noqa[RPL004]
    q_demand = demand / servers
    s_delay = demand * (servers - 1.0) / servers
    N = np.array([float(net.population) for net in networks])
    extra = np.array([net.extra_delay for net in networks])
    if weighted:
        z = (
            np.array([net.think_time for net in networks]) + extra
        ) + (s_delay * mult).sum(axis=1)
        n_eff = mult.sum(axis=1)
    else:
        z = (
            np.array([net.think_time for net in networks]) + extra
        ) + s_delay.sum(axis=1)
        n_eff = float(max(n, 1))

    # Final per-row state, filled in as rows converge.
    queue = np.empty((B, n))
    queue[:] = (N / n_eff * 0.5)[:, None]
    x = np.zeros(B)
    active = np.ones(B, dtype=bool)
    iters = np.zeros(B, dtype=int)

    # Working copies holding only the still-active rows; converged rows are
    # compacted away so laggards don't drag the whole batch along.  Row
    # slicing keeps every element's operation sequence identical to the
    # scalar solver, so compaction cannot perturb results.
    idx = np.arange(B)
    w_qd, w_N, w_z = q_demand, N, z
    w_mult = mult if weighted else None
    w_queue, w_x = queue.copy(), x.copy()
    # Loop invariants, rebuilt only when compaction changes the row set.
    # ``(Ncol - 1.0)`` hoisted out of the loop is the same value it was
    # inside it, so per-element arithmetic (and bit-identity with the
    # scalar solver) is untouched.
    w_Ncol = w_N[:, None]
    w_Nm1 = w_Ncol - 1.0
    # ``total`` >= z element-wise (residence is non-negative), so when every
    # row has positive delay the guarded division can never hit 0 and the
    # compare/select pair is dead weight; np.where(total > 0, a, inf) == a.
    guard_div = not bool((w_z > 0).all())
    # Ping-pong/scratch buffers for the iteration body, rebuilt on
    # compaction.  ``scratch`` receives the new residence/queue, ``w_x2``
    # the new throughput; the roles swap each iteration.  Batches small
    # enough to go straight to the python finisher never need them.
    if B > _PYTHON_TAIL_MAX:
        scratch = np.empty_like(w_queue)
        qtest = np.empty_like(w_queue)
        qthr = np.empty_like(w_queue)
        w_x2 = np.empty_like(w_x)
        total = np.empty_like(w_x)
        xdiff = np.empty_like(w_x)
        xthr = np.empty_like(w_x)
        wscratch = np.empty_like(w_queue) if weighted else None
    finished_python = False
    with np.errstate(divide="ignore", invalid="ignore"):
        for it in range(1, max_iter + 1):
            if len(idx) <= _PYTHON_TAIL_MAX:
                # The tail: so few rows that array-call overhead dominates.
                _finish_rows_python(
                    idx, w_qd, w_N, w_z, w_x, w_queue, w_mult,
                    guard_div, it, tol, max_iter, x, queue, iters, active,
                )
                finished_python = True
                break
            # residence = w_qd * (1.0 + (w_queue * w_Nm1) / w_Ncol)
            np.multiply(w_queue, w_Nm1, out=scratch)
            np.divide(scratch, w_Ncol, out=scratch)
            np.add(scratch, 1.0, out=scratch)
            np.multiply(scratch, w_qd, out=scratch)
            # total = w_z + (residence · multiplicity).sum(axis=1)
            if weighted:
                np.multiply(scratch, w_mult, out=wscratch)
                wscratch.sum(axis=1, out=total)
            else:
                scratch.sum(axis=1, out=total)
            np.add(total, w_z, out=total)
            if guard_div:
                x_new = np.where(total > 0, w_N / total, np.inf)
                w_x2[:] = x_new
            else:
                np.divide(w_N, total, out=w_x2)
            # queue_new = x_new[:, None] * residence (in place over scratch)
            np.multiply(scratch, w_x2[:, None], out=scratch)
            # Throughput test first; the (more expensive) queue test only
            # runs for iterations where some row is actually a candidate.
            np.subtract(w_x2, w_x, out=xdiff)
            np.abs(xdiff, out=xdiff)
            np.maximum(w_x2, 1e-12, out=xthr)
            np.multiply(xthr, tol, out=xthr)
            conv = xdiff <= xthr
            any_conv = bool(conv.any())
            if any_conv:
                np.subtract(scratch, w_queue, out=qtest)
                np.abs(qtest, out=qtest)
                np.maximum(scratch, 1e-9, out=qthr)
                np.multiply(qthr, tol, out=qthr)
                conv &= (qtest <= qthr).all(axis=1)
                any_conv = bool(conv.any())
            w_x, w_x2 = w_x2, w_x
            w_queue, scratch = scratch, w_queue
            if any_conv:
                done = idx[conv]
                x[done] = w_x[conv]
                queue[done] = w_queue[conv]
                iters[done] = it
                active[done] = False
                keep = ~conv
                if not keep.any():
                    break
                idx = idx[keep]
                w_qd, w_N, w_z = w_qd[keep], w_N[keep], w_z[keep]
                w_x, w_queue = w_x[keep], w_queue[keep]
                if weighted:
                    w_mult = w_mult[keep]
                    wscratch = np.empty_like(w_queue)
                w_Ncol = w_N[:, None]
                w_Nm1 = w_Ncol - 1.0
                scratch = np.empty_like(w_queue)
                qtest = np.empty_like(w_queue)
                qthr = np.empty_like(w_queue)
                w_x2 = np.empty_like(w_x)
                total = np.empty_like(w_x)
                xdiff = np.empty_like(w_x)
                xthr = np.empty_like(w_x)
    if active.any():
        if not finished_python:
            x[idx] = w_x
            queue[idx] = w_queue
            iters[idx] = max_iter
        for i in np.nonzero(active)[0]:
            warnings.warn(
                f"MVA fixed point did not converge within {max_iter} "
                f"iterations (N={networks[i].population}, {n} stations); "
                f"returning the last iterate",
                RuntimeWarning,
                stacklevel=3,
            )

    residence = (
        q_demand * (1.0 + queue * (N[:, None] - 1.0) / N[:, None]) + s_delay
    )
    utilization = np.minimum(x[:, None] * demand / servers, 1.0)
    if weighted:
        resp = (residence * mult).sum(axis=1) + extra
    else:
        resp = residence.sum(axis=1) + extra
    out_queue = queue + x[:, None] * s_delay
    results = []
    for i, net in enumerate(networks):
        results.append(
            MvaResult(
                throughput=float(x[i]),
                response_time=float(resp[i]),
                residence={
                    s.name: float(r)
                    for s, r in zip(net.stations, residence[i])
                },
                queue={
                    s.name: float(q)
                    for s, q in zip(net.stations, out_queue[i])
                },
                utilization={
                    s.name: float(u)
                    for s, u in zip(net.stations, utilization[i])
                },
                iterations=int(iters[i]),
                converged=not bool(active[i]),
            )
        )
    return results


def solve_mva_batch(
    networks: Sequence[MvaNetwork],
    tol: float = 1e-7,
    max_iter: int = 10_000,
) -> list[MvaResult]:
    """Solve B independent closed networks in one vectorized fixed point.

    Networks are grouped by ``(method, station count)`` and each group is
    solved with the stations stacked on a batch axis; a per-row
    convergence mask freezes rows that have met the tolerance while the
    rest keep iterating.  Rows requesting ``method="fluid"`` run the
    population-independent kernel of :mod:`repro.model.fluid` — a batch
    may mix exact and fluid rows freely.  Results are returned in
    submission order and are bit-identical to calling :func:`solve_mva`
    (or :func:`repro.model.fluid.solve_mva_fluid`) on each network alone
    (grouping avoids padding, which would perturb the pairwise summation
    order within a row).
    """
    # Deferred to dodge the module cycle (fluid builds MvaNetwork rows).
    from repro.model.fluid import _solve_fluid_group

    results: list[MvaResult | None] = [None] * len(networks)
    groups: dict[tuple[str, int], list[int]] = {}
    for i, net in enumerate(networks):
        n = len(net.stations)
        if n == 0:
            total_delay = net.think_time + net.extra_delay
            x = (
                net.population / total_delay
                if total_delay > 0
                else float("inf")
            )
            results[i] = MvaResult(x, net.extra_delay, {}, {}, {}, 0)
        else:
            groups.setdefault((net.method, n), []).append(i)
    for (method, _), indices in groups.items():
        if method == "fluid":
            solved = _solve_fluid_group([networks[i] for i in indices])
        else:
            solved = _solve_batch_group(
                [networks[i] for i in indices], tol, max_iter
            )
        for i, result in zip(indices, solved):
            results[i] = result
    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]


def solve_mva_exact(
    stations: Sequence[Station],
    population: int,
    think_time: float,
    extra_delay: float = 0.0,
) -> MvaResult:
    """Exact MVA (Reiser–Lavenberg population recursion).

    Only valid for single-server stations (``servers == 1``); it exists as
    the ground-truth reference the Schweitzer approximation is tested
    against, and for small models where exactness is cheap (O(N·K)).
    """
    if population < 1:
        raise ValueError("population must be >= 1")
    if think_time < 0 or extra_delay < 0:
        raise ValueError("delays must be non-negative")
    for s in stations:
        if s.servers != 1:
            raise ValueError(
                f"exact MVA supports single-server stations only; "
                f"{s.name!r} has {s.servers}"
            )
        if s.multiplicity != 1:
            raise ValueError(
                f"exact MVA does not support aggregated stations; "
                f"expand {s.name!r} (multiplicity {s.multiplicity}) into "
                f"explicit replicas"
            )
    demand = np.array([s.demand for s in stations], dtype=float)
    z = think_time + extra_delay
    queue = np.zeros(len(stations))
    x = 0.0
    residence = demand.copy()
    for n in range(1, population + 1):
        residence = demand * (1.0 + queue)
        total = z + float(residence.sum())
        x = n / total if total > 0 else float("inf")
        queue = x * residence
    utilization = np.minimum(x * demand, 1.0)
    return MvaResult(
        throughput=float(x),
        response_time=float(residence.sum()) + extra_delay,
        residence={s.name: float(r) for s, r in zip(stations, residence)},
        queue={s.name: float(q) for s, q in zip(stations, queue)},
        utilization={s.name: float(u) for s, u in zip(stations, utilization)},
        iterations=population,
    )
