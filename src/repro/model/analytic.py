"""The analytic backend: a fixed point over AMVA + pool corrections.

Solving one configuration proceeds as an outer fixed point:

1. build the demand set (server models need a per-node concurrency
   estimate, which the previous iterate supplies),
2. solve the closed network with Schweitzer AMVA,
3. layer M/M/c/K waiting/blocking for the thread and connection pools onto
   the solution (pool waits become extra per-cycle delay; blocking becomes
   failed interactions),
4. refresh the concurrency estimates from the queue lengths and pool
   occupancies, damped, and repeat until throughput stabilizes.

The result is deterministic; the configured :class:`NoiseModel` then turns
the model throughput into one noisy "measured" WIPS per seed, exactly the
signal the Harmony server consumes.

Because step 2 dominates, the backend also exposes a batched path:
:meth:`AnalyticBackend.solve_batch` runs the outer fixed point for many
configurations in lockstep, submitting every active configuration's
network to :func:`repro.model.mva.solve_mva_batch` as one vectorized
solve per outer iteration.  Each configuration's trajectory is
independent (converged ones are frozen), so batched solutions are
bit-identical to scalar ones.  :meth:`AnalyticBackend.measure_batch`
builds on it, deduplicating identical configurations (only the noise
draw depends on the seed) and consulting a per-backend LRU solution
cache keyed on ``(scenario fingerprint, configuration)``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.cluster.context import WorkloadContext
from repro.tpcw.interactions import InteractionCategory
from repro.cluster.memory import MemoryModel
from repro.cluster.node import Role
from repro.cluster.topology import ClusterSpec
from repro.harmony.parameter import Configuration
from repro.model.base import (
    CacheStats,
    Measurement,
    PerformanceBackend,
    ResourceUtilization,
    Scenario,
)
from repro.model.demands import DemandSet, build_demands
from repro.model.mva import MvaNetwork, MvaResult, Station, solve_mva, solve_mva_batch
from repro.model.noise import NoiseModel
from repro.util.rng import spawn_rng

__all__ = ["AnalyticBackend", "AnalyticSolution"]

#: Fixed per-interaction network round-trip overhead (LAN latencies).
NETWORK_RTT = 5e-3


@dataclass(frozen=True)
class AnalyticSolution:
    """Deterministic solution for one (cluster, config, workload)."""

    throughput: float
    error_rate: float
    response_time: float
    utilization: dict[str, ResourceUtilization]
    max_memory_penalty: float
    diagnostics: dict[str, float]

    @property
    def effective_wips(self) -> float:
        """Successful interactions per second.

        In a closed workload a rejected request bounces its emulated browser
        straight back into think/retry, so rejections burn *attempts*, not
        completions: sustained throughput stays at what the pools admit
        (which the pool stations already bound).  ``error_rate`` is
        therefore reported as a health metric but does not scale WIPS.
        """
        return self.throughput


class _OuterState:
    """Mutable per-configuration state of the outer fixed point."""

    __slots__ = (
        "configuration",
        "conc",
        "holding",
        "x_prev",
        "err",
        "pool_diag",
        "demand_set",
        "mva",
        "pool_names",
        "done",
    )

    def __init__(
        self, cluster: ClusterSpec, configuration: Mapping[str, int]
    ) -> None:
        self.configuration = configuration
        self.conc: dict[str, float] = {n: 8.0 for n in cluster.node_ids}
        self.holding: dict[str, float] = {}
        self.x_prev = 0.0
        self.err = 0.0
        self.pool_diag: dict[str, float] = {}
        self.demand_set: DemandSet | None = None
        self.mva: MvaResult | None = None
        self.pool_names: dict[str, object] = {}
        self.done = False


class AnalyticBackend(PerformanceBackend):
    """MVA-based testbed substitute (fast path for tuning sweeps)."""

    def __init__(
        self,
        noise: Optional[NoiseModel] = None,
        memory: Optional[MemoryModel] = None,
        max_outer: int = 40,
        damping: float = 0.5,
        tol: float = 2e-4,
        solution_cache_size: int = 4096,
    ) -> None:
        if not 0.0 < damping <= 1.0:
            raise ValueError("damping must be in (0, 1]")
        if solution_cache_size < 0:
            raise ValueError("solution_cache_size must be >= 0 (0 disables)")
        self.noise = noise if noise is not None else NoiseModel()
        self.memory = memory or MemoryModel()
        self.max_outer = max_outer
        self.damping = damping
        self.tol = tol
        self.solution_cache_size = solution_cache_size
        self._context_cache: dict[tuple[int, str], WorkloadContext] = {}
        # Deterministic-solution memo: (scenario fp, config) → solution.
        # The solve is seed-independent (only the noise draw varies), so
        # re-measuring a configuration on fresh seeds costs one solve.
        self._solution_cache: OrderedDict[tuple, AnalyticSolution] = OrderedDict()
        self._solution_hits = 0
        self._solution_misses = 0

    # ------------------------------------------------------------------
    def _context(self, scenario: Scenario) -> WorkloadContext:
        key = (id(scenario.catalog), scenario.mix.name)
        ctx = self._context_cache.get(key)
        if ctx is None:
            ctx = WorkloadContext.for_mix(scenario.mix, scenario.catalog)
            self._context_cache[key] = ctx
        return ctx

    def solve(
        self,
        cluster: ClusterSpec,
        configuration: Mapping[str, int],
        ctx: WorkloadContext,
        population: int,
        think_time: float,
    ) -> AnalyticSolution:
        """Deterministic model solution for one sub-system.

        Thread and connection pools enter the MVA as multi-server stations
        whose per-interaction demand is ``visits × holding time``, where the
        holding time — how long one request keeps a thread/connection — is
        the downstream residence computed by the *previous* outer iterate.
        A saturated pool then throttles throughput and inflates response
        time the way a real connector does, instead of mass-rejecting.
        Requests are only rejected when the pool's queue exceeds its backlog
        (``acceptCount``); the excess fraction becomes failed interactions.

        (This counts a request's downstream service once in the downstream
        stations and once inside the pool-station holding time; the
        double-count inflates response time by at most the pool holding,
        which is small against the 7 s think time away from saturation and
        is the standard price of this flow-equivalent approximation.)
        """
        state = _OuterState(cluster, configuration)
        for _ in range(self.max_outer):
            stations = self._assemble_stations(state, cluster, ctx)
            state.mva = solve_mva(
                stations, population, think_time, extra_delay=NETWORK_RTT
            )
            if self._refresh_state(state):
                break
        return self._finalize_state(state)

    def solve_batch(
        self,
        cluster: ClusterSpec,
        configurations: Sequence[Mapping[str, int]],
        ctx: WorkloadContext,
        population: int,
        think_time: float,
    ) -> list[AnalyticSolution]:
        """Solve many configurations of one scenario in lockstep.

        Each outer iteration submits every still-active configuration's
        network as one :func:`solve_mva_batch` call; configurations whose
        outer fixed point has converged are frozen.  The per-configuration
        trajectories are exactly those of :meth:`solve` (the batched MVA is
        bit-identical per row), so the returned solutions equal the scalar
        ones bit for bit.
        """
        states = [_OuterState(cluster, cfg) for cfg in configurations]
        for _ in range(self.max_outer):
            active = [st for st in states if not st.done]
            if not active:
                break
            networks = [
                MvaNetwork(
                    tuple(self._assemble_stations(st, cluster, ctx)),
                    population,
                    think_time,
                    NETWORK_RTT,
                )
                for st in active
            ]
            for st, mva in zip(active, solve_mva_batch(networks)):
                st.mva = mva
                if self._refresh_state(st):
                    st.done = True
        return [self._finalize_state(st) for st in states]

    # ------------------------------------------------------------------
    def _assemble_stations(
        self, state: _OuterState, cluster: ClusterSpec, ctx: WorkloadContext
    ) -> list[Station]:
        """One outer iteration's network from the state's current iterate."""
        state.demand_set = build_demands(
            cluster, state.configuration, ctx, state.conc, self.memory
        )
        stations = []
        for nd in state.demand_set.nodes:
            stations.append(Station(f"{nd.node_id}:cpu", nd.cpu, nd.cpu_servers))
            stations.append(Station(f"{nd.node_id}:disk", nd.disk))
            stations.append(Station(f"{nd.node_id}:nic", nd.nic))
        state.pool_names = {}
        for pool in state.demand_set.pools:
            name = f"{pool.node_id}:{pool.kind}"
            state.pool_names[name] = pool
            stations.append(
                Station(
                    name,
                    pool.visits * state.holding.get(name, 0.02),
                    pool.servers,
                )
            )
        return stations

    def _refresh_state(self, state: _OuterState) -> bool:
        """Fold one MVA solution back into the outer iterate.

        Returns True when the outer fixed point has converged.
        """
        demand_set = state.demand_set
        mva = state.mva
        assert demand_set is not None and mva is not None
        holding = state.holding
        conc = state.conc
        x = mva.throughput

        # --- refresh pool holding times from downstream residence ------
        fwd_dyn = demand_set.forward_dynamic
        fwd_total = demand_set.forward_total
        db_resid = 0.0
        db_resid_bound = 0.0
        for nd in demand_set.nodes:
            if nd.role is not Role.DB:
                continue
            db_resid += (
                mva.residence[f"{nd.node_id}:cpu"]
                + mva.residence[f"{nd.node_id}:disk"]
                + mva.residence[f"{nd.node_id}:nic"]
            )
            conns = next(
                p.servers
                for p in demand_set.pools
                if p.node_id == nd.node_id and p.kind == "dbconn"
            )
            db_resid_bound += (nd.cpu + nd.disk + nd.nic) * max(
                1.0, conns / nd.cpu_servers
            )
        # Same processor-sharing bound as the app pools: at most
        # ``max_connections`` requests can be inside a database node.
        db_resid = min(db_resid, db_resid_bound)
        db_per_page = db_resid / fwd_dyn if fwd_dyn > 1e-9 else 0.0
        app_resid = {}
        app_demand = {}
        app_cores = {}
        for nd in demand_set.nodes:
            if nd.role is not Role.APP:
                continue
            app_resid[nd.node_id] = (
                mva.residence[f"{nd.node_id}:cpu"]
                + mva.residence[f"{nd.node_id}:disk"]
                + mva.residence[f"{nd.node_id}:nic"]
            )
            app_demand[nd.node_id] = nd.cpu + nd.disk + nd.nic
            app_cores[nd.node_id] = nd.cpu_servers

        err = 0.0
        pool_diag: dict[str, float] = {}
        pool_queue: dict[str, float] = {}
        d = self.damping
        holding_drift = 0.0
        for name, pool in sorted(state.pool_names.items()):
            # The MVA piles *all* excess population onto the bottleneck
            # station, so the raw residence overstates how long one of a
            # pool's P threads actually holds local resources: with at
            # most P requests inside the node, per-request residence is
            # bounded by processor sharing among P threads.  Cap the
            # MVA-derived holding by that bound — this is what makes a
            # CPU-saturated node throttle at its CPU capacity instead of
            # oscillating between CPU-limited and pool-limited regimes.
            if pool.kind in ("http", "ajp"):
                visits = max(pool.visits, 1e-9)
                per_req = app_resid[pool.node_id] / visits
                d_req = app_demand[pool.node_id] / visits
                ps_bound = d_req * max(
                    1.0, pool.servers / app_cores[pool.node_id]
                )
                local = min(per_req, ps_bound)
                if pool.kind == "http":
                    dyn_frac = fwd_dyn / max(fwd_total, 1e-9)
                    target = local + dyn_frac * db_per_page
                else:
                    target = local + db_per_page
            else:  # dbconn: holding is the database residence per page
                target = db_per_page
            previous = holding.get(name, 0.02)
            holding[name] = (1 - d) * previous + d * target
            holding_drift = max(
                holding_drift,
                abs(holding[name] - previous) / max(holding[name], 1e-6),
            )
            # Backlog overflow → rejected requests → failed interactions.
            q = mva.queue[name]
            waiting = max(0.0, q - pool.servers)
            backlog = pool.capacity - pool.servers
            over = max(0.0, waiting - backlog)
            reject = over / q if q > 1e-9 else 0.0
            err += pool.visits * reject
            pool_diag[f"{pool.node_id}.{pool.kind}.util"] = mva.utilization[name]
            pool_diag[f"{pool.node_id}.{pool.kind}.reject"] = reject
            pool_queue.setdefault(pool.node_id, 0.0)
            pool_queue[pool.node_id] = max(pool_queue[pool.node_id], q)
        state.err = min(err, 0.95)
        state.pool_diag = pool_diag

        # --- refresh concurrency estimates ----------------------------
        for nd in demand_set.nodes:
            q = (
                mva.queue[f"{nd.node_id}:cpu"]
                + mva.queue[f"{nd.node_id}:disk"]
                + mva.queue[f"{nd.node_id}:nic"]
            )
            target = max(pool_queue.get(nd.node_id, 0.0), q, 1.0)
            conc[nd.node_id] = (1 - d) * conc[nd.node_id] + d * target

        converged = (
            abs(x - state.x_prev) <= self.tol * max(x, 1e-9)
            and holding_drift <= 100 * self.tol
        )
        state.x_prev = x
        return converged

    def _finalize_state(self, state: _OuterState) -> AnalyticSolution:
        """Turn the converged (or exhausted) iterate into a solution."""
        demand_set = state.demand_set
        mva = state.mva
        assert demand_set is not None and mva is not None
        x = state.x_prev

        utilization: dict[str, ResourceUtilization] = {}
        max_penalty = 1.0
        for nd in demand_set.nodes:
            utilization[nd.node_id] = ResourceUtilization(
                cpu=min(x * nd.cpu / nd.cpu_servers, 1.0),
                disk=min(x * nd.disk, 1.0),
                network=min(x * nd.nic, 1.0),
                memory=nd.memory_bytes / nd.memory_capacity,
            )
            max_penalty = max(max_penalty, nd.memory_penalty)

        diagnostics = dict(demand_set.diagnostics)
        # Per-node load facts for the §IV reconfiguration algorithm:
        # ``N_i`` (jobs resident on node i) and ``A_i`` (average process time).
        for nd in demand_set.nodes:
            diagnostics[f"{nd.node_id}.jobs"] = state.conc[nd.node_id]
            diagnostics[f"{nd.node_id}.service_time"] = nd.cpu + nd.disk + nd.nic
            diagnostics[f"{nd.node_id}.memory_penalty"] = nd.memory_penalty
        diagnostics.update(state.pool_diag)
        diagnostics["forward_dynamic"] = demand_set.forward_dynamic
        diagnostics["forward_static"] = demand_set.forward_static
        return AnalyticSolution(
            throughput=x,
            error_rate=state.err,
            response_time=mva.response_time,
            utilization=utilization,
            max_memory_penalty=max_penalty,
            diagnostics=diagnostics,
        )

    # ------------------------------------------------------------------
    # Solution memoization (deterministic part only; noise is per seed)

    def _solution_key(
        self, scenario: Scenario, configuration: Mapping[str, int]
    ) -> tuple:
        return (scenario.fingerprint(), tuple(sorted(configuration.items())))

    def _solution_get(self, key: tuple) -> Optional[AnalyticSolution]:
        if self.solution_cache_size == 0:
            return None
        sol = self._solution_cache.get(key)
        if sol is None:
            self._solution_misses += 1
            return None
        self._solution_hits += 1
        self._solution_cache.move_to_end(key)
        return sol

    def _solution_put(self, key: tuple, solution: AnalyticSolution) -> None:
        if self.solution_cache_size == 0:
            return
        self._solution_cache[key] = solution
        while len(self._solution_cache) > self.solution_cache_size:
            self._solution_cache.popitem(last=False)

    def _solve_cached(
        self,
        scenario: Scenario,
        configuration: Configuration,
        ctx: WorkloadContext,
        think: float,
    ) -> AnalyticSolution:
        key = self._solution_key(scenario, configuration)
        sol = self._solution_get(key)
        if sol is None:
            sol = self.solve(
                scenario.cluster, configuration, ctx, scenario.population, think
            )
            self._solution_put(key, sol)
        return sol

    @property
    def solution_cache_stats(self) -> CacheStats:
        """Hit/miss/size counters of the deterministic-solution memo."""
        return CacheStats(
            hits=self._solution_hits,
            misses=self._solution_misses,
            size=len(self._solution_cache),
        )

    # ------------------------------------------------------------------
    def _subset_config(
        self, configuration: Mapping[str, int], node_ids: list[str]
    ) -> Configuration:
        prefixes = tuple(f"{n}." for n in node_ids)
        return Configuration(
            {
                k: v
                for k, v in sorted(configuration.items())
                if k.startswith(prefixes)
            }
        )

    def measure(
        self,
        scenario: Scenario,
        configuration: Configuration,
        seed: int = 0,
    ) -> Measurement:
        """One noisy measurement iteration (see :class:`PerformanceBackend`)."""
        ctx = self._context(scenario)
        think = scenario.behavior.effective_mean_think_time
        extremeness = scenario.cluster.full_space().extremeness(configuration)
        rng = spawn_rng(seed, "analytic-measure")

        if scenario.work_lines:
            lines = scenario.work_lines
            per_line: dict[str, float] = {}
            utilization: dict[str, ResourceUtilization] = {}
            total_raw = 0.0
            total_wips = 0.0
            err_acc = 0.0
            resp_acc = 0.0
            max_penalty = 1.0
            diagnostics: dict[str, float] = {}
            share = scenario.population // len(lines)
            remainder = scenario.population - share * len(lines)
            for i, (line_id, node_ids) in enumerate(sorted(lines.items())):
                placements = [
                    scenario.cluster.placement(n) for n in node_ids
                ]
                sub_cluster = ClusterSpec(placements, name=line_id)
                sub_pop = share + (1 if i < remainder else 0)
                sol = self.solve(
                    sub_cluster,
                    self._subset_config(configuration, list(node_ids)),
                    ctx,
                    max(sub_pop, 1),
                    think,
                )
                noisy = self.noise.apply(
                    sol.effective_wips,
                    extremeness,
                    sol.max_memory_penalty,
                    spawn_rng(seed, "line", line_id),
                )
                per_line[line_id] = noisy
                total_raw += sol.throughput
                total_wips += noisy
                err_acc += sol.error_rate * sol.throughput
                resp_acc += sol.response_time * sol.throughput
                utilization.update(sol.utilization)
                max_penalty = max(max_penalty, sol.max_memory_penalty)
                diagnostics.update(
                    {
                        f"{line_id}.{k}": v
                        for k, v in sorted(sol.diagnostics.items())
                    }
                )
            error_rate = err_acc / total_raw if total_raw > 0 else 0.0
            response = resp_acc / total_raw if total_raw > 0 else 0.0
            return Measurement(
                wips=total_wips,
                raw_wips=total_raw,
                error_rate=error_rate,
                response_time=response,
                utilization=utilization,
                diagnostics=diagnostics,
                per_line_wips=per_line,
            )

        sol = self._solve_cached(scenario, configuration, ctx, think)
        wips = self.noise.apply(
            sol.effective_wips, extremeness, sol.max_memory_penalty, rng
        )
        diagnostics = dict(sol.diagnostics)
        # Secondary TPC-W metrics: the category split of the throughput
        # (interactions are sampled i.i.d. from the mix, so the long-run
        # category rates are the mix's Browse/Order fractions).
        for category in InteractionCategory:
            diagnostics[f"wips_{category.value}"] = (
                wips * scenario.mix.category_fraction(category)
            )
        return Measurement(
            wips=wips,
            raw_wips=sol.throughput,
            error_rate=sol.error_rate,
            response_time=sol.response_time,
            utilization=sol.utilization,
            diagnostics=diagnostics,
        )

    def measure_batch(
        self,
        scenario: Scenario,
        requests: Sequence[tuple[Configuration, int]],
    ) -> list[Measurement]:
        """Measure many ``(configuration, seed)`` points in one MVA batch.

        The deterministic solve depends only on the configuration, so the
        distinct configurations are deduplicated, looked up in the solution
        memo, and the misses submitted to :meth:`solve_batch` as a single
        lockstep batch; each request then draws its own noise exactly as
        :meth:`measure` would.  Results are bit-identical to the serial
        loop.  Partitioned (work-line) scenarios fall back to the serial
        path.
        """
        if scenario.work_lines:
            return [
                self.measure(scenario, cfg, seed=seed) for cfg, seed in requests
            ]
        ctx = self._context(scenario)
        think = scenario.behavior.effective_mean_think_time

        order: dict[Configuration, int] = {}
        for cfg, _ in requests:
            if cfg not in order:
                order[cfg] = len(order)
        distinct = list(order)
        solutions: list[Optional[AnalyticSolution]] = [None] * len(distinct)
        to_solve: list[int] = []
        for i, cfg in enumerate(distinct):
            sol = self._solution_get(self._solution_key(scenario, cfg))
            if sol is None:
                to_solve.append(i)
            else:
                solutions[i] = sol
        if to_solve:
            solved = self.solve_batch(
                scenario.cluster,
                [distinct[i] for i in to_solve],
                ctx,
                scenario.population,
                think,
            )
            for i, sol in zip(to_solve, solved):
                solutions[i] = sol
                self._solution_put(
                    self._solution_key(scenario, distinct[i]), sol
                )

        out = []
        for cfg, seed in requests:
            sol = solutions[order[cfg]]
            assert sol is not None
            extremeness = scenario.cluster.full_space().extremeness(cfg)
            rng = spawn_rng(seed, "analytic-measure")
            wips = self.noise.apply(
                sol.effective_wips, extremeness, sol.max_memory_penalty, rng
            )
            diagnostics = dict(sol.diagnostics)
            for category in InteractionCategory:
                diagnostics[f"wips_{category.value}"] = (
                    wips * scenario.mix.category_fraction(category)
                )
            out.append(
                Measurement(
                    wips=wips,
                    raw_wips=sol.throughput,
                    error_rate=sol.error_rate,
                    response_time=sol.response_time,
                    utilization=sol.utilization,
                    diagnostics=diagnostics,
                )
            )
        return out
