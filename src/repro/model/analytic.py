"""The analytic backend: a fixed point over AMVA + pool corrections.

Solving one configuration proceeds as an outer fixed point:

1. build the demand set (server models need a per-node concurrency
   estimate, which the previous iterate supplies),
2. solve the closed network with Schweitzer AMVA,
3. layer M/M/c/K waiting/blocking for the thread and connection pools onto
   the solution (pool waits become extra per-cycle delay; blocking becomes
   failed interactions),
4. refresh the concurrency estimates from the queue lengths and pool
   occupancies, damped, and repeat until throughput stabilizes.

The result is deterministic; the configured :class:`NoiseModel` then turns
the model throughput into one noisy "measured" WIPS per seed, exactly the
signal the Harmony server consumes.

Because step 2 dominates, the backend also exposes a batched path:
:meth:`AnalyticBackend.solve_batch` runs the outer fixed point for many
configurations in lockstep, submitting every active configuration's
network to :func:`repro.model.mva.solve_mva_batch` as one vectorized
solve per outer iteration.  Each configuration's trajectory is
independent (converged ones are frozen), so batched solutions are
bit-identical to scalar ones.  :meth:`AnalyticBackend.measure_batch`
builds on it, deduplicating identical configurations (only the noise
draw depends on the seed) and consulting a per-backend LRU solution
cache keyed on ``(scenario fingerprint, configuration)``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.cluster.context import WorkloadContext
from repro.tpcw.interactions import InteractionCategory
from repro.cluster.memory import MemoryModel
from repro.cluster.node import Role
from repro.cluster.topology import ClusterSpec
from repro.harmony.parameter import Configuration
from repro.model.base import (
    CacheStats,
    Measurement,
    PerformanceBackend,
    ResourceUtilization,
    Scenario,
)
from repro.model.demands import DemandBuilder, DemandSet
from repro.model.hierarchy import AggregationPlan, aggregation_plan
from repro.model.mva import MvaNetwork, MvaResult, Station, solve_mva_batch
from repro.model.noise import NoiseModel
from repro.util.rng import spawn_rng

__all__ = ["AnalyticBackend", "AnalyticSolution", "APPROXIMATIONS"]

#: Fixed per-interaction network round-trip overhead (LAN latencies).
NETWORK_RTT = 5e-3

#: Valid values of :class:`AnalyticBackend`'s ``approximation`` knob.
#:
#: - ``"exact"``       — per-node Schweitzer AMVA, the pre-scale-axis
#:   behaviour (refuses populations beyond ``max_exact_population``);
#: - ``"fluid"``       — the O(stations), population-independent
#:   mean-field solve of :mod:`repro.model.fluid`;
#: - ``"hierarchical"`` — one representative station per homogeneous
#:   replica group (:mod:`repro.model.hierarchy`), Schweitzer solve;
#: - ``"fluid+hierarchical"`` — both: tier aggregation and fluid rows;
#: - ``"auto"``        — fluid above ``fluid_population_threshold``,
#:   hierarchical at or above ``hierarchy_node_threshold`` nodes.
APPROXIMATIONS = (
    "auto",
    "exact",
    "fluid",
    "hierarchical",
    "fluid+hierarchical",
)


@dataclass(frozen=True)
class AnalyticSolution:
    """Deterministic solution for one (cluster, config, workload)."""

    throughput: float
    error_rate: float
    response_time: float
    utilization: dict[str, ResourceUtilization]
    max_memory_penalty: float
    diagnostics: dict[str, float]

    @property
    def effective_wips(self) -> float:
        """Successful interactions per second.

        In a closed workload a rejected request bounces its emulated browser
        straight back into think/retry, so rejections burn *attempts*, not
        completions: sustained throughput stays at what the pools admit
        (which the pool stations already bound).  ``error_rate`` is
        therefore reported as a health metric but does not scale WIPS.
        """
        return self.throughput


class _SolvePlan:
    """Invariant per-solve scaffolding derived from the first demand set.

    The node and pool sets — and with them the station names, the
    concurrency-independent station demands (app/db disk and NIC), and
    the refresh loop's pool/core ratios — are fixed for a whole solve.
    Deriving them once per state instead of every outer round changes
    only where they are computed, never their values, so solver results
    stay bit-identical.
    """

    __slots__ = (
        "node_names",
        "fixed_stations",
        "pool_entries",
        "sorted_pools",
        "db_refresh",
        "app_refresh",
        "dyn_frac",
    )

    def __init__(self, demand_set: DemandSet) -> None:
        node_names: list[tuple[str, str, str]] = []
        fixed: list[tuple[Station, Station] | None] = []
        app_cores: dict[str, int] = {}
        for nd in demand_set.nodes:
            names = (
                f"{nd.node_id}:cpu",
                f"{nd.node_id}:disk",
                f"{nd.node_id}:nic",
            )
            node_names.append(names)
            if nd.role is Role.PROXY:
                # Proxy disk demand tracks the memory penalty, which moves
                # with the concurrency iterate — rebuild those per round.
                fixed.append(None)
            else:
                fixed.append(
                    (
                        Station(
                            names[1], nd.disk, multiplicity=nd.multiplicity
                        ),
                        Station(
                            names[2], nd.nic, multiplicity=nd.multiplicity
                        ),
                    )
                )
            if nd.role is Role.APP:
                app_cores[nd.node_id] = nd.cpu_servers
        self.node_names = node_names
        self.fixed_stations = fixed
        pool_entries = [
            (f"{pool.node_id}:{pool.kind}", pool) for pool in demand_set.pools
        ]
        self.pool_entries = pool_entries
        db_conns = {
            pool.node_id: pool.servers
            for _, pool in pool_entries
            if pool.kind == "dbconn"
        }
        # The refresh loop walks pools in name order; precompute the
        # per-pool processor-sharing ratio (servers per core) it applies.
        self.sorted_pools = [
            (
                name,
                pool,
                max(pool.visits, 1e-9),
                max(1.0, pool.servers / app_cores[pool.node_id])
                if pool.kind in ("http", "ajp")
                else 0.0,
            )
            for name, pool in sorted(pool_entries, key=lambda entry: entry[0])
        ]
        db_refresh = []
        app_refresh = []
        for i, nd in enumerate(demand_set.nodes):
            cpu_n, disk_n, nic_n = node_names[i]
            if nd.role is Role.DB:
                db_refresh.append(
                    (
                        i,
                        cpu_n,
                        disk_n,
                        nic_n,
                        max(1.0, db_conns[nd.node_id] / nd.cpu_servers),
                        nd.multiplicity,
                    )
                )
            elif nd.role is Role.APP:
                app_refresh.append((i, nd.node_id, cpu_n, disk_n, nic_n))
        self.db_refresh = db_refresh
        self.app_refresh = app_refresh
        self.dyn_frac = demand_set.forward_dynamic / max(
            demand_set.forward_total, 1e-9
        )


class _OuterState:
    """Mutable per-configuration state of the outer fixed point."""

    __slots__ = (
        "configuration",
        "builder",
        "plan",
        "fluid",
        "agg",
        "conc",
        "holding",
        "x_prev",
        "err",
        "pool_diag",
        "demand_set",
        "mva",
        "done",
    )

    def __init__(
        self,
        cluster: ClusterSpec,
        configuration: Mapping[str, int],
        fluid: bool = False,
        agg: AggregationPlan | None = None,
    ) -> None:
        self.configuration = configuration
        # Per-solve partial evaluation of the demand derivation; created on
        # first assembly (needs the workload context the backend supplies).
        self.builder: DemandBuilder | None = None
        self.plan: _SolvePlan | None = None
        self.fluid = fluid
        self.agg = agg
        if agg is None:
            self.conc: dict[str, float] = {n: 8.0 for n in cluster.node_ids}
        else:
            self.conc = {rep: 8.0 for rep, _ in agg.groups}
        self.holding: dict[str, float] = {}
        self.x_prev = 0.0
        self.err = 0.0
        self.pool_diag: dict[str, float] = {}
        self.demand_set: DemandSet | None = None
        self.mva: MvaResult | None = None
        self.done = False


class AnalyticBackend(PerformanceBackend):
    """MVA-based testbed substitute (fast path for tuning sweeps)."""

    def __init__(
        self,
        noise: Optional[NoiseModel] = None,
        memory: Optional[MemoryModel] = None,
        max_outer: int = 40,
        damping: float = 0.5,
        tol: float = 2e-4,
        solution_cache_size: int = 4096,
        prefetch_outer_budget: Optional[int] = None,
        approximation: str = "auto",
        fluid_population_threshold: int = 50_000,
        hierarchy_node_threshold: int = 16,
        max_exact_population: int = 200_000,
    ) -> None:
        if not 0.0 < damping <= 1.0:
            raise ValueError("damping must be in (0, 1]")
        if solution_cache_size < 0:
            raise ValueError("solution_cache_size must be >= 0 (0 disables)")
        if prefetch_outer_budget is not None and prefetch_outer_budget < 1:
            raise ValueError("prefetch_outer_budget must be >= 1 (None = full)")
        if approximation not in APPROXIMATIONS:
            raise ValueError(
                f"unknown approximation {approximation!r}; expected one of "
                f"{APPROXIMATIONS}"
            )
        if fluid_population_threshold < 1:
            raise ValueError("fluid_population_threshold must be >= 1")
        if hierarchy_node_threshold < 1:
            raise ValueError("hierarchy_node_threshold must be >= 1")
        if max_exact_population < 1:
            raise ValueError("max_exact_population must be >= 1")
        self.approximation = approximation
        self.fluid_population_threshold = fluid_population_threshold
        self.hierarchy_node_threshold = hierarchy_node_threshold
        self.max_exact_population = max_exact_population
        self.noise = noise if noise is not None else NoiseModel()
        self.memory = memory or MemoryModel()
        self.max_outer = max_outer
        self.damping = damping
        self.tol = tol
        self.solution_cache_size = solution_cache_size
        # Speculative prefetches abandon rows whose outer fixed point has
        # not converged within this many rounds (None = run to max_outer).
        # Abandoned rows are simply not cached; if later committed they
        # solve at the ordinary serial price, so results are unaffected.
        # Off by default: the TPC-W fixed point usually *exhausts*
        # max_outer rather than converging (the exhausted last iterate is
        # the solution), so a budget below max_outer abandons nearly every
        # row — the knob only pays on models where early convergence is
        # the norm and stragglers the exception.
        self.prefetch_outer_budget = prefetch_outer_budget
        self._context_cache: dict[tuple, WorkloadContext] = {}
        # Deterministic-solution memo: (scenario fp, config) → solution.
        # The solve is seed-independent (only the noise draw varies), so
        # re-measuring a configuration on fresh seeds costs one solve.
        self._solution_cache: OrderedDict[tuple, AnalyticSolution] = OrderedDict()
        self._solution_hits = 0
        self._solution_misses = 0
        self._solution_shared_hits = 0

    # ------------------------------------------------------------------
    def _context(self, scenario: Scenario) -> WorkloadContext:
        # Keyed by content, not object identity: a persistent backend
        # outlives the scenarios it serves, and ``id()`` of a dead catalog
        # can be reused by an unrelated one.
        key = (scenario.catalog.fingerprint(), scenario.mix.fingerprint())
        ctx = self._context_cache.get(key)
        if ctx is None:
            ctx = WorkloadContext.for_mix(scenario.mix, scenario.catalog)
            self._context_cache[key] = ctx
        return ctx

    def resolve_modes(
        self, cluster: ClusterSpec, population: int
    ) -> tuple[bool, bool]:
        """What the ``approximation`` policy does for this solve.

        Returns ``(use_fluid, use_hierarchical)``.  ``"auto"`` engages
        the fluid solver once the population reaches
        ``fluid_population_threshold`` (below it Schweitzer is both cheap
        and more accurate) and tier aggregation once the cluster reaches
        ``hierarchy_node_threshold`` nodes (below it there is nothing
        worth collapsing).  ``"exact"`` refuses populations beyond
        ``max_exact_population`` outright — at that scale the Schweitzer
        fixed point needs thousands of iterations per outer round and a
        tuning run would take hours; the error names the knobs to turn
        instead of letting the caller find out the slow way.
        """
        mode = self.approximation
        if mode == "exact":
            if population > self.max_exact_population:
                raise ValueError(
                    f"approximation='exact' refuses population="
                    f"{population} (> max_exact_population="
                    f"{self.max_exact_population}): the exact solve cost "
                    f"grows with N and this would effectively hang.  Use "
                    f"approximation='fluid' (or 'auto') for large "
                    f"populations, or raise max_exact_population if you "
                    f"really mean it."
                )
            return False, False
        if mode == "auto":
            return (
                population >= self.fluid_population_threshold,
                cluster.num_nodes >= self.hierarchy_node_threshold,
            )
        return "fluid" in mode, "hierarchical" in mode

    def _mode_tag(self, cluster: ClusterSpec, population: int) -> tuple:
        """Solution-key suffix identifying the resolved approximation.

        Empty when the solve resolves to the exact path, so exact-mode
        keys — including every key minted before the scale axis existed —
        are unchanged and warm caches stay valid.  Non-exact solves get a
        distinct key: a shared store serving both an exact and a fluid
        consumer must never hand one the other's solution.
        """
        fluid, hier = self.resolve_modes(cluster, population)
        if not fluid and not hier:
            return ()
        return (("approx", fluid, hier),)

    def solve(
        self,
        cluster: ClusterSpec,
        configuration: Mapping[str, int],
        ctx: WorkloadContext,
        population: int,
        think_time: float,
    ) -> AnalyticSolution:
        """Deterministic model solution for one sub-system.

        Thread and connection pools enter the MVA as multi-server stations
        whose per-interaction demand is ``visits × holding time``, where the
        holding time — how long one request keeps a thread/connection — is
        the downstream residence computed by the *previous* outer iterate.
        A saturated pool then throttles throughput and inflates response
        time the way a real connector does, instead of mass-rejecting.
        Requests are only rejected when the pool's queue exceeds its backlog
        (``acceptCount``); the excess fraction becomes failed interactions.

        (This counts a request's downstream service once in the downstream
        stations and once inside the pool-station holding time; the
        double-count inflates response time by at most the pool holding,
        which is small against the 7 s think time away from saturation and
        is the standard price of this flow-equivalent approximation.)

        The ``approximation`` policy applies here as everywhere: above
        the auto thresholds (or under a forced mode) the inner network is
        solved fluid and/or tier-aggregated; see :data:`APPROXIMATIONS`.
        """
        (sol,) = self.solve_tasks_multi(
            [(cluster, configuration, population, ctx, think_time)]
        )
        assert sol is not None  # no outer_budget → solved
        return sol

    def solve_batch(
        self,
        cluster: ClusterSpec,
        configurations: Sequence[Mapping[str, int]],
        ctx: WorkloadContext,
        population: int,
        think_time: float,
    ) -> list[AnalyticSolution]:
        """Solve many configurations of one scenario in lockstep.

        Each outer iteration submits every still-active configuration's
        network as one :func:`solve_mva_batch` call; configurations whose
        outer fixed point has converged are frozen.  The per-configuration
        trajectories are exactly those of :meth:`solve` (the batched MVA is
        bit-identical per row), so the returned solutions equal the scalar
        ones bit for bit.
        """
        return self.solve_tasks(
            [(cluster, cfg, population) for cfg in configurations],
            ctx,
            think_time,
        )

    def solve_tasks(
        self,
        tasks: Sequence[tuple[ClusterSpec, Mapping[str, int], int]],
        ctx: WorkloadContext,
        think_time: float,
        outer_budget: Optional[int] = None,
    ) -> list[Optional[AnalyticSolution]]:
        """Solve heterogeneous ``(cluster, configuration, population)`` tasks
        in lockstep — one :func:`solve_mva_batch` call per outer iteration.

        This generalizes :meth:`solve_batch` to tasks on *different*
        (sub-)clusters and populations, which is what a partitioned
        scenario's work lines and a speculative cross-group frontier need.
        Each task's trajectory is independent and bit-identical to
        :meth:`solve` on the same task.

        Every size runs through :func:`solve_mva_batch`: its python
        finisher takes over once at most two rows remain active, so even
        one- and two-task sets beat the scalar solver (the array kernel's
        per-iteration overhead used to lose below ≈3 rows).  Identical
        results either way — the engines are bit-identical by contract.

        ``outer_budget`` caps the outer rounds *without* compromising
        results: a task whose fixed point converges within the budget
        yields the exact :meth:`solve` solution (the convergence round is
        intrinsic to the task — lockstep freezing changes which rounds
        run, never their values), and a task that does not is returned as
        ``None`` rather than as a different iterate.  Prefetch paths use
        this to abandon straggler speculation cheaply; measurement paths
        leave it ``None`` (run to ``max_outer``, every entry solved).
        """
        return self.solve_tasks_multi(
            [
                (cluster, cfg, population, ctx, think_time)
                for cluster, cfg, population in tasks
            ],
            outer_budget=outer_budget,
        )

    def solve_tasks_multi(
        self,
        tasks: Sequence[
            tuple[ClusterSpec, Mapping[str, int], int, WorkloadContext, float]
        ],
        outer_budget: Optional[int] = None,
    ) -> list[Optional[AnalyticSolution]]:
        """Lockstep-solve tasks that may span *different workloads*.

        Each task is ``(cluster, configuration, population, workload
        context, think time)`` — the fully-qualified input of one
        deterministic solve.  Where :meth:`solve_tasks` fixes one
        ``(ctx, think)`` pair for the whole batch, this form lets one
        :func:`solve_mva_batch` call fuse tasks from unrelated scenarios:
        all three Figure-4 workload mixes, or the pending solves of every
        experiment a shared execution engine is currently draining.  Per
        task it is bit-identical to :meth:`solve` (lockstep freezing
        changes which rounds run, never their values); ``outer_budget``
        behaves exactly as in :meth:`solve_tasks`.
        """
        rounds = self.max_outer if outer_budget is None else min(
            outer_budget, self.max_outer
        )
        budgeted = rounds < self.max_outer
        states = []
        for cluster, cfg, population, _, _ in tasks:
            fluid, hier = self.resolve_modes(cluster, population)
            agg: AggregationPlan | None = None
            if hier:
                plan = aggregation_plan(cluster, cfg)
                if not plan.is_trivial:
                    agg = plan
            states.append(_OuterState(cluster, cfg, fluid=fluid, agg=agg))
        pairs = list(zip(states, tasks))
        for _ in range(rounds):
            active = [(st, t) for st, t in pairs if not st.done]
            if not active:
                break
            networks = [
                MvaNetwork(
                    tuple(self._assemble_stations(st, cluster, ctx)),
                    population,
                    think_time,
                    NETWORK_RTT,
                    method="fluid" if st.fluid else "schweitzer",
                )
                for st, (cluster, _, population, ctx, think_time) in active
            ]
            for (st, _), mva in zip(active, solve_mva_batch(networks)):
                st.mva = mva
                if self._refresh_state(st):
                    st.done = True
        return [
            None if budgeted and not st.done else self._finalize_state(st)
            for st in states
        ]

    def _solve_cold(
        self,
        tasks: Sequence[
            tuple[ClusterSpec, Mapping[str, int], int, WorkloadContext, float]
        ],
        outer_budget: Optional[int] = None,
    ) -> list[Optional[AnalyticSolution]]:
        """Every cold deterministic solve funnels through this one hook.

        All measurement and prefetch paths route their cache misses here
        (as :meth:`solve_tasks_multi` task tuples) instead of calling the
        solvers directly.  The default is a plain lockstep batch; the
        shared execution engine overrides it to rendezvous cold solves
        from concurrently-running specs into cross-experiment mega-batches.
        Overrides must preserve the contract: the returned list matches
        ``tasks`` element-wise and each entry equals what
        :meth:`solve_tasks_multi` would have produced (``None`` only under
        an ``outer_budget``).
        """
        return self.solve_tasks_multi(tasks, outer_budget=outer_budget)

    # ------------------------------------------------------------------
    def _assemble_stations(
        self, state: _OuterState, cluster: ClusterSpec, ctx: WorkloadContext
    ) -> list[Station]:
        """One outer iteration's network from the state's current iterate."""
        if state.builder is None:
            state.builder = DemandBuilder(
                cluster,
                state.configuration,
                ctx,
                self.memory,
                groups=state.agg.groups if state.agg is not None else None,
            )
        demand_set = state.builder.build(state.conc)
        state.demand_set = demand_set
        plan = state.plan
        if plan is None:
            plan = state.plan = _SolvePlan(demand_set)
        stations = []
        holding = state.holding
        for nd, names, fixed in zip(
            demand_set.nodes, plan.node_names, plan.fixed_stations
        ):
            stations.append(
                Station(names[0], nd.cpu, nd.cpu_servers, nd.multiplicity)
            )
            if fixed is None:
                stations.append(
                    Station(names[1], nd.disk, multiplicity=nd.multiplicity)
                )
                stations.append(
                    Station(names[2], nd.nic, multiplicity=nd.multiplicity)
                )
            else:
                stations.extend(fixed)
        for name, pool in plan.pool_entries:
            stations.append(
                Station(
                    name,
                    pool.visits * holding.get(name, 0.02),
                    pool.servers,
                    pool.multiplicity,
                )
            )
        return stations

    def _refresh_state(self, state: _OuterState) -> bool:
        """Fold one MVA solution back into the outer iterate.

        Returns True when the outer fixed point has converged.
        """
        demand_set = state.demand_set
        mva = state.mva
        plan = state.plan
        assert demand_set is not None and mva is not None and plan is not None
        holding = state.holding
        conc = state.conc
        x = mva.throughput
        nodes = demand_set.nodes
        residence = mva.residence

        # --- refresh pool holding times from downstream residence ------
        fwd_dyn = demand_set.forward_dynamic
        db_resid = 0.0
        db_resid_bound = 0.0
        for i, cpu_n, disk_n, nic_n, conn_ratio, db_mult in plan.db_refresh:
            nd = nodes[i]
            db_resid += (
                residence[cpu_n] + residence[disk_n] + residence[nic_n]
            ) * db_mult
            db_resid_bound += (nd.cpu + nd.disk + nd.nic) * conn_ratio * db_mult
        # Same processor-sharing bound as the app pools: at most
        # ``max_connections`` requests can be inside a database node.
        db_resid = min(db_resid, db_resid_bound)
        db_per_page = db_resid / fwd_dyn if fwd_dyn > 1e-9 else 0.0
        app_resid = {}
        app_demand = {}
        for i, node_id, cpu_n, disk_n, nic_n in plan.app_refresh:
            nd = nodes[i]
            app_resid[node_id] = (
                residence[cpu_n] + residence[disk_n] + residence[nic_n]
            )
            app_demand[node_id] = nd.cpu + nd.disk + nd.nic

        err = 0.0
        pool_diag: dict[str, float] = {}
        pool_queue: dict[str, float] = {}
        d = self.damping
        holding_drift = 0.0
        for name, pool, visits, ps_ratio in plan.sorted_pools:
            # The MVA piles *all* excess population onto the bottleneck
            # station, so the raw residence overstates how long one of a
            # pool's P threads actually holds local resources: with at
            # most P requests inside the node, per-request residence is
            # bounded by processor sharing among P threads.  Cap the
            # MVA-derived holding by that bound — this is what makes a
            # CPU-saturated node throttle at its CPU capacity instead of
            # oscillating between CPU-limited and pool-limited regimes.
            if pool.kind in ("http", "ajp"):
                per_req = app_resid[pool.node_id] / visits
                d_req = app_demand[pool.node_id] / visits
                ps_bound = d_req * ps_ratio
                local = min(per_req, ps_bound)
                if pool.kind == "http":
                    target = local + plan.dyn_frac * db_per_page
                else:
                    target = local + db_per_page
            else:  # dbconn: holding is the database residence per page
                target = db_per_page
            previous = holding.get(name, 0.02)
            holding[name] = (1 - d) * previous + d * target
            holding_drift = max(
                holding_drift,
                abs(holding[name] - previous) / max(holding[name], 1e-6),
            )
            # Backlog overflow → rejected requests → failed interactions.
            q = mva.queue[name]
            waiting = max(0.0, q - pool.servers)
            backlog = pool.capacity - pool.servers
            over = max(0.0, waiting - backlog)
            reject = over / q if q > 1e-9 else 0.0
            err += pool.visits * reject * pool.multiplicity
            pool_diag[f"{pool.node_id}.{pool.kind}.util"] = mva.utilization[name]
            pool_diag[f"{pool.node_id}.{pool.kind}.reject"] = reject
            pool_queue.setdefault(pool.node_id, 0.0)
            pool_queue[pool.node_id] = max(pool_queue[pool.node_id], q)
        state.err = min(err, 0.95)
        state.pool_diag = pool_diag

        # --- refresh concurrency estimates ----------------------------
        for nd in demand_set.nodes:
            q = (
                mva.queue[f"{nd.node_id}:cpu"]
                + mva.queue[f"{nd.node_id}:disk"]
                + mva.queue[f"{nd.node_id}:nic"]
            )
            target = max(pool_queue.get(nd.node_id, 0.0), q, 1.0)
            conc[nd.node_id] = (1 - d) * conc[nd.node_id] + d * target

        converged = (
            abs(x - state.x_prev) <= self.tol * max(x, 1e-9)
            and holding_drift <= 100 * self.tol
        )
        state.x_prev = x
        return converged

    def _finalize_state(self, state: _OuterState) -> AnalyticSolution:
        """Turn the converged (or exhausted) iterate into a solution."""
        demand_set = state.demand_set
        mva = state.mva
        assert demand_set is not None and mva is not None
        x = state.x_prev

        utilization: dict[str, ResourceUtilization] = {}
        max_penalty = 1.0
        for nd in demand_set.nodes:
            utilization[nd.node_id] = ResourceUtilization(
                cpu=min(x * nd.cpu / nd.cpu_servers, 1.0),
                disk=min(x * nd.disk, 1.0),
                network=min(x * nd.nic, 1.0),
                memory=nd.memory_bytes / nd.memory_capacity,
            )
            max_penalty = max(max_penalty, nd.memory_penalty)

        diagnostics = dict(demand_set.diagnostics)
        # Per-node load facts for the §IV reconfiguration algorithm:
        # ``N_i`` (jobs resident on node i) and ``A_i`` (average process time).
        for nd in demand_set.nodes:
            diagnostics[f"{nd.node_id}.jobs"] = state.conc[nd.node_id]
            diagnostics[f"{nd.node_id}.service_time"] = nd.cpu + nd.disk + nd.nic
            diagnostics[f"{nd.node_id}.memory_penalty"] = nd.memory_penalty
        diagnostics.update(state.pool_diag)
        diagnostics["forward_dynamic"] = demand_set.forward_dynamic
        diagnostics["forward_static"] = demand_set.forward_static
        diagnostics["solver.fluid"] = 1.0 if state.fluid else 0.0
        agg = state.agg
        diagnostics["solver.aggregated_nodes"] = (
            float(agg.num_nodes - len(agg.groups)) if agg is not None else 0.0
        )
        if agg is not None:
            # Expand the representative's per-node outputs onto every
            # aggregated-away member: replicas are identical by
            # construction, and downstream consumers — the §IV
            # reconfiguration policy above all — address nodes
            # individually (utilization, ``{node}.jobs``,
            # ``{node}.service_time``, pool diagnostics).
            for rep, rest in agg.expansions():
                rep_util = utilization[rep]
                prefix = f"{rep}."
                rep_items = [
                    (key[len(prefix):], value)
                    for key, value in sorted(diagnostics.items())
                    if key.startswith(prefix)
                ]
                for member in rest:
                    utilization[member] = rep_util
                    for suffix, value in rep_items:
                        diagnostics[f"{member}.{suffix}"] = value
        return AnalyticSolution(
            throughput=x,
            error_rate=state.err,
            response_time=mva.response_time,
            utilization=utilization,
            max_memory_penalty=max_penalty,
            diagnostics=diagnostics,
        )

    # ------------------------------------------------------------------
    # Solution memoization (deterministic part only; noise is per seed)

    def _solution_key(
        self, scenario: Scenario, configuration: Mapping[str, int]
    ) -> tuple:
        return (
            scenario.fingerprint(),
            tuple(sorted(configuration.items())),
        ) + self._mode_tag(scenario.cluster, scenario.population)

    def _solution_get(self, key: tuple) -> Optional[AnalyticSolution]:
        if self.solution_cache_size == 0:
            return None
        sol = self._solution_cache.get(key)
        if sol is None:
            self._solution_misses += 1
            return None
        self._solution_hits += 1
        self._solution_cache.move_to_end(key)
        return sol

    def _solution_peek(self, key: tuple) -> Optional[AnalyticSolution]:
        """Cache probe without touching counters or LRU order.

        Used by prefetching, whose probes would otherwise distort the
        hit/miss statistics reported for real measurements.
        """
        if self.solution_cache_size == 0:
            return None
        return self._solution_cache.get(key)

    def _solution_put(self, key: tuple, solution: AnalyticSolution) -> None:
        if self.solution_cache_size == 0:
            return
        self._solution_cache[key] = solution
        while len(self._solution_cache) > self.solution_cache_size:
            self._solution_cache.popitem(last=False)

    def export_solutions(self) -> list[tuple[tuple, AnalyticSolution]]:
        """Snapshot of the deterministic-solution memo.

        Worker processes solving a speculative frontier chunk export their
        (fresh, thus exactly-the-chunk) memo; the parent absorbs it.
        Solutions are deterministic, so shipping them across processes is
        bit-safe.
        """
        return list(self._solution_cache.items())

    def absorb_solutions(
        self, items: Sequence[tuple[tuple, AnalyticSolution]]
    ) -> int:
        """Merge solutions solved elsewhere; returns how many were new."""
        if self.solution_cache_size == 0:
            return 0
        added = 0
        for key, sol in items:
            if key not in self._solution_cache:
                self._solution_put(key, sol)
                added += 1
        return added

    def _solve_cached(
        self,
        scenario: Scenario,
        configuration: Configuration,
        ctx: WorkloadContext,
        think: float,
    ) -> AnalyticSolution:
        key = self._solution_key(scenario, configuration)
        sol = self._solution_get(key)
        if sol is None:
            (sol,) = self._solve_cold(
                [(scenario.cluster, configuration, scenario.population, ctx, think)]
            )
            assert sol is not None  # no outer_budget → every task solved
            self._solution_put(key, sol)
        return sol

    @property
    def solution_cache_stats(self) -> CacheStats:
        """Hit/miss/size counters of the deterministic-solution memo."""
        return CacheStats(
            hits=self._solution_hits,
            misses=self._solution_misses,
            size=len(self._solution_cache),
            shared_hits=self._solution_shared_hits,
        )

    # ------------------------------------------------------------------
    def _subset_config(
        self, configuration: Mapping[str, int], node_ids: list[str]
    ) -> Configuration:
        prefixes = tuple(f"{n}." for n in node_ids)
        return Configuration(
            {
                k: v
                for k, v in sorted(configuration.items())
                if k.startswith(prefixes)
            }
        )

    def _line_tasks(
        self, scenario: Scenario, configuration: Configuration
    ) -> list[tuple[str, tuple, ClusterSpec, Configuration, int]]:
        """The per-work-line solve tasks of one partitioned measurement.

        Each entry is ``(line_id, solution key, sub-cluster, sub-config,
        sub-population)`` in sorted line order.  A line's solve depends only
        on its own sub-configuration, so the solution key is per line —
        this is what lets speculative frontiers that vary one group's
        fragment reuse every other line's solution.
        """
        lines = scenario.work_lines
        assert lines is not None
        share = scenario.population // len(lines)
        remainder = scenario.population - share * len(lines)
        tasks = []
        for i, (line_id, node_ids) in enumerate(sorted(lines.items())):
            placements = [scenario.cluster.placement(n) for n in node_ids]
            sub_cluster = ClusterSpec(placements, name=line_id)
            sub_pop = max(share + (1 if i < remainder else 0), 1)
            sub_cfg = self._subset_config(configuration, list(node_ids))
            key = (
                scenario.fingerprint(),
                line_id,
                sub_pop,
                tuple(sorted(sub_cfg.items())),
            ) + self._mode_tag(sub_cluster, sub_pop)
            tasks.append((line_id, key, sub_cluster, sub_cfg, sub_pop))
        return tasks

    def _measure_partitioned(
        self,
        scenario: Scenario,
        seed: int,
        extremeness: float,
        tasks: Sequence[tuple[str, tuple, ClusterSpec, Configuration, int]],
        solutions: Mapping[tuple, AnalyticSolution],
    ) -> Measurement:
        """Aggregate per-line solutions into one partitioned measurement."""
        per_line: dict[str, float] = {}
        utilization: dict[str, ResourceUtilization] = {}
        total_raw = 0.0
        total_wips = 0.0
        err_acc = 0.0
        resp_acc = 0.0
        diagnostics: dict[str, float] = {}
        for line_id, key, _, _, _ in tasks:
            sol = solutions[key]
            noisy = self.noise.apply(
                sol.effective_wips,
                extremeness,
                sol.max_memory_penalty,
                spawn_rng(seed, "line", line_id),
            )
            per_line[line_id] = noisy
            total_raw += sol.throughput
            total_wips += noisy
            err_acc += sol.error_rate * sol.throughput
            resp_acc += sol.response_time * sol.throughput
            utilization.update(sol.utilization)
            diagnostics.update(
                {
                    f"{line_id}.{k}": v
                    for k, v in sorted(sol.diagnostics.items())
                }
            )
        error_rate = err_acc / total_raw if total_raw > 0 else 0.0
        response = resp_acc / total_raw if total_raw > 0 else 0.0
        return Measurement(
            wips=total_wips,
            raw_wips=total_raw,
            error_rate=error_rate,
            response_time=response,
            utilization=utilization,
            diagnostics=diagnostics,
            per_line_wips=per_line,
        )

    def measure(
        self,
        scenario: Scenario,
        configuration: Configuration,
        seed: int = 0,
    ) -> Measurement:
        """One noisy measurement iteration (see :class:`PerformanceBackend`)."""
        ctx = self._context(scenario)
        think = scenario.behavior.effective_mean_think_time
        extremeness = scenario.cluster.full_space().extremeness(configuration)
        rng = spawn_rng(seed, "analytic-measure")

        if scenario.work_lines:
            tasks = self._line_tasks(scenario, configuration)
            solutions: dict[tuple, AnalyticSolution] = {}
            cold: OrderedDict[tuple, tuple] = OrderedDict()
            for _, key, sub_cluster, sub_cfg, sub_pop in tasks:
                if key in solutions or key in cold:
                    continue
                sol = self._solution_get(key)
                if sol is None:
                    cold[key] = (sub_cluster, sub_cfg, sub_pop, ctx, think)
                else:
                    solutions[key] = sol
            if cold:
                for key, sol in zip(cold, self._solve_cold(list(cold.values()))):
                    assert sol is not None
                    self._solution_put(key, sol)
                    solutions[key] = sol
            return self._measure_partitioned(
                scenario, seed, extremeness, tasks, solutions
            )

        sol = self._solve_cached(scenario, configuration, ctx, think)
        wips = self.noise.apply(
            sol.effective_wips, extremeness, sol.max_memory_penalty, rng
        )
        diagnostics = dict(sol.diagnostics)
        # Secondary TPC-W metrics: the category split of the throughput
        # (interactions are sampled i.i.d. from the mix, so the long-run
        # category rates are the mix's Browse/Order fractions).
        for category in InteractionCategory:
            diagnostics[f"wips_{category.value}"] = (
                wips * scenario.mix.category_fraction(category)
            )
        return Measurement(
            wips=wips,
            raw_wips=sol.throughput,
            error_rate=sol.error_rate,
            response_time=sol.response_time,
            utilization=sol.utilization,
            diagnostics=diagnostics,
        )

    def measure_batch(
        self,
        scenario: Scenario,
        requests: Sequence[tuple[Configuration, int]],
    ) -> list[Measurement]:
        """Measure many ``(configuration, seed)`` points in one MVA batch.

        The deterministic solve depends only on the configuration, so the
        distinct configurations are deduplicated, looked up in the solution
        memo, and the misses submitted to :meth:`solve_batch` as a single
        lockstep batch; each request then draws its own noise exactly as
        :meth:`measure` would.  Results are bit-identical to the serial
        loop.  Partitioned (work-line) scenarios decompose into per-line
        tasks, deduplicate them across requests, and solve the cold ones in
        one :meth:`solve_tasks` batch.
        """
        ctx = self._context(scenario)
        think = scenario.behavior.effective_mean_think_time
        if scenario.work_lines:
            task_lists: dict[Configuration, list] = {}
            solutions: dict[tuple, AnalyticSolution] = {}
            cold: OrderedDict[tuple, tuple] = OrderedDict()
            for cfg, _ in requests:
                if cfg in task_lists:
                    continue
                tasks = self._line_tasks(scenario, cfg)
                task_lists[cfg] = tasks
                for _, key, sub_cluster, sub_cfg, sub_pop in tasks:
                    if key in solutions or key in cold:
                        continue
                    sol = self._solution_get(key)
                    if sol is None:
                        cold[key] = (sub_cluster, sub_cfg, sub_pop, ctx, think)
                    else:
                        solutions[key] = sol
            if cold:
                solved = self._solve_cold(list(cold.values()))
                for key, sol in zip(cold, solved):
                    assert sol is not None
                    self._solution_put(key, sol)
                    solutions[key] = sol
            out = []
            for cfg, seed in requests:
                extremeness = scenario.cluster.full_space().extremeness(cfg)
                out.append(
                    self._measure_partitioned(
                        scenario, seed, extremeness, task_lists[cfg], solutions
                    )
                )
            return out

        order: dict[Configuration, int] = {}
        for cfg, _ in requests:
            if cfg not in order:
                order[cfg] = len(order)
        distinct = list(order)
        solutions: list[Optional[AnalyticSolution]] = [None] * len(distinct)
        to_solve: list[int] = []
        for i, cfg in enumerate(distinct):
            sol = self._solution_get(self._solution_key(scenario, cfg))
            if sol is None:
                to_solve.append(i)
            else:
                solutions[i] = sol
        if to_solve:
            solved = self._solve_cold(
                [
                    (scenario.cluster, distinct[i], scenario.population, ctx, think)
                    for i in to_solve
                ]
            )
            for i, sol in zip(to_solve, solved):
                assert sol is not None
                solutions[i] = sol
                self._solution_put(
                    self._solution_key(scenario, distinct[i]), sol
                )

        out = []
        for cfg, seed in requests:
            sol = solutions[order[cfg]]
            assert sol is not None
            extremeness = scenario.cluster.full_space().extremeness(cfg)
            rng = spawn_rng(seed, "analytic-measure")
            wips = self.noise.apply(
                sol.effective_wips, extremeness, sol.max_memory_penalty, rng
            )
            diagnostics = dict(sol.diagnostics)
            for category in InteractionCategory:
                diagnostics[f"wips_{category.value}"] = (
                    wips * scenario.mix.category_fraction(category)
                )
            out.append(
                Measurement(
                    wips=wips,
                    raw_wips=sol.throughput,
                    error_rate=sol.error_rate,
                    response_time=sol.response_time,
                    utilization=sol.utilization,
                    diagnostics=diagnostics,
                )
            )
        return out

    def prefetch_configs(
        self,
        scenario: Scenario,
        configurations: Sequence[Configuration],
    ) -> int:
        """Warm the solution memo for a speculative frontier in one batch.

        The deterministic solve needs no seed, so a frontier can be solved
        before anyone commits to measuring it: later :meth:`measure` calls
        for any of these configurations (under *any* seed) hit the memo.
        Partitioned scenarios decompose into per-line tasks first, so a
        frontier that varies one group's fragment costs one sub-solve per
        *new* fragment, not per full configuration.  Cache probes bypass
        the hit/miss counters (see :meth:`_solution_peek`), and nothing
        here affects measured values — only their latency.  Straggler
        tasks whose fixed point misses ``prefetch_outer_budget`` rounds
        are abandoned uncached (see :meth:`solve_tasks`) instead of
        burning the full ``max_outer`` on a solution nobody may ask for.
        Returns the number of cold solves completed and cached.
        """
        if self.solution_cache_size == 0 or not configurations:
            return 0
        ctx = self._context(scenario)
        think = scenario.behavior.effective_mean_think_time
        cold: OrderedDict[tuple, tuple] = OrderedDict()
        if scenario.work_lines:
            for cfg in configurations:
                for _, key, sub_cluster, sub_cfg, sub_pop in self._line_tasks(
                    scenario, cfg
                ):
                    if key not in cold and self._solution_peek(key) is None:
                        cold[key] = (sub_cluster, sub_cfg, sub_pop, ctx, think)
        else:
            for cfg in configurations:
                key = self._solution_key(scenario, cfg)
                if key not in cold and self._solution_peek(key) is None:
                    cold[key] = (scenario.cluster, cfg, scenario.population, ctx, think)
        if not cold:
            return 0
        solved = self._solve_cold(
            list(cold.values()),
            outer_budget=self.prefetch_outer_budget,
        )
        stored = 0
        for key, sol in zip(cold, solved):
            if sol is not None:
                self._solution_put(key, sol)
                stored += 1
        return stored
