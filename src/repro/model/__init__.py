"""Analytic performance backend.

The paper measures WIPS on a live testbed; we replace the testbed with a
closed queueing-network model solved by approximate Mean Value Analysis:

* :mod:`repro.model.base` — the backend interface (:class:`Scenario` in,
  :class:`Measurement` out) shared with the discrete-event backend,
* :mod:`repro.model.mva` — single-class Schweitzer AMVA with Seidmann's
  multi-server transformation,
* :mod:`repro.model.pools` — M/M/c/K waiting/blocking corrections for the
  finite thread/connection pools (``maxProcessors``, ``acceptCount``,
  ``max_connections``…),
* :mod:`repro.model.demands` — assembles per-node station demands from the
  server models of :mod:`repro.cluster`,
* :mod:`repro.model.fluid` — the O(stations), population-independent
  fluid/mean-field solver for very large N,
* :mod:`repro.model.hierarchy` — replica-group detection for hierarchical
  (one-representative-per-tier) aggregation,
* :mod:`repro.model.analytic` — the :class:`AnalyticBackend` fixed-point
  solver (its ``approximation=`` knob selects exact/fluid/hierarchical),
* :mod:`repro.model.noise` — the measurement-noise model.
"""

from repro.model.analytic import APPROXIMATIONS, AnalyticBackend
from repro.model.base import (
    Measurement,
    PerformanceBackend,
    ResourceUtilization,
    Scenario,
)
from repro.model.fluid import solve_mva_fluid
from repro.model.hierarchy import AggregationPlan, aggregation_plan
from repro.model.mva import MvaResult, Station, solve_mva, solve_mva_exact
from repro.model.mva_multiclass import (
    CustomerClass,
    MultiClassResult,
    solve_mva_multiclass,
)
from repro.model.noise import NoiseModel
from repro.model.pools import PoolResult, mmck

__all__ = [
    "Scenario",
    "Measurement",
    "ResourceUtilization",
    "PerformanceBackend",
    "Station",
    "MvaResult",
    "solve_mva",
    "solve_mva_exact",
    "solve_mva_fluid",
    "AggregationPlan",
    "aggregation_plan",
    "APPROXIMATIONS",
    "CustomerClass",
    "MultiClassResult",
    "solve_mva_multiclass",
    "PoolResult",
    "mmck",
    "AnalyticBackend",
    "NoiseModel",
]
