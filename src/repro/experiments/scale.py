"""Scale experiment: tune a wide cluster at an extreme population.

The paper's testbed tops out at a handful of nodes and 750 emulated
browsers; this extension exercises the approximation stack end to end on
the kind of topology the paper's method is *about* — wide homogeneous
tiers behind a load balancer:

* a :meth:`~repro.cluster.topology.ClusterSpec.wide` cluster (64/128/16
  by default) is tuned with the paper's duplication method at N up to
  10^6, the backend auto-selecting fluid + hierarchical approximation,
* a small-topology **agreement arm** measures the same default
  configuration under every forced approximation mode with noise
  disabled, reporting each mode's relative error against the exact
  per-node Schweitzer solve,
* a **DES validation arm** replays the agreement topology through the
  discrete-event simulator and reports its WIPS ratio against the exact
  analytic row — a model-free cross-check of the whole approximation
  stack.  The fast event kernel makes the full 4/4/2 topology at the
  agreement population affordable here (the earlier check lived in the
  benchmark only, on a 2/2/1 cluster at N=600).

The baseline probe, the tuning run and the agreement measurements are
independent — one plan fanned over ``cfg.jobs`` workers, bit-identical
to the serial loop at every jobs/engine setting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.cluster.topology import ClusterSpec
from repro.experiments.runner import (
    ExperimentConfig,
    make_backend,
    make_executor,
    remeasure,
)
from repro.harmony.history import TuningHistory
from repro.model.analytic import APPROXIMATIONS, AnalyticBackend
from repro.model.base import PerformanceBackend, Scenario
from repro.parallel import ParallelExecutor, RunSpec
from repro.tpcw.interactions import STANDARD_MIXES
from repro.tuning.session import ClusterTuningSession, make_scheme
from repro.util.rng import derive_seed
from repro.util.tables import Table

__all__ = ["AgreementRow", "ScaleResult", "run", "AGREEMENT_MODES"]

#: Forced approximation modes compared in the agreement arm ("auto" is
#: excluded: on the small agreement topology it resolves to one of these).
AGREEMENT_MODES = tuple(m for m in APPROXIMATIONS if m != "auto")

#: Population of the wide-cluster tuning arm (the scale axis headline).
SCALE_POPULATION = 1_000_000

#: Simulated-time scale of the DES validation arm (paper cycle × scale).
DES_TIME_SCALE = 0.05


@dataclass(frozen=True)
class AgreementRow:
    """One approximation mode's noise-free WIPS on the small topology."""

    mode: str
    wips: float
    #: Relative error against the ``exact`` row (0.0 for exact itself).
    relative_error: float


@dataclass(frozen=True)
class ScaleResult:
    """The wide-cluster tuning outcome plus the approximation audit."""

    cluster_name: str
    num_nodes: int
    population: int
    baseline_wips: float
    baseline_stddev: float
    tuned_wips: float
    tuned_stddev: float
    improvement: float
    iterations_to_converge: int
    #: ``solver.fluid`` diagnostic of the baseline solve (1.0 = fluid).
    fluid: float
    #: Nodes folded away by hierarchical aggregation in the baseline solve.
    aggregated_nodes: float
    agreement_population: int
    agreement: Mapping[str, AgreementRow]
    #: WIPS the discrete-event simulator measured on the agreement topology.
    des_wips: float
    #: DES WIPS over the exact analytic row (1.0 = perfect agreement).
    des_over_exact_ratio: float
    #: Population the DES validation arm simulated.
    des_population: int
    #: ``profile.*`` diagnostics of the DES arm (``cfg.profile``; else None).
    des_profile: Optional[Mapping[str, float]]
    history: TuningHistory

    def to_table(self) -> Table:
        """Render the result as a paper-style table."""
        table = Table(
            f"SCALE: {self.cluster_name} ({self.num_nodes} nodes), "
            f"N={self.population:,}",
            ["Arm", "WIPS", "Std dev", "Improvement", "Solver"],
        )
        solver = "fluid" if self.fluid else "schweitzer"
        if self.aggregated_nodes:
            solver += f"+hier (-{self.aggregated_nodes:.0f} nodes)"
        table.add_row(
            "None (no tuning)",
            f"{self.baseline_wips:.1f}",
            f"{self.baseline_stddev:.1f}",
            "-",
            solver,
        )
        table.add_row(
            "Parameter duplication",
            f"{self.tuned_wips:.1f}",
            f"{self.tuned_stddev:.1f}",
            f"{self.improvement * 100:.1f}%",
            solver,
        )
        return table

    def agreement_table(self) -> Table:
        """Render the small-topology approximation agreement audit."""
        table = Table(
            f"SCALE agreement audit (N={self.agreement_population}, "
            "noise off)",
            ["Approximation", "WIPS", "Rel. error vs exact"],
        )
        for mode in AGREEMENT_MODES:
            row = self.agreement[mode]
            table.add_row(mode, f"{row.wips:.2f}", f"{row.relative_error:.2e}")
        table.add_row(
            "simulation (DES)",
            f"{self.des_wips:.2f}",
            f"{abs(self.des_over_exact_ratio - 1.0):.2e}",
        )
        return table


def _measure_baseline(
    cfg: ExperimentConfig,
    mix_name: str,
    cluster: ClusterSpec,
    population: int,
    backend: PerformanceBackend | None,
) -> dict:
    """Worker: the untuned wide-cluster row (plus solver diagnostics)."""
    backend = backend or make_backend(cfg)
    scenario = Scenario(
        cluster=cluster,
        mix=STANDARD_MIXES[mix_name],
        population=population,
    )
    probe = ClusterTuningSession(
        backend, scenario, seed=derive_seed(cfg.seed, "scale-baseline")
    )
    stats = probe.measure_baseline(
        iterations=max(cfg.baseline_iterations, 2)
    ).window_stats(0)
    first = backend.measure(
        scenario,
        cluster.default_configuration(),
        seed=derive_seed(cfg.seed, "scale-probe"),
    )
    return {
        "mean": stats.mean,
        "stddev": stats.stddev,
        "fluid": first.diagnostics.get("solver.fluid", 0.0),
        "aggregated_nodes": first.diagnostics.get(
            "solver.aggregated_nodes", 0.0
        ),
    }


def _run_tuning(
    cfg: ExperimentConfig,
    mix_name: str,
    cluster: ClusterSpec,
    population: int,
    backend: PerformanceBackend | None,
) -> dict:
    """Worker: the duplication-method tuning run on the wide cluster."""
    backend = backend or make_backend(cfg)
    scenario = Scenario(
        cluster=cluster,
        mix=STANDARD_MIXES[mix_name],
        population=population,
    )
    scheme = make_scheme(scenario, "duplication")
    session = ClusterTuningSession(
        backend,
        scenario,
        scheme=scheme,
        seed=derive_seed(cfg.seed, "scale", "duplication"),
        speculate=cfg.speculate,
    )
    session.run(cfg.iterations)
    history = session.history
    best_stats = remeasure(
        backend,
        session.scenario,
        history.best_configuration(),
        seed=derive_seed(cfg.seed, "scale-best"),
        iterations=cfg.baseline_iterations,
    )
    return {
        "wips": best_stats.mean,
        "stddev": history.window_stats(cfg.window_start()).stddev,
        "iterations_to_converge": history.iterations_to_converge(),
        "history": history,
    }


def _measure_agreement(
    cfg: ExperimentConfig, mix_name: str, mode: str
) -> float:
    """Worker: one forced approximation mode, noise off, small topology.

    The topology is small enough for the exact per-node solve yet wide
    enough (replicated tiers) for hierarchical aggregation to engage, so
    every mode exercises its intended code path.
    """
    from repro.model.noise import NoiseModel

    cluster = ClusterSpec.wide(4, 4, 2, name="wide-small")
    scenario = Scenario(
        cluster=cluster,
        mix=STANDARD_MIXES[mix_name],
        population=cfg.cluster_population,
    )
    backend = AnalyticBackend(
        approximation=mode, noise=NoiseModel(0.0, 0.0, 0.0)
    )
    return backend.measure(
        scenario,
        cluster.default_configuration(),
        seed=derive_seed(cfg.seed, "scale-agree", mode),
    ).wips


def _measure_des_check(cfg: ExperimentConfig, mix_name: str) -> dict:
    """Worker: the discrete-event cross-check of the analytic stack.

    The event simulator shares no queueing mathematics with the MVA
    solvers — agreement here validates the whole modelling chain, not
    one approximation against another.  Runs on the agreement topology
    at the full agreement population (affordable since the lean event
    kernel).  With ``cfg.profile`` the simulator's observability
    diagnostics ride along (WIPS is bit-identical either way).
    """
    from repro.des.backend import SimulationBackend

    cluster = ClusterSpec.wide(4, 4, 2, name="wide-small")
    scenario = Scenario(
        cluster=cluster,
        mix=STANDARD_MIXES[mix_name],
        population=cfg.cluster_population,
    )
    backend = SimulationBackend(
        time_scale=DES_TIME_SCALE, profile=cfg.profile
    )
    measurement = backend.measure(
        scenario,
        cluster.default_configuration(),
        seed=derive_seed(cfg.seed, "scale-des"),
    )
    profile = {
        key: value
        for key, value in sorted(measurement.diagnostics.items())
        if key.startswith("profile.")
    } if cfg.profile else None
    return {"wips": measurement.wips, "profile": profile}


def run(
    config: ExperimentConfig | None = None,
    backend: PerformanceBackend | None = None,
    mix_name: str = "shopping",
    cluster: Optional[ClusterSpec] = None,
    population: int = SCALE_POPULATION,
) -> ScaleResult:
    """Run the wide-cluster scale experiment."""
    cfg = config or ExperimentConfig()
    cluster = cluster or ClusterSpec.wide()
    executor = make_executor(cfg, "scale")
    shared = backend if backend is not None else (
        make_backend(cfg) if executor.jobs == 1 or executor.engine == "inline"
        else None
    )

    common = {
        "cfg": cfg,
        "mix_name": mix_name,
        "cluster": cluster,
        "population": population,
        "backend": shared,
    }
    results = executor.run(
        [
            RunSpec(key="baseline", fn=_measure_baseline, kwargs=common),
            RunSpec(key="tune", fn=_run_tuning, kwargs=common),
        ]
        + [
            RunSpec(
                key=("agree", mode),
                fn=_measure_agreement,
                kwargs={"cfg": cfg, "mix_name": mix_name, "mode": mode},
            )
            for mode in AGREEMENT_MODES
        ]
        + [
            RunSpec(
                key="des",
                fn=_measure_des_check,
                kwargs={"cfg": cfg, "mix_name": mix_name},
            )
        ]
    )

    baseline = results["baseline"]
    tuned = results["tune"]
    exact_wips = results[("agree", "exact")]
    agreement = {
        mode: AgreementRow(
            mode=mode,
            wips=results[("agree", mode)],
            relative_error=abs(results[("agree", mode)] - exact_wips)
            / exact_wips,
        )
        for mode in AGREEMENT_MODES
    }

    executor.close()
    return ScaleResult(
        cluster_name=cluster.name,
        num_nodes=cluster.num_nodes,
        population=population,
        baseline_wips=baseline["mean"],
        baseline_stddev=baseline["stddev"],
        tuned_wips=tuned["wips"],
        tuned_stddev=tuned["stddev"],
        improvement=tuned["wips"] / baseline["mean"] - 1.0,
        iterations_to_converge=tuned["iterations_to_converge"],
        fluid=baseline["fluid"],
        aggregated_nodes=baseline["aggregated_nodes"],
        agreement_population=cfg.cluster_population,
        agreement=agreement,
        des_wips=results["des"]["wips"],
        des_over_exact_ratio=results["des"]["wips"] / exact_wips,
        des_population=cfg.cluster_population,
        des_profile=results["des"]["profile"],
        history=tuned["history"],
    )
