"""The §III.A diagnostic claim: which parameters actually matter.

The paper reports that tuning "is also helpful ... to identify those
parameters that actually affect system performance", naming concrete
findings: the proxy memory-cache parameters matter, the eviction watermarks
``cache_swap_low`` / ``cache_swap_high`` "do not impact the overall system
performance", the thread counts matter for the ordering workload, and the
database caches matter when database utilization is high.

This driver measures exactly that with one-at-a-time sweeps per workload
and checks the orderings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.analysis.sensitivity import SensitivityReport, sensitivity_report
from repro.cluster.topology import ClusterSpec
from repro.experiments.runner import ExperimentConfig, make_backend
from repro.model.base import PerformanceBackend, Scenario
from repro.tpcw.interactions import STANDARD_MIXES
from repro.util.rng import derive_seed
from repro.util.tables import Table

__all__ = ["SensitivityResult", "run", "KEY_PARAMETERS"]

#: The parameters the paper's §III.A narrative names explicitly.
KEY_PARAMETERS = (
    "proxy0.cache_mem",
    "proxy0.maximum_object_size_in_memory",
    "proxy0.cache_swap_low",
    "proxy0.cache_swap_high",
    "proxy0.store_objects_per_bucket",
    "app0.maxProcessors",
    "app0.bufferSize",
    "db0.table_cache",
    "db0.binlog_cache_size",
    "db0.join_buffer_size",
)


@dataclass(frozen=True)
class SensitivityResult:
    """Per-mix sensitivity reports over the key parameters."""

    reports: Mapping[str, SensitivityReport]

    def effect(self, mix: str, name: str) -> float:
        """One parameter's effect size under one mix."""
        return self.reports[mix].curve(name).effect_size

    def to_table(self) -> Table:
        mixes = list(self.reports)
        table = Table(
            "Parameter effect sizes per workload (one-at-a-time sweeps)",
            ["Parameter", *(f"{m} effect" for m in mixes)],
        )
        for name in KEY_PARAMETERS:
            table.add_row(
                name,
                *(f"{self.effect(m, name) * 100:.1f}%" for m in mixes),
            )
        return table


def run(
    config: ExperimentConfig | None = None,
    backend: PerformanceBackend | None = None,
    points: int = 4,
    repeats: int = 3,
) -> SensitivityResult:
    """Sweep the key parameters under every standard mix."""
    cfg = config or ExperimentConfig()
    backend = backend or make_backend()
    cluster = ClusterSpec.three_tier(1, 1, 1)
    reports = {}
    for mix_name, mix in STANDARD_MIXES.items():
        scenario = Scenario(cluster=cluster, mix=mix, population=cfg.population)
        reports[mix_name] = sensitivity_report(
            backend,
            scenario,
            names=KEY_PARAMETERS,
            points=points,
            repeats=repeats,
            seed=derive_seed(cfg.seed, "sensitivity", mix_name),
        )
    return SensitivityResult(reports=reports)
