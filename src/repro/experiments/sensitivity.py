"""The §III.A diagnostic claim: which parameters actually matter.

The paper reports that tuning "is also helpful ... to identify those
parameters that actually affect system performance", naming concrete
findings: the proxy memory-cache parameters matter, the eviction watermarks
``cache_swap_low`` / ``cache_swap_high`` "do not impact the overall system
performance", the thread counts matter for the ordering workload, and the
database caches matter when database utilization is high.

This driver measures exactly that with one-at-a-time sweeps per workload
and checks the orderings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.analysis.sensitivity import SensitivityReport, sensitivity_report
from repro.cluster.topology import ClusterSpec
from repro.experiments.runner import (
    ExperimentConfig,
    make_executor,
    make_backend,
)
from repro.model.base import PerformanceBackend, Scenario
from repro.parallel import ParallelExecutor, RunSpec, track_backend
from repro.tpcw.interactions import STANDARD_MIXES
from repro.util.rng import derive_seed
from repro.util.tables import Table

__all__ = ["SensitivityResult", "run", "KEY_PARAMETERS"]

#: The parameters the paper's §III.A narrative names explicitly.
KEY_PARAMETERS = (
    "proxy0.cache_mem",
    "proxy0.maximum_object_size_in_memory",
    "proxy0.cache_swap_low",
    "proxy0.cache_swap_high",
    "proxy0.store_objects_per_bucket",
    "app0.maxProcessors",
    "app0.bufferSize",
    "db0.table_cache",
    "db0.binlog_cache_size",
    "db0.join_buffer_size",
)


@dataclass(frozen=True)
class SensitivityResult:
    """Per-mix sensitivity reports over the key parameters."""

    reports: Mapping[str, SensitivityReport]
    #: Measurement/solution cache counters summed over all sweeps (None
    #: when caching was disabled).  Diagnostic only: counters depend on
    #: the jobs setting, the reports never do.
    cache_stats: Optional[Mapping[str, float]] = field(default=None, compare=False)

    def effect(self, mix: str, name: str) -> float:
        """One parameter's effect size under one mix."""
        return self.reports[mix].curve(name).effect_size

    def to_table(self) -> Table:
        mixes = list(self.reports)
        table = Table(
            "Parameter effect sizes per workload (one-at-a-time sweeps)",
            ["Parameter", *(f"{m} effect" for m in mixes)],
        )
        for name in KEY_PARAMETERS:
            table.add_row(
                name,
                *(f"{self.effect(m, name) * 100:.1f}%" for m in mixes),
            )
        return table

    def cache_summary(self) -> str:
        """One-line cache-counter report for experiment logs."""
        if not self.cache_stats:
            return "caches: disabled"
        s = self.cache_stats
        return (
            "caches: measurement "
            f"{int(s.get('measurement_hits', 0))} hits / "
            f"{int(s.get('measurement_misses', 0))} misses "
            f"({s.get('measurement_hit_rate', 0.0) * 100:.0f}% hit rate), "
            "solution "
            f"{int(s.get('solution_hits', 0))} hits / "
            f"{int(s.get('solution_misses', 0))} misses "
            f"({s.get('solution_hit_rate', 0.0) * 100:.0f}% hit rate)"
        )


def _sweep_mix(
    mix_name: str,
    cfg: ExperimentConfig,
    points: int,
    repeats: int,
    backend: PerformanceBackend | None,
) -> dict:
    """Worker: the full key-parameter sweep under one mix."""
    backend = backend or make_backend(cfg)
    cluster = ClusterSpec.three_tier(1, 1, 1)
    scenario = Scenario(
        cluster=cluster,
        mix=STANDARD_MIXES[mix_name],
        population=cfg.population,
    )
    report = sensitivity_report(
        backend,
        scenario,
        names=KEY_PARAMETERS,
        points=points,
        repeats=repeats,
        seed=derive_seed(cfg.seed, "sensitivity", mix_name),
    )
    return {"report": report}


def run(
    config: ExperimentConfig | None = None,
    backend: PerformanceBackend | None = None,
    points: int = 4,
    repeats: int = 3,
) -> SensitivityResult:
    """Sweep the key parameters under every standard mix.

    The three per-mix sweeps are independent and fan over ``cfg.jobs``
    workers; within each sweep the points go to the backend as one batch
    (vectorized MVA + noise-repeat solution reuse).  Reports are
    bit-identical at every jobs setting.
    """
    cfg = config or ExperimentConfig()
    executor = make_executor(cfg, "sensitivity")
    shared = track_backend(backend) if backend is not None else (
        make_backend(cfg) if executor.jobs == 1 or executor.engine == "inline"
        else None
    )
    results = executor.run(
        [
            RunSpec(
                key=mix_name,
                fn=_sweep_mix,
                kwargs={
                    "mix_name": mix_name,
                    "cfg": cfg,
                    "points": points,
                    "repeats": repeats,
                    "backend": shared,
                },
            )
            for mix_name in STANDARD_MIXES
        ]
    )
    # Per-spec counter deltas, captured where each spec executed and
    # merged by the executor (see repro.parallel.stats).
    cache_stats = executor.cache_stats
    executor.close()
    return SensitivityResult(
        reports={m: results[m]["report"] for m in STANDARD_MIXES},
        cache_stats=cache_stats,
    )
