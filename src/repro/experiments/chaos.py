"""Chaos experiment: fig7-style tuning under injected failures.

Three arms run on the *same* seed and the same cluster (the Figure 7(a)
layout — four proxies, two application nodes, two databases — under the
browsing mix):

``clean``
    Ordinary duplication-scheme tuning, no faults.  The reference.
``faulty``
    The same run under a :class:`~repro.faults.plan.FaultPlan` (by
    default: one application node crashes mid-run and recovers later,
    plus a low rate of random transient measurement failures) with *no*
    resilience machinery — failed measurements fall back to the
    worst-seen penalty and nothing reacts to the lost capacity.
``resilient``
    The same faulty run with a :class:`~repro.faults.resilience.
    ResiliencePolicy` (retry + backoff + quarantine + rollback) and the
    §IV :class:`~repro.tuning.reconfig_loop.ReconfigurationLoop`, which
    sees the surviving application node saturate and moves a proxy into
    the application tier until capacity recovers.

A fourth arm exercises the *engine* layer (PR 9): the resilient run is
repeated under a write-ahead journal and killed at iteration *k*; a
``--resume``-style replay must reproduce the uninterrupted trajectory
bit for bit.  Alongside it, a durable-store segment write is torn
mid-blob (the reload must quarantine it, never serve a bad entry) and a
fleet build is made to fail so the executor walks the degradation
ladder shared → process → inline.  Cluster faults break measurements;
engine faults break the machinery that runs them — the report shows
both layers side by side.

Reported: WIPS under failure for both faulty arms against the clean
reference, time-to-recover, retry/quarantine/rollback counters, and the
reconfiguration moves taken.  Every arm is seed-deterministic: same plan
+ seed ⇒ bit-identical trajectories (tested with exact ``==``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.cluster.topology import ClusterSpec
from repro.experiments.runner import ExperimentConfig, make_backend
from repro.faults.backend import FaultyBackend
from repro.faults.plan import FaultPlan
from repro.faults.resilience import ResiliencePolicy
from repro.model.base import Scenario
from repro.tpcw.interactions import STANDARD_MIXES
from repro.tuning.reconfig import ReconfigPolicy
from repro.tuning.reconfig_loop import AppliedMove, ReconfigurationLoop
from repro.tuning.session import ClusterTuningSession, make_scheme
from repro.util.plot import line_chart
from repro.util.rng import derive_seed
from repro.util.tables import Table

__all__ = [
    "ChaosArm",
    "ChaosResult",
    "EngineChaosArm",
    "default_plan",
    "default_reconfig_policy",
    "run",
]

#: Recovery = rolling mean back above this fraction of the pre-fault mean.
RECOVERY_FRACTION = 0.9
#: Rolling-mean window (iterations) for the recovery detector.
RECOVERY_WINDOW = 5


def default_plan(iterations: int, seed: int = 0) -> FaultPlan:
    """The canonical chaos schedule for an ``iterations``-long run.

    One application node (``app0``) crashes at 40% of the run and
    recovers at 80%; on top, 2% of measurements fail transiently.
    """
    crash = max(1, int(iterations * 0.4))
    recover = max(crash + 1, int(iterations * 0.8))
    return FaultPlan.node_crash(
        "app0", at=crash, recover_at=recover, seed=seed, transient_rate=0.02
    )


def default_reconfig_policy() -> ReconfigPolicy:
    """Reconfiguration thresholds for the chaos cluster.

    Identical to the paper defaults except the disk low threshold: the
    browsing mix keeps proxy disks moderately busy serving static
    content (~0.55 utilization at equilibrium), which would disqualify
    every proxy from the lightly-loaded list L2 and leave the algorithm
    only the (expensive, stateful) database nodes to move.  Raising the
    disk LT to 0.65 restores the §IV intent: a proxy whose CPU and
    network are idle is a move candidate.
    """
    return ReconfigPolicy(
        low_thresholds={"cpu": 0.45, "disk": 0.65, "network": 0.45, "memory": 0.75}
    )


@dataclass(frozen=True)
class ChaosArm:
    """One arm's trajectory and counters."""

    label: str
    wips: tuple[float, ...]
    #: Injected-fault counters (empty for the clean arm).
    fault_stats: dict = field(default_factory=dict)
    #: Resilience-policy counters (empty when no policy ran).
    resilience_stats: dict = field(default_factory=dict)
    #: Reconfiguration moves executed (resilient arm only).
    moves: tuple[AppliedMove, ...] = ()


@dataclass(frozen=True)
class EngineChaosArm:
    """The engine-durability arm: kill/resume, torn store write, ladder."""

    label: str
    #: Trajectory of the killed-then-resumed resilient run.
    wips: tuple[float, ...]
    #: Iteration the journaled run was killed at.
    killed_at: int
    #: Committed measurements replayed from the journal on resume.
    replayed_steps: int
    #: Did the resumed trajectory equal the uninterrupted one exactly?
    bit_identical: bool
    #: :class:`~repro.faults.engine.EngineResilienceStats` counters.
    engine_stats: dict = field(default_factory=dict)
    #: Store entries quarantined when reloading after the torn write.
    store_quarantined: int = 0
    #: Entries that survived the torn write (served correctly).
    store_recovered: int = 0
    #: Ladder steps the executor took when fleet builds failed.
    degradations: tuple[str, ...] = ()
    #: Did the degraded (inline) run still return correct results?
    ladder_results_ok: bool = False


@dataclass(frozen=True)
class ChaosResult:
    """The three-arm comparison and its derived metrics."""

    clean: ChaosArm
    faulty: ChaosArm
    resilient: ChaosArm
    plan: FaultPlan
    crash_at: int
    recover_at: int
    #: Engine-layer durability arm (None when skipped).
    engine: Optional[EngineChaosArm] = None

    # -- derived metrics ------------------------------------------------
    @property
    def pre_fault_mean(self) -> float:
        """Clean-arm mean WIPS just before the crash tick."""
        window = self.clean.wips[max(0, self.crash_at - 10) : self.crash_at]
        return float(np.mean(window)) if window else 0.0

    def _under_failure(self, arm: ChaosArm) -> float:
        window = arm.wips[self.crash_at : self.recover_at]
        return float(np.mean(window)) if window else 0.0

    @property
    def clean_under_failure(self) -> float:
        """Clean-arm mean over the (would-be) failure window."""
        return self._under_failure(self.clean)

    @property
    def faulty_under_failure(self) -> float:
        """No-resilience mean WIPS while the node is down."""
        return self._under_failure(self.faulty)

    @property
    def resilient_under_failure(self) -> float:
        """Resilient-arm mean WIPS while the node is down."""
        return self._under_failure(self.resilient)

    @property
    def recovered(self) -> bool:
        """Did resilience + reconfiguration beat the do-nothing arm?"""
        return self.resilient_under_failure > self.faulty_under_failure

    @property
    def time_to_recover(self) -> Optional[int]:
        """Iterations after the crash until the resilient arm's rolling
        mean climbs back above ``RECOVERY_FRACTION`` × the pre-fault
        clean mean (None if it never does before the node returns)."""
        target = RECOVERY_FRACTION * self.pre_fault_mean
        wips = self.resilient.wips
        for t in range(self.crash_at + 1, min(self.recover_at, len(wips)) + 1):
            # Post-crash values only: averaging in healthy pre-crash
            # iterations would declare recovery before it happened.
            window = wips[max(self.crash_at, t - RECOVERY_WINDOW) : t]
            if window and float(np.mean(window)) >= target:
                return t - self.crash_at
        return None

    # -- rendering ------------------------------------------------------
    def to_table(self) -> Table:
        """The chaos report, one quantity per row."""
        table = Table(
            "Chaos: tuning under an injected node crash", ["Quantity", "Value"]
        )
        table.add_row("fault plan", self.plan.fingerprint()[:12])
        table.add_row("crash tick / recover tick", f"{self.crash_at} / {self.recover_at}")
        table.add_row("pre-fault WIPS (clean)", f"{self.pre_fault_mean:.1f}")
        table.add_row("WIPS under failure (clean ref)", f"{self.clean_under_failure:.1f}")
        table.add_row("WIPS under failure (no resilience)", f"{self.faulty_under_failure:.1f}")
        table.add_row("WIPS under failure (resilient)", f"{self.resilient_under_failure:.1f}")
        gain = (
            self.resilient_under_failure / self.faulty_under_failure - 1.0
            if self.faulty_under_failure
            else 0.0
        )
        table.add_row("resilient vs no-resilience", f"{gain:+.1%}")
        ttr = self.time_to_recover
        table.add_row(
            "time to recover",
            f"{ttr} iterations" if ttr is not None else "not before node returned",
        )
        rs = self.resilient.resilience_stats
        table.add_row(
            "retries / backoff ticks",
            f"{rs.get('retries', 0)} / {rs.get('backoff_ticks', 0)}",
        )
        table.add_row(
            "quarantined / rollbacks",
            f"{rs.get('quarantined', 0)} / {rs.get('rollbacks', 0)}",
        )
        fs = self.resilient.fault_stats
        table.add_row(
            "injected failures (transient/timeout)",
            f"{fs.get('transient_failures', 0)}/{fs.get('timeouts', 0)}",
        )
        if self.resilient.moves:
            for move in self.resilient.moves:
                d = move.decision
                table.add_row(
                    "reconfiguration",
                    f"moved {d.node_id} {d.from_role.value} -> {d.to_role.value} "
                    f"at iteration {move.applied_at}",
                )
        else:
            table.add_row("reconfiguration", "none")
        if self.engine is not None:
            e = self.engine
            table.add_row(
                "engine: killed at / replayed on resume",
                f"{e.killed_at} / {e.replayed_steps}",
            )
            table.add_row(
                "engine: resume bit-identical",
                "yes" if e.bit_identical else "NO",
            )
            table.add_row(
                "engine: store quarantined / recovered",
                f"{e.store_quarantined} / {e.store_recovered}",
            )
            ladder = " -> ".join(
                ("shared", *(s.split("->", 1)[1] for s in e.degradations))
            )
            table.add_row(
                "engine: degradation ladder",
                f"{ladder} ({'results ok' if e.ladder_results_ok else 'FAILED'})",
            )
        return table

    def chart(self, width: int = 80, height: int = 12) -> str:
        """ASCII chart of the resilient arm (| marks crash and recovery)."""
        return line_chart(
            list(self.resilient.wips),
            width=width,
            height=height,
            title="Chaos: resilient-arm WIPS (| = crash / recovery)",
            markers=[self.crash_at, self.recover_at],
        )


def _base_scenario(cfg: ExperimentConfig) -> Scenario:
    return Scenario(
        cluster=ClusterSpec.three_tier(4, 2, 2),
        mix=STANDARD_MIXES["browsing"],
        population=cfg.cluster_population,
    )


def _make_session(backend, scenario: Scenario, seed: int, **kwargs) -> ClusterTuningSession:
    return ClusterTuningSession(
        backend,
        scenario,
        scheme=make_scheme(scenario, "duplication"),
        seed=seed,
        speculate=False,
        **kwargs,
    )


def _probe_square(x: int) -> int:
    """Trivial pure spec body for the degradation-ladder probe."""
    return x * x


def _engine_arm(
    cfg: ExperimentConfig,
    plan: FaultPlan,
    policy: ResiliencePolicy,
    scenario: Scenario,
    seed: int,
    iterations: int,
    check_every: int,
    reference_wips: tuple[float, ...],
):
    """Run the engine-durability arm; returns (arm, injector stats).

    The reference trajectory is the resilient arm that just ran: the
    journaled run here uses the same seed, plan, and policy, so after a
    kill at iteration *k* and a resume, its full trajectory must equal
    the reference exactly.
    """
    import os
    import tempfile

    from repro.durability.diskstore import StorePersistence
    from repro.durability.journal import SessionJournal
    from repro.faults.engine import EngineFaultInjector, EngineFaultPlan
    from repro.parallel.executor import ParallelExecutor
    from repro.parallel.plan import RunSpec

    killed_at = max(3, iterations // 3)
    header = {
        "kind": "chaos-engine",
        "iterations": iterations,
        "seed": seed,
        "faults": plan.fingerprint(),
    }

    def journaled_loop(journal) -> ReconfigurationLoop:
        backend = FaultyBackend(make_backend(cfg), plan)
        session = _make_session(
            backend, scenario, seed, resilience=policy, journal=journal
        )
        return ReconfigurationLoop(
            session,
            policy=default_reconfig_policy(),
            check_every=check_every,
            cooldown=check_every,
            drain_delay=2,
        )

    with tempfile.TemporaryDirectory() as tmp:
        # Kill/resume: run to iteration k under a write-ahead journal,
        # then abandon everything — the moral equivalent of SIGKILL.
        path = os.path.join(tmp, "session.journal")
        journal = SessionJournal(path, header)
        loop = journaled_loop(journal)
        for _ in range(killed_at):
            loop.step()
        journal.close()

        # Resume: committed measurements replay from the journal (no
        # re-measuring), then the run continues live to the end.
        journal = SessionJournal(path, header, resume=True)
        loop = journaled_loop(journal)
        wips = tuple(loop.step().wips for _ in range(iterations))
        replayed = journal.replayed
        journal.close()

        # Durable store under a torn write: the second segment flush is
        # truncated mid-blob; the reload must quarantine it — drop and
        # count the bad entry, never serve it — while the intact first
        # segment survives.  The same injector then fails two fleet
        # builds, so the executor walks shared → process → inline.
        injector = EngineFaultInjector(
            EngineFaultPlan(build_failures=2, torn_store_writes=(2,))
        )
        persist = StorePersistence(os.path.join(tmp, "store"), injector=injector)
        persist.flush({"alpha": 1.0})
        persist.flush({"alpha": 1.0, "beta": 2.0})  # torn mid-write
        reloaded = StorePersistence(os.path.join(tmp, "store"))
        recovered = reloaded.load()
        store_ok = all(recovered[k] == {"alpha": 1.0}[k] for k in recovered)

        specs = [
            RunSpec(("chaos-probe", i), _probe_square, {"x": i}) for i in range(3)
        ]
        executor = ParallelExecutor(2, engine="shared", faults=injector)
        results = executor.run(specs)
        ladder_ok = all(results[("chaos-probe", i)] == i * i for i in range(3))

    arm = EngineChaosArm(
        label="engine",
        wips=wips,
        killed_at=killed_at,
        replayed_steps=replayed,
        bit_identical=wips == reference_wips,
        engine_stats=injector.stats.as_dict(),
        store_quarantined=int(reloaded.stats()["quarantined"]),
        store_recovered=len(recovered) if store_ok else 0,
        degradations=tuple(executor.degradations),
        ladder_results_ok=ladder_ok,
    )
    return arm, injector.stats


def run(
    config: ExperimentConfig | None = None,
    plan: Optional[FaultPlan] = None,
    resilience: Optional[ResiliencePolicy] = None,
) -> ChaosResult:
    """Run the three chaos arms and derive the comparison metrics.

    Each arm gets its own backend (fault tick streams must not mix);
    all three share the seed, so the clean arm is the exact trajectory
    the faulty arms would have produced in a healthy cluster.
    """
    cfg = config or ExperimentConfig()
    iterations = max(cfg.iterations, 30)
    seed = derive_seed(cfg.seed, "chaos")
    plan = plan if plan is not None else default_plan(iterations, seed=cfg.seed)
    policy = resilience if resilience is not None else ResiliencePolicy()
    scenario = _base_scenario(cfg)
    crash = min(
        (e.at for e in plan.events if e.kind in ("crash", "flap")),
        default=iterations,
    )
    recover = min(
        (e.at for e in plan.events if e.kind == "recover"), default=iterations
    )

    # Arm 1: clean reference.
    clean_session = _make_session(make_backend(cfg), scenario, seed)
    clean_wips = [clean_session.step().wips for _ in range(iterations)]
    clean = ChaosArm("clean", tuple(clean_wips))

    # Arm 2: faults, no resilience (worst-seen penalty only, no reconfig).
    faulty_backend = FaultyBackend(make_backend(cfg), plan)
    faulty_session = _make_session(
        faulty_backend, scenario, seed, on_measure_error="penalize"
    )
    faulty_wips = [faulty_session.step().wips for _ in range(iterations)]
    faulty = ChaosArm(
        "faulty",
        tuple(faulty_wips),
        fault_stats=faulty_backend.stats.as_dict(),
    )

    # Arm 3: faults + resilience policy + reconfiguration loop.
    resilient_backend = FaultyBackend(make_backend(cfg), plan)
    resilient_session = _make_session(
        resilient_backend, scenario, seed, resilience=policy
    )
    check_every = max(5, iterations // 8)
    loop = ReconfigurationLoop(
        resilient_session,
        policy=default_reconfig_policy(),
        check_every=check_every,
        cooldown=check_every,
        drain_delay=2,
    )
    resilient_wips = [loop.step().wips for _ in range(iterations)]

    # Arm 4: engine durability (kill/resume + torn store write + ladder).
    # Its counters surface inside the resilient arm's resilience stats so
    # the report shows the measurement and machinery layers side by side.
    engine_arm, engine_stats = _engine_arm(
        cfg,
        plan,
        policy,
        scenario,
        seed,
        iterations,
        check_every,
        tuple(resilient_wips),
    )
    resilient_session.resilience_stats.absorb_engine(engine_stats)

    resilient = ChaosArm(
        "resilient",
        tuple(resilient_wips),
        fault_stats=resilient_backend.stats.as_dict(),
        resilience_stats=resilient_session.resilience_stats.as_dict(),
        moves=tuple(loop.moves),
    )

    return ChaosResult(
        clean=clean,
        faulty=faulty,
        resilient=resilient,
        plan=plan,
        crash_at=crash,
        recover_at=recover,
        engine=engine_arm,
    )
