"""Gradual workload drift — an extension of the Figure 5 experiment.

Figure 5 switches workloads instantaneously; real traffic *drifts* (a sale
shifts browsing toward ordering over hours).  This driver ramps the mix
from browsing to ordering through blended intermediate mixes
(:meth:`~repro.tpcw.interactions.WorkloadMix.blend`) while an adaptive
tuning session runs, and compares against the untouched default
configuration experiencing the same drift.  The claim under test is the
paper's conclusion that a tuning mechanism is *necessary* because no static
configuration fits all workloads: the tuned system should dominate the
static default across the whole drift, not just at the endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.topology import ClusterSpec
from repro.experiments.runner import ExperimentConfig, make_backend
from repro.model.base import PerformanceBackend, Scenario
from repro.tpcw.interactions import BROWSING_MIX, ORDERING_MIX, WorkloadMix
from repro.tuning.adaptive import AdaptiveTuningSession
from repro.tuning.session import ClusterTuningSession, make_scheme
from repro.util.plot import line_chart
from repro.util.rng import derive_seed
from repro.util.tables import Table

__all__ = ["DriftResult", "run"]


@dataclass(frozen=True)
class DriftResult:
    """Tuned vs static-default WIPS over one browsing→ordering drift."""

    blend: tuple[float, ...]
    tuned_wips: tuple[float, ...]
    default_wips: tuple[float, ...]
    restarts: tuple[int, ...]

    @property
    def mean_advantage(self) -> float:
        """Mean relative WIPS advantage of tuning over the static default."""
        tuned = np.asarray(self.tuned_wips)
        default = np.asarray(self.default_wips)
        return float(np.mean(tuned / default)) - 1.0

    def advantage_over_window(self, start: int, stop: int | None = None) -> float:
        """Mean advantage over an iteration window."""
        stop_ = len(self.tuned_wips) if stop is None else stop
        tuned = np.asarray(self.tuned_wips[start:stop_])
        default = np.asarray(self.default_wips[start:stop_])
        return float(np.mean(tuned / default)) - 1.0

    def to_table(self) -> Table:
        """Render the result as a paper-style table."""
        table = Table(
            "Workload drift: adaptive tuning vs static default configuration",
            ["Phase", "Blend t", "Tuned WIPS", "Default WIPS", "Advantage"],
        )
        n = len(self.blend)
        phases = [
            ("pure browsing", 0, n // 3),
            ("drifting", n // 3, 2 * n // 3),
            ("pure ordering", 2 * n // 3, n),
        ]
        for name, lo, hi in phases:
            t = float(np.mean(self.blend[lo:hi]))
            tuned = float(np.mean(self.tuned_wips[lo:hi]))
            default = float(np.mean(self.default_wips[lo:hi]))
            table.add_row(
                name, f"{t:.2f}", f"{tuned:.1f}", f"{default:.1f}",
                f"{(tuned / default - 1) * 100:+.1f}%",
            )
        return table

    def chart(self, width: int = 80, height: int = 10) -> str:
        """ASCII chart of the tuned series (drift window marked)."""
        n = len(self.tuned_wips)
        return line_chart(
            list(self.tuned_wips), width=width, height=height,
            title="Drift experiment: tuned WIPS (| = drift window bounds)",
            markers=[n // 3, 2 * n // 3],
        )


def run(
    config: ExperimentConfig | None = None,
    backend: PerformanceBackend | None = None,
) -> DriftResult:
    """Ramp browsing→ordering over the middle third of the run."""
    cfg = config or ExperimentConfig()
    backend = backend or make_backend()
    total = max(cfg.iterations, 30)
    ramp_start, ramp_end = total // 3, 2 * total // 3

    cluster = ClusterSpec.three_tier(1, 1, 1)

    def mix_at(i: int) -> tuple[float, WorkloadMix]:
        """The blend parameter and mix offered at iteration ``i``."""
        if i < ramp_start:
            return 0.0, BROWSING_MIX
        if i >= ramp_end:
            return 1.0, ORDERING_MIX
        t = (i - ramp_start) / max(ramp_end - ramp_start, 1)
        # Quantize so consecutive iterations reuse the same blended mix
        # (each distinct mix costs a workload-context build).
        t = round(t * 10) / 10.0
        return t, WorkloadMix.blend(BROWSING_MIX, ORDERING_MIX, t)

    scenario = Scenario(cluster=cluster, mix=BROWSING_MIX, population=cfg.population)
    inner = ClusterTuningSession(
        backend, scenario,
        scheme=make_scheme(scenario, "default"),
        seed=derive_seed(cfg.seed, "drift"),
        speculate=cfg.speculate,
    )
    adaptive = AdaptiveTuningSession(inner)

    default_cfg = cluster.default_configuration()
    blend: list[float] = []
    tuned: list[float] = []
    default: list[float] = []
    current_t = -1.0
    for i in range(total):
        t, mix = mix_at(i)
        if t != current_t:
            adaptive.set_mix(mix)
            current_t = t
        measurement = adaptive.step()
        blend.append(t)
        tuned.append(measurement.wips)
        reference = backend.measure(
            adaptive.session.scenario,
            default_cfg,
            seed=derive_seed(cfg.seed, "drift-default", i),
        )
        default.append(reference.wips)

    return DriftResult(
        blend=tuple(blend),
        tuned_wips=tuple(tuned),
        default_wips=tuple(default),
        restarts=tuple(adaptive.restarts),
    )
