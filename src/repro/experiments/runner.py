"""Shared experiment configuration and helpers."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.harmony.parameter import Configuration
from repro.model.analytic import AnalyticBackend
from repro.model.base import PerformanceBackend, Scenario
from repro.util.rng import derive_seed
from repro.util.stats import RunningStats

__all__ = ["ExperimentConfig", "remeasure", "make_backend"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiment drivers.

    The defaults reproduce the paper's protocol (200 tuning iterations,
    evaluation windows over the second 100).  Tests scale ``iterations``
    down; results remain qualitatively stable because the backend and noise
    are deterministic per seed.
    """

    #: Tuning iterations per run (the paper uses 200).
    iterations: int = 200
    #: Root seed; every stochastic stream derives from it.
    seed: int = 17
    #: Emulated browsers for single-node-per-tier scenarios.
    population: int = 750
    #: Emulated browsers for the multi-node cluster scenarios (Table 4, Fig 7).
    cluster_population: int = 2000
    #: Iterations used when re-measuring a fixed configuration.
    baseline_iterations: int = 20
    #: Window (start fraction) used for "second 100 iterations" statistics.
    stats_window: float = 0.5

    def window_start(self) -> int:
        """First iteration of the evaluation window."""
        return int(self.iterations * self.stats_window)

    def scaled(self, iterations: int) -> "ExperimentConfig":
        """A copy with a different iteration budget (for tests)."""
        return replace(self, iterations=iterations)


def make_backend() -> AnalyticBackend:
    """The default backend used by the experiment drivers."""
    return AnalyticBackend()


def remeasure(
    backend: PerformanceBackend,
    scenario: Scenario,
    configuration: Configuration,
    seed: int,
    iterations: int = 20,
) -> RunningStats:
    """Re-measure a fixed configuration over fresh noise draws.

    The best *iteration* of a noisy tuning run overstates the best
    *configuration* (it is the luckiest draw among hundreds); re-measuring
    the chosen configuration on fresh seeds gives the honest number that
    experiment reports compare against baselines.
    """
    stats = RunningStats()
    for i in range(iterations):
        m = backend.measure(
            scenario, configuration, seed=derive_seed(seed, "remeasure", i)
        )
        stats.add(m.wips)
    return stats
