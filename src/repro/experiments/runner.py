"""Shared experiment configuration and helpers."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.harmony.parameter import Configuration
from repro.model.analytic import AnalyticBackend
from repro.model.base import MemoizedBackend, PerformanceBackend, Scenario
from repro.util.rng import derive_seed
from repro.util.stats import RunningStats

__all__ = [
    "ExperimentConfig",
    "remeasure",
    "make_backend",
    "collect_cache_stats",
    "merge_cache_stats",
]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiment drivers.

    The defaults reproduce the paper's protocol (200 tuning iterations,
    evaluation windows over the second 100).  Tests scale ``iterations``
    down; results remain qualitatively stable because the backend and noise
    are deterministic per seed.
    """

    #: Tuning iterations per run (the paper uses 200).
    iterations: int = 200
    #: Root seed; every stochastic stream derives from it.
    seed: int = 17
    #: Emulated browsers for single-node-per-tier scenarios.
    population: int = 750
    #: Emulated browsers for the multi-node cluster scenarios (Table 4, Fig 7).
    cluster_population: int = 2000
    #: Iterations used when re-measuring a fixed configuration.
    baseline_iterations: int = 20
    #: Window (start fraction) used for "second 100 iterations" statistics.
    stats_window: float = 0.5
    #: Worker processes for independent runs (1 = the legacy serial path).
    #: Results are bit-identical at every setting; only wall-clock changes.
    jobs: int = 1
    #: Memoize measurements (the ``--no-cache`` switch turns this off).
    memoize: bool = True
    #: Speculatively prefetch the tuning loop's lookahead frontier
    #: (the ``--speculate`` switch; results are bit-identical either way).
    speculate: bool = False

    def window_start(self) -> int:
        """First iteration of the evaluation window."""
        return int(self.iterations * self.stats_window)

    def scaled(self, iterations: int) -> "ExperimentConfig":
        """A copy with a different iteration budget (for tests)."""
        return replace(self, iterations=iterations)


def make_backend(config: Optional[ExperimentConfig] = None) -> PerformanceBackend:
    """The default backend used by the experiment drivers.

    With memoization on (the default) the analytic backend is wrapped in a
    :class:`~repro.model.base.MemoizedBackend`, so repeated evaluations of
    one (scenario, configuration, seed) point are served from the cache.
    Cached results are bit-identical to fresh ones, so this changes only
    wall-clock time, never numbers.
    """
    if config is not None and not config.memoize:
        # The true uncached path: no measurement memo, no solution memo.
        return AnalyticBackend(solution_cache_size=0)
    return MemoizedBackend(AnalyticBackend())


def collect_cache_stats(backend: PerformanceBackend) -> Optional[dict[str, float]]:
    """The backend's cache counters, if it keeps any.

    Combines the measurement-cache counters of a
    :class:`~repro.model.base.MemoizedBackend` with the inner analytic
    backend's seed-independent solution-cache counters.  Returns None for
    backends with no caches (e.g. ``--no-cache`` runs).
    """
    stats: dict[str, float] = {}
    inner = backend
    if isinstance(backend, MemoizedBackend):
        if backend.enabled:
            for k, v in backend.stats.as_dict().items():
                stats[f"measurement_{k}"] = v
        inner = backend.backend
    if isinstance(inner, AnalyticBackend):
        solution = inner.solution_cache_stats
        if solution.lookups or solution.size:
            for k, v in solution.as_dict().items():
                stats[f"solution_{k}"] = v
    return stats or None


def merge_cache_stats(
    parts: list[Optional[dict[str, float]]],
) -> Optional[dict[str, float]]:
    """Sum counters collected from several backends (one per worker).

    Rates are recomputed from the summed hit/miss counts.
    """
    merged: dict[str, float] = {}
    for part in parts:
        for key, value in (part or {}).items():
            merged[key] = merged.get(key, 0.0) + value
    if not merged:
        return None
    for prefix in ("measurement", "solution"):
        hits = merged.get(f"{prefix}_hits")
        misses = merged.get(f"{prefix}_misses")
        if hits is not None or misses is not None:
            total = (hits or 0.0) + (misses or 0.0)
            merged[f"{prefix}_hit_rate"] = (hits or 0.0) / total if total else 0.0
    return merged


def remeasure(
    backend: PerformanceBackend,
    scenario: Scenario,
    configuration: Configuration,
    seed: int,
    iterations: int = 20,
) -> RunningStats:
    """Re-measure a fixed configuration over fresh noise draws.

    The best *iteration* of a noisy tuning run overstates the best
    *configuration* (it is the luckiest draw among hundreds); re-measuring
    the chosen configuration on fresh seeds gives the honest number that
    experiment reports compare against baselines.

    All draws are submitted as one measurement batch: backends that
    amortize work across points (the analytic backend solves the
    configuration once and re-draws only the noise) exploit that, and the
    statistics fold in request order, so the result equals the plain
    per-point loop bit for bit.
    """
    measurements = backend.measure_batch(
        scenario,
        [
            (configuration, derive_seed(seed, "remeasure", i))
            for i in range(iterations)
        ],
    )
    stats = RunningStats()
    for m in measurements:
        stats.add(m.wips)
    return stats
