"""Shared experiment configuration and helpers."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.harmony.parameter import Configuration
from repro.model.analytic import AnalyticBackend
from repro.model.base import MemoizedBackend, PerformanceBackend, Scenario
from repro.parallel.stats import (
    collect_cache_stats,
    merge_cache_stats,
    track_backend,
)
from repro.util.rng import derive_seed
from repro.util.stats import RunningStats

__all__ = [
    "ExperimentConfig",
    "experiment_journal",
    "make_executor",
    "remeasure",
    "make_backend",
    "collect_cache_stats",
    "merge_cache_stats",
]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiment drivers.

    The defaults reproduce the paper's protocol (200 tuning iterations,
    evaluation windows over the second 100).  Tests scale ``iterations``
    down; results remain qualitatively stable because the backend and noise
    are deterministic per seed.
    """

    #: Tuning iterations per run (the paper uses 200).
    iterations: int = 200
    #: Root seed; every stochastic stream derives from it.
    seed: int = 17
    #: Emulated browsers for single-node-per-tier scenarios.
    population: int = 750
    #: Emulated browsers for the multi-node cluster scenarios (Table 4, Fig 7).
    cluster_population: int = 2000
    #: Iterations used when re-measuring a fixed configuration.
    baseline_iterations: int = 20
    #: Window (start fraction) used for "second 100 iterations" statistics.
    stats_window: float = 0.5
    #: Worker processes for independent runs (1 = the legacy serial path).
    #: Results are bit-identical at every setting; only wall-clock changes.
    jobs: int = 1
    #: Memoize measurements (the ``--no-cache`` switch turns this off).
    memoize: bool = True
    #: Speculatively prefetch the tuning loop's lookahead frontier
    #: (the ``--speculate`` switch; results are bit-identical either way).
    speculate: bool = False
    #: Record simulator observability diagnostics (event counts, RNG draw
    #: accounting, per-phase wall-clock) in the DES arms' measurements
    #: (the ``--profile`` switch).  Analytic measurements are unaffected
    #: and results are bit-identical either way.
    profile: bool = False
    #: Execution engine for the run plan (the ``--engine`` axis):
    #: ``inline`` (serial in-process), ``process`` (per-run pool, the
    #: default) or ``shared`` (persistent fleet + cross-run shared cache).
    #: Results are bit-identical at every setting.
    engine: str = "process"
    #: Write-ahead journal path for the fan-out drivers (``--journal``).
    #: Completed run specs are committed as they finish; None disables.
    journal: Optional[str] = None
    #: Resume from ``journal`` instead of starting fresh (``--resume``).
    resume: bool = False

    def window_start(self) -> int:
        """First iteration of the evaluation window."""
        return int(self.iterations * self.stats_window)

    def scaled(self, iterations: int) -> "ExperimentConfig":
        """A copy with a different iteration budget (for tests)."""
        return replace(self, iterations=iterations)

    def journal_header(self, experiment: str) -> dict:
        """The result-relevant fingerprint a journal is bound to.

        Parallelism knobs (jobs/engine/memoize/speculate) are deliberately
        absent: they never change results, so a run may legitimately be
        resumed with different ones (e.g. inline on a smaller machine).
        """
        return {
            "experiment": experiment,
            "iterations": self.iterations,
            "seed": self.seed,
            "population": self.population,
            "cluster_population": self.cluster_population,
            "baseline_iterations": self.baseline_iterations,
            "stats_window": self.stats_window,
        }


def make_backend(config: Optional[ExperimentConfig] = None) -> PerformanceBackend:
    """The default backend used by the experiment drivers.

    With memoization on (the default) the analytic backend is wrapped in a
    :class:`~repro.model.base.MemoizedBackend`, so repeated evaluations of
    one (scenario, configuration, seed) point are served from the cache.
    Cached results are bit-identical to fresh ones, so this changes only
    wall-clock time, never numbers.

    With ``engine="shared"`` the invocation's persistent
    :class:`~repro.parallel.engine.SharedEngine` backend is returned
    instead of a fresh one: its caches are thread-safe, backed by the
    cross-process shared store, and survive across experiments.  (Inside
    a fleet worker this resolves to the worker's own persistent backend —
    the worker engine singleton — so spec functions can call this
    unconditionally.)

    Every constructed backend is registered with
    :func:`repro.parallel.stats.track_backend` so executor-level cache
    accounting observes it wherever it lives.
    """
    if config is not None and not config.memoize:
        # The true uncached path: no measurement memo, no solution memo.
        return track_backend(AnalyticBackend(solution_cache_size=0))
    if config is not None and config.engine == "shared":
        from repro.parallel.engine import SharedEngine

        return SharedEngine.instance().backend()
    return track_backend(MemoizedBackend(AnalyticBackend()))


def experiment_journal(config: ExperimentConfig, experiment: str):
    """The config's :class:`ExperimentJournal` for ``experiment`` (or None).

    Fresh runs refuse an existing journal file (pass ``--resume``);
    resumed runs validate the stored header against
    :meth:`ExperimentConfig.journal_header` and serve every committed
    spec without re-executing it.
    """
    if config.journal is None:
        return None
    from repro.durability.journal import ExperimentJournal

    return ExperimentJournal(
        config.journal,
        config.journal_header(experiment),
        resume=config.resume,
    )


def make_executor(config: ExperimentConfig, experiment: str):
    """The fan-out drivers' :class:`ParallelExecutor`, journal attached."""
    from repro.parallel.executor import ParallelExecutor

    return ParallelExecutor(
        config.jobs,
        engine=config.engine,
        journal=experiment_journal(config, experiment),
    )


# collect_cache_stats / merge_cache_stats live in repro.parallel.stats now
# (the executor aggregates worker deltas with them); re-exported here for
# compatibility with existing imports.


def remeasure(
    backend: PerformanceBackend,
    scenario: Scenario,
    configuration: Configuration,
    seed: int,
    iterations: int = 20,
) -> RunningStats:
    """Re-measure a fixed configuration over fresh noise draws.

    The best *iteration* of a noisy tuning run overstates the best
    *configuration* (it is the luckiest draw among hundreds); re-measuring
    the chosen configuration on fresh seeds gives the honest number that
    experiment reports compare against baselines.

    All draws are submitted as one measurement batch: backends that
    amortize work across points (the analytic backend solves the
    configuration once and re-draws only the noise) exploit that, and the
    statistics fold in request order, so the result equals the plain
    per-point loop bit for bit.
    """
    measurements = backend.measure_batch(
        scenario,
        [
            (configuration, derive_seed(seed, "remeasure", i))
            for i in range(iterations)
        ],
    )
    stats = RunningStats()
    for m in measurements:
        stats.add(m.wips)
    return stats
