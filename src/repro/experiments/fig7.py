"""Figure 7: automatic cluster reconfiguration.

Two dual experiments on a six-reconfigurable-node cluster (plus the
database tier), exactly the paper's §IV setups:

* **(a)** four proxy nodes + two application nodes; the workload starts as
  browsing and switches to ordering at iteration 90; one forced
  reconfiguration check right after iteration 100 moves a proxy node to
  the overloaded application tier.
* **(b)** two proxy nodes + four application nodes under a browsing
  workload; the check after iteration 100 moves an application node to the
  overloaded proxy tier.

Parameter tuning (duplication scheme — tier-level parameters survive node
moves) runs throughout, as in the paper.  Reported: the WIPS series, the
decision the algorithm took, and the before/after improvement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.cluster.topology import ClusterSpec
from repro.experiments.runner import ExperimentConfig, make_backend
from repro.model.base import PerformanceBackend, Scenario
from repro.tpcw.interactions import STANDARD_MIXES
from repro.tuning.reconfig import MoveDecision, ReconfigPolicy, Reconfigurator
from repro.tuning.session import ClusterTuningSession, make_scheme
from repro.util.plot import line_chart
from repro.util.rng import derive_seed
from repro.util.tables import Table

__all__ = ["Fig7Result", "run_a", "run_b", "run"]


@dataclass(frozen=True)
class Fig7Result:
    """One reconfiguration experiment's outcome."""

    label: str
    wips: tuple[float, ...]
    workloads: tuple[str, ...]
    decision: Optional[MoveDecision]
    reconfig_iteration: int
    #: Mean WIPS over the pre-reconfiguration window (same workload).
    before: float
    #: Mean WIPS over the post-reconfiguration tail.
    after: float

    @property
    def improvement(self) -> float:
        """Relative WIPS gain from the reconfiguration."""
        return self.after / self.before - 1.0

    def to_table(self) -> Table:
        """Render the result as a paper-style table."""
        table = Table(
            f"Figure 7({self.label}): reconfiguration experiment",
            ["Quantity", "Value"],
        )
        if self.decision is None:
            table.add_row("decision", "none (no move warranted)")
        else:
            table.add_row(
                "decision",
                f"move {self.decision.node_id} "
                f"{self.decision.from_role.value} -> {self.decision.to_role.value} "
                f"(relieves {self.decision.relieves}, "
                f"{'immediate' if self.decision.immediate else 'deferred'})",
            )
        table.add_row("reconfig at iteration", self.reconfig_iteration)
        table.add_row("WIPS before", f"{self.before:.1f}")
        table.add_row("WIPS after", f"{self.after:.1f}")
        table.add_row("improvement", f"{self.improvement * 100:.0f}%")
        return table

    def chart(self, width: int = 80, height: int = 12) -> str:
        """ASCII rendering of the Figure 7 series (| = reconfiguration)."""
        return line_chart(
            list(self.wips), width=width, height=height,
            title=(
                f"Figure 7({self.label}): WIPS around the reconfiguration "
                "(| = move)"
            ),
            markers=[self.reconfig_iteration],
        )

    def series_table(self, stride: int = 5) -> Table:
        """The WIPS series (down-sampled) — the figure's data."""
        table = Table(
            f"Figure 7({self.label}) series: WIPS per iteration",
            ["Iteration", "Workload", "WIPS"],
        )
        for i in range(0, len(self.wips), stride):
            table.add_row(i, self.workloads[i], f"{self.wips[i]:.1f}")
        return table


def _run_experiment(
    label: str,
    cluster: ClusterSpec,
    schedule: Sequence[tuple[int, str]],
    total_iterations: int,
    reconfig_at: int,
    cfg: ExperimentConfig,
    backend: PerformanceBackend,
    policy: Optional[ReconfigPolicy] = None,
) -> Fig7Result:
    """Drive tuning + one forced reconfiguration check."""
    seed = derive_seed(cfg.seed, "fig7", label)
    mix_at = dict(schedule)
    current_mix = mix_at[0]
    scenario = Scenario(
        cluster=cluster,
        mix=STANDARD_MIXES[current_mix],
        population=cfg.cluster_population,
    )
    session = ClusterTuningSession(
        backend,
        scenario,
        scheme=make_scheme(scenario, "duplication"),
        seed=seed,
        speculate=cfg.speculate,
    )
    reconfigurator = Reconfigurator(policy)

    wips: list[float] = []
    workloads: list[str] = []
    decision: Optional[MoveDecision] = None
    for i in range(total_iterations):
        if i in mix_at and i > 0:
            current_mix = mix_at[i]
            session.set_mix(STANDARD_MIXES[current_mix])
        measurement = session.step()
        wips.append(measurement.wips)
        workloads.append(current_mix)
        if i == reconfig_at and decision is None:
            decision = reconfigurator.decide(
                session.scenario.cluster, measurement
            )
            if decision is not None:
                new_cluster = reconfigurator.apply(
                    session.scenario.cluster, decision
                )
                session.set_cluster(new_cluster)

    switch = max((s for s, _ in schedule), default=0)
    before_window = wips[max(switch, reconfig_at - 10) : reconfig_at + 1]
    after_window = wips[min(reconfig_at + 5, len(wips) - 1) :]
    return Fig7Result(
        label=label,
        wips=tuple(wips),
        workloads=tuple(workloads),
        decision=decision,
        reconfig_iteration=reconfig_at,
        before=float(np.mean(before_window)),
        after=float(np.mean(after_window)),
    )


def run_a(
    config: ExperimentConfig | None = None,
    backend: PerformanceBackend | None = None,
) -> Fig7Result:
    """Figure 7(a): browsing→ordering on 4 proxies + 2 app nodes."""
    cfg = config or ExperimentConfig()
    backend = backend or make_backend()
    total = max(cfg.iterations, 30)
    switch = int(total * 0.45)
    reconfig = int(total * 0.5)
    return _run_experiment(
        "a",
        ClusterSpec.three_tier(4, 2, 2),
        [(0, "browsing"), (switch, "ordering")],
        total,
        reconfig,
        cfg,
        backend,
    )


def run_b(
    config: ExperimentConfig | None = None,
    backend: PerformanceBackend | None = None,
) -> Fig7Result:
    """Figure 7(b): browsing throughout on 2 proxies + 4 app nodes."""
    cfg = config or ExperimentConfig()
    backend = backend or make_backend()
    total = max(cfg.iterations, 30)
    reconfig = int(total * 0.5)
    return _run_experiment(
        "b",
        ClusterSpec.three_tier(2, 4, 2),
        [(0, "browsing")],
        total,
        reconfig,
        cfg,
        backend,
    )


def run(
    config: ExperimentConfig | None = None,
    backend: PerformanceBackend | None = None,
) -> tuple[Fig7Result, Fig7Result]:
    """Both Figure 7 experiments."""
    return run_a(config, backend), run_b(config, backend)
