"""Table 4: cluster-tuning methods compared.

On a multi-node cluster (two nodes per tier — the smallest layout that
admits two work lines), four rows are produced exactly as in the paper:

* **None (no tuning)** — the default configuration measured repeatedly,
* **Default method** — one Harmony server tunes all 46 parameters,
* **Parameter duplication** — one server tunes 23 tier-level parameters,
  values copied within each tier,
* **Parameter partitioning** — one server per work line, each fed its own
  line's WIPS.

Per row: best-configuration WIPS after the tuning run (re-measured on
fresh noise), the standard deviation over the second half of the run, the
improvement over no tuning, and the iterations-to-convergence estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.cluster.topology import ClusterSpec
from repro.experiments.runner import (
    ExperimentConfig,
    make_backend,
    make_executor,
    remeasure,
)
from repro.harmony.history import TuningHistory
from repro.model.base import PerformanceBackend, Scenario
from repro.parallel import ParallelExecutor, RunSpec
from repro.tpcw.interactions import STANDARD_MIXES
from repro.tuning.session import ClusterTuningSession, make_scheme
from repro.util.rng import derive_seed
from repro.util.tables import Table

__all__ = ["MethodRow", "Table4Result", "run", "METHODS"]

METHODS = ("default", "duplication", "partitioning")


@dataclass(frozen=True)
class MethodRow:
    """One Table 4 row."""

    method: str
    wips: float
    stddev: float
    improvement: float
    iterations_to_converge: int
    tuned_dimensions: int


@dataclass(frozen=True)
class Table4Result:
    """All four rows plus the underlying histories."""

    baseline_wips: float
    baseline_stddev: float
    rows: Mapping[str, MethodRow]
    histories: Mapping[str, TuningHistory]

    def to_table(self) -> Table:
        """Render the result as a paper-style table."""
        table = Table(
            "TABLE 4: performance of different methods for cluster tuning",
            [
                "Tuning method",
                "WIPS (best, re-measured)",
                "Std dev (2nd window)",
                "Improvement",
                "Iterations",
                "Dims/server",
            ],
        )
        table.add_row(
            "None (no tuning)",
            f"{self.baseline_wips:.1f}",
            f"{self.baseline_stddev:.1f}",
            "-",
            "-",
            "-",
        )
        labels = {
            "default": "Default method",
            "duplication": "Parameter duplication",
            "partitioning": "Parameter partitioning",
        }
        for method in METHODS:
            row = self.rows[method]
            table.add_row(
                labels[method],
                f"{row.wips:.1f}",
                f"{row.stddev:.1f}",
                f"{row.improvement * 100:.1f}%",
                row.iterations_to_converge,
                row.tuned_dimensions,
            )
        return table


def _measure_baseline(
    cfg: ExperimentConfig,
    mix_name: str,
    cluster: ClusterSpec,
    backend: PerformanceBackend | None,
) -> dict:
    """Worker: the "None (no tuning)" row."""
    backend = backend or make_backend(cfg)
    scenario = Scenario(
        cluster=cluster,
        mix=STANDARD_MIXES[mix_name],
        population=cfg.cluster_population,
    )
    probe = ClusterTuningSession(
        backend, scenario, seed=derive_seed(cfg.seed, "table4-baseline")
    )
    stats = probe.measure_baseline(
        iterations=max(cfg.baseline_iterations, 2)
    ).window_stats(0)
    return {"mean": stats.mean, "stddev": stats.stddev}


def _run_method(
    method: str,
    cfg: ExperimentConfig,
    mix_name: str,
    cluster: ClusterSpec,
    work_lines: int,
    backend: PerformanceBackend | None,
) -> dict:
    """Worker: one tuning method's full run (improvement filled in later —
    it needs the baseline row, which runs concurrently)."""
    backend = backend or make_backend(cfg)
    scenario = Scenario(
        cluster=cluster,
        mix=STANDARD_MIXES[mix_name],
        population=cfg.cluster_population,
    )
    scheme = make_scheme(scenario, method, work_lines=work_lines)
    session = ClusterTuningSession(
        backend,
        scenario,
        scheme=scheme,
        seed=derive_seed(cfg.seed, "table4", method),
        speculate=cfg.speculate,
    )
    session.run(cfg.iterations)
    history = session.history
    best_stats = remeasure(
        backend,
        session.scenario,
        history.best_configuration(),
        seed=derive_seed(cfg.seed, "table4-best", method),
        iterations=cfg.baseline_iterations,
    )
    return {
        "wips": best_stats.mean,
        "stddev": history.window_stats(cfg.window_start()).stddev,
        "iterations_to_converge": history.iterations_to_converge(),
        "tuned_dimensions": scheme.max_group_dimension,
        "history": history,
    }


def run(
    config: ExperimentConfig | None = None,
    backend: PerformanceBackend | None = None,
    mix_name: str = "shopping",
    cluster: Optional[ClusterSpec] = None,
    work_lines: int = 2,
) -> Table4Result:
    """Run the §III.B cluster-tuning comparison.

    The baseline probe and the three method runs are independent — one
    four-spec plan fanned over ``cfg.jobs`` workers, results identical to
    the serial loop at every jobs setting.
    """
    cfg = config or ExperimentConfig()
    cluster = cluster or ClusterSpec.three_tier(2, 2, 2)
    executor = make_executor(cfg, "table4")
    shared = backend if backend is not None else (
        make_backend(cfg) if executor.jobs == 1 or executor.engine == "inline"
        else None
    )

    common = {
        "cfg": cfg,
        "mix_name": mix_name,
        "cluster": cluster,
        "backend": shared,
    }
    results = executor.run(
        [RunSpec(key="baseline", fn=_measure_baseline, kwargs=common)]
        + [
            RunSpec(
                key=("method", method),
                fn=_run_method,
                kwargs={**common, "method": method, "work_lines": work_lines},
            )
            for method in METHODS
        ]
    )

    baseline = results["baseline"]
    rows: dict[str, MethodRow] = {}
    histories: dict[str, TuningHistory] = {}
    for method in METHODS:
        r = results[("method", method)]
        rows[method] = MethodRow(
            method=method,
            wips=r["wips"],
            stddev=r["stddev"],
            improvement=r["wips"] / baseline["mean"] - 1.0,
            iterations_to_converge=r["iterations_to_converge"],
            tuned_dimensions=r["tuned_dimensions"],
        )
        histories[method] = r["history"]

    executor.close()
    return Table4Result(
        baseline_wips=baseline["mean"],
        baseline_stddev=baseline["stddev"],
        rows=rows,
        histories=histories,
    )
