"""Robustness ablations: when does automated tuning pay?

Two sweeps that bound the headline results:

* **Measurement noise** — the simplex consumes single noisy WIPS readings;
  how much measurement noise can it absorb before the found configurations
  stop beating the default?  (Nelder–Mead's noise sensitivity is a classic
  concern; the paper's 1000-second measurement windows exist precisely to
  keep σ small.)
* **Load level** — tuning gains require the system to be *throughput-bound*.
  Sweeping the emulated-browser population shows the gain appearing at the
  saturation knee and growing beyond it — quantifying when an operator
  should bother tuning at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cluster.topology import ClusterSpec
from repro.experiments.runner import ExperimentConfig, remeasure
from repro.model.analytic import AnalyticBackend
from repro.model.base import Scenario
from repro.model.noise import NoiseModel
from repro.parallel import ParallelExecutor, RunSpec
from repro.tpcw.interactions import STANDARD_MIXES
from repro.tuning.session import ClusterTuningSession, make_scheme
from repro.util.rng import derive_seed
from repro.util.tables import Table

__all__ = [
    "NoiseSweepResult",
    "LoadSweepResult",
    "run_noise_sweep",
    "run_load_sweep",
]


def _tuned_gain(
    backend: AnalyticBackend,
    scenario: Scenario,
    iterations: int,
    baseline_iterations: int,
    seed: int,
) -> tuple[float, float]:
    """(baseline mean, re-measured best) for one tuning run."""
    session = ClusterTuningSession(
        backend, scenario, scheme=make_scheme(scenario, "default"), seed=seed
    )
    baseline = session.measure_baseline(
        iterations=baseline_iterations
    ).window_stats(0)
    session.run(iterations)
    best = session.history.best_configuration()
    # Re-measure on a quiet backend: the question is what the *found*
    # configuration is worth, independent of the noise it was found under.
    quiet = AnalyticBackend(noise=NoiseModel(0.0, 0.0, 0.0))
    best_wips = quiet.measure(scenario, best, seed=seed).wips
    base_wips = quiet.measure(
        scenario, scenario.cluster.default_configuration(), seed=seed
    ).wips
    return base_wips, best_wips


@dataclass(frozen=True)
class NoiseSweepResult:
    """Realized tuning gain per measurement-noise level."""

    mix_name: str
    #: (base σ, baseline WIPS, tuned WIPS, gain).
    rows: tuple[tuple[float, float, float, float], ...]

    def gain(self, sigma: float) -> float:
        """The gain measured at one noise level."""
        for s, _, _, g in self.rows:
            if s == sigma:
                return g
        raise KeyError(sigma)

    def to_table(self) -> Table:
        """Render the result as a paper-style table."""
        table = Table(
            f"Ablation: tuning gain vs measurement noise ({self.mix_name})",
            ["Base noise σ", "Default WIPS", "Tuned WIPS", "Gain"],
        )
        for sigma, base, tuned, gain in self.rows:
            table.add_row(
                f"{sigma * 100:.1f}%", f"{base:.1f}", f"{tuned:.1f}",
                f"{gain * 100:+.1f}%",
            )
        return table


def _noise_point(
    sigma: float, cfg: ExperimentConfig, mix_name: str
) -> tuple[float, float, float, float]:
    """Worker: one noise level's full tuning run."""
    cluster = ClusterSpec.three_tier(1, 1, 1)
    scenario = Scenario(
        cluster=cluster, mix=STANDARD_MIXES[mix_name], population=cfg.population
    )
    backend = AnalyticBackend(
        noise=NoiseModel(base_sigma=sigma, extreme_sigma=0.015,
                         pressure_sigma=0.08)
    )
    base, tuned = _tuned_gain(
        backend, scenario, cfg.iterations, cfg.baseline_iterations,
        derive_seed(cfg.seed, "noise-sweep", mix_name, sigma),
    )
    return (sigma, base, tuned, tuned / base - 1.0)


def run_noise_sweep(
    config: ExperimentConfig | None = None,
    mix_name: str = "browsing",
    sigmas: Sequence[float] = (0.005, 0.012, 0.03, 0.08),
) -> NoiseSweepResult:
    """Tune under increasing measurement noise; gains should degrade
    gracefully, not collapse.  Noise levels are independent runs and fan
    over ``cfg.jobs`` workers."""
    cfg = config or ExperimentConfig()
    results = ParallelExecutor(cfg.jobs, engine=cfg.engine).run(
        [
            RunSpec(
                key=("sigma", sigma),
                fn=_noise_point,
                kwargs={"sigma": sigma, "cfg": cfg, "mix_name": mix_name},
            )
            for sigma in sigmas
        ]
    )
    return NoiseSweepResult(
        mix_name=mix_name,
        rows=tuple(results[("sigma", s)] for s in sigmas),
    )


@dataclass(frozen=True)
class LoadSweepResult:
    """Realized tuning gain per offered-load level."""

    mix_name: str
    #: (population, baseline WIPS, tuned WIPS, gain).
    rows: tuple[tuple[int, float, float, float], ...]

    def to_table(self) -> Table:
        """Render the result as a paper-style table."""
        table = Table(
            f"Ablation: tuning gain vs offered load ({self.mix_name})",
            ["EB population", "Default WIPS", "Tuned WIPS", "Gain"],
        )
        for population, base, tuned, gain in self.rows:
            table.add_row(
                population, f"{base:.1f}", f"{tuned:.1f}", f"{gain * 100:+.1f}%"
            )
        return table

    def gains(self) -> list[float]:
        """Gains in population order."""
        return [g for _, _, _, g in self.rows]


def _load_point(
    population: int, cfg: ExperimentConfig, mix_name: str
) -> tuple[int, float, float, float]:
    """Worker: one load level's full tuning run."""
    cluster = ClusterSpec.three_tier(1, 1, 1)
    backend = AnalyticBackend()
    scenario = Scenario(
        cluster=cluster, mix=STANDARD_MIXES[mix_name], population=population
    )
    base, tuned = _tuned_gain(
        backend, scenario, cfg.iterations, cfg.baseline_iterations,
        derive_seed(cfg.seed, "load-sweep", mix_name, population),
    )
    return (population, base, tuned, tuned / base - 1.0)


def run_load_sweep(
    config: ExperimentConfig | None = None,
    mix_name: str = "browsing",
    populations: Sequence[int] = (300, 550, 750, 1000),
) -> LoadSweepResult:
    """Tune at several load levels: the gain appears at the saturation knee.

    An unsaturated system is think-time-bound — every configuration
    delivers N/Z, so tuning cannot help; the experiment quantifies where
    that stops being true.  Load levels are independent runs and fan over
    ``cfg.jobs`` workers.
    """
    cfg = config or ExperimentConfig()
    results = ParallelExecutor(cfg.jobs, engine=cfg.engine).run(
        [
            RunSpec(
                key=("population", p),
                fn=_load_point,
                kwargs={"population": p, "cfg": cfg, "mix_name": mix_name},
            )
            for p in populations
        ]
    )
    return LoadSweepResult(
        mix_name=mix_name,
        rows=tuple(results[("population", p)] for p in populations),
    )
