"""Table 3: tunable-parameter values before and after tuning per workload.

Renders our reproduction of the paper's Table 3 from a :class:`Fig4Result`
(the same tuning runs feed Figure 4 and Table 3 in the paper).  The
absolute tuned values differ from the paper's — different substrate,
different noise realization — but the qualitative movements the paper
discusses are asserted in the test suite (e.g. proxy memory cache grows,
``join_buffer_size`` shrinks or stays harmless, ``cache_swap_*`` barely
matter).
"""

from __future__ import annotations

from repro.cluster.node import Role
from repro.cluster.params import params_for_role
from repro.experiments.fig4 import MIX_ORDER, Fig4Result
from repro.util.tables import Table

__all__ = ["render"]

_SECTION = {
    Role.PROXY: "Proxy Server",
    Role.APP: "Web Server",
    Role.DB: "Database Server",
}
_NODE = {Role.PROXY: "proxy0", Role.APP: "app0", Role.DB: "db0"}


def render(result: Fig4Result) -> Table:
    """The Table 3 reproduction for the single-node-per-tier cluster."""
    table = Table(
        "TABLE 3: tuning results for different workloads",
        ["Tunable parameter", "Default", *(m.capitalize() for m in MIX_ORDER)],
    )
    for role in (Role.PROXY, Role.APP, Role.DB):
        table.add_row(f"-- {_SECTION[role]} --", "", "", "", "")
        node = _NODE[role]
        for param in params_for_role(role):
            full_name = f"{node}.{param.name}"
            table.add_row(
                param.name,
                param.default,
                *(result.best_configs[m][full_name] for m in MIX_ORDER),
            )
    return table
